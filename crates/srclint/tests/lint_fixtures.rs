//! Golden-file tests for the lexer + rule engine over the fixture
//! workspace in `tests/fixtures/ws`, plus byte-identity of the committed
//! repo baseline through the hand-rolled JSON emitter.
//!
//! Regenerate the goldens after an intentional report change with:
//! `UPDATE_GOLDENS=1 cargo test -p srclint --test lint_fixtures`

use srclint::baseline::{baseline_with_content, Baseline};
use srclint::{report, rule_ids, scan_workspace, Config};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

/// The layer policy for the fixture workspace (mirrors the shape of the
/// real repo policy, over the `fix*` packages).
fn fixture_config() -> Config {
    Config {
        sanctioned_nondet: vec!["crates/fixobs/src/clock.rs".into()],
        panic_scope: vec!["crates/fixcore/src/".into()],
        float_reduce_exempt: vec![],
        atomic_relaxed_allow: vec!["crates/fixobs/src/metrics.rs".into()],
        forbidden_deps: vec![("fixcore".into(), vec!["fixio".into()])],
        isolated_packages: vec!["fixobs".into()],
        skip_dirs: vec![".git".into(), "target".into()],
    }
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDENS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        got, golden,
        "{name} diverged from golden; rerun with UPDATE_GOLDENS=1 if intentional"
    );
}

#[test]
fn fixture_scan_fires_every_rule_exactly_as_planted() {
    let findings = scan_workspace(&fixture_root(), &fixture_config()).unwrap();
    let count = |rule| findings.iter().filter(|f| f.rule == rule).count();
    assert_eq!(count(rule_ids::UNSAFE_NO_SAFETY), 1, "{findings:#?}");
    assert_eq!(count(rule_ids::NONDETERMINISM), 1, "{findings:#?}");
    assert_eq!(count(rule_ids::PANIC_SITE), 1, "{findings:#?}");
    // Forbidden edge (fixcore -> fixio), unused dep (fixextra), isolation
    // breach (fixobs -> fixio).
    assert_eq!(count(rule_ids::LAYERING), 3, "{findings:#?}");
    assert_eq!(count(rule_ids::FLOAT_REDUCE), 1, "{findings:#?}");
    assert_eq!(count(rule_ids::ATOMIC_ORDERING), 1, "{findings:#?}");
    assert_eq!(findings.len(), 8);
    // The justified unsafe, the sanctioned clock module, and the test
    // module must all stay clean: nothing outside fixcore's lib and the
    // three manifests.
    for f in &findings {
        assert!(
            f.path == "crates/fixcore/src/lib.rs" || f.path.ends_with("Cargo.toml"),
            "unexpected finding location: {f:?}"
        );
    }
}

#[test]
fn fixture_reports_match_goldens() {
    let findings = scan_workspace(&fixture_root(), &fixture_config()).unwrap();
    let applied = Baseline::default().apply(findings);
    check_golden("fixtures_report.txt", &report::render_text(&applied));
    check_golden("fixtures_report.json", &report::render_json(&applied));
}

#[test]
fn fixture_baseline_suppresses_everything_then_goes_stale() {
    let root = fixture_root();
    let cfg = fixture_config();
    let findings = scan_workspace(&root, &cfg).unwrap();
    let base = baseline_with_content(&findings, &root);
    // Baseline entries carry the violating source line for reviewability.
    assert!(base
        .suppressions
        .iter()
        .any(|s| s.content.contains("unsafe")));

    let applied = base.apply(scan_workspace(&root, &cfg).unwrap());
    assert!(applied.fresh.is_empty(), "{:#?}", applied.fresh);
    assert!(applied.stale.is_empty());
    assert_eq!(applied.suppressed.len(), 8);

    // Dropping a finding from the scan (as if it were fixed) leaves its
    // suppression stale — the signal --check uses to demand a baseline
    // shrink.
    let fixed: Vec<_> = scan_workspace(&root, &cfg)
        .unwrap()
        .into_iter()
        .filter(|f| f.rule != rule_ids::NONDETERMINISM)
        .collect();
    let applied = base.apply(fixed);
    assert_eq!(applied.stale.len(), 1);
    assert_eq!(applied.stale[0].rule, rule_ids::NONDETERMINISM);
}

#[test]
fn committed_repo_baseline_round_trips_byte_identically() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../lint-baseline.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {} failed: {e}", path.display()));
    let base = Baseline::parse(&text).expect("committed baseline must parse");
    assert!(
        !base.suppressions.is_empty(),
        "committed baseline should carry the pre-existing violations"
    );
    assert_eq!(
        base.to_json_string(),
        text,
        "baseline must round-trip byte-identically through the obs::Json emitter"
    );
}
