use crate::tunable::time_candidate;
use crate::{Tunable, TuneKey, TuneParam};
use obs::{Clock, Json, JsonError, Registry, WallClock};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Cached optimum for one [`TuneKey`], with performance metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneEntry {
    /// Winning launch parameters.
    pub param: TuneParam,
    /// Best observed (or modeled) time for one invocation, seconds.
    pub seconds: f64,
    /// GFLOP/s at the optimum, when the tunable reports a flop count.
    pub gflops: f64,
    /// Number of candidates that were swept.
    pub candidates_swept: usize,
}

/// Aggregate statistics about tuner behaviour, for reporting and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TunerStats {
    /// Cache lookups that found an existing entry.
    pub hits: u64,
    /// Cache lookups that triggered a brute-force sweep.
    pub misses: u64,
}

#[derive(Default)]
struct Inner {
    cache: HashMap<TuneKey, TuneEntry>,
    stats: TunerStats,
}

/// Deterministic ordering over every key axis, shared by the JSON dump and
/// the human-readable summary.
fn sort_key(k: &TuneKey) -> (&String, &String, &String, usize, &String, &String) {
    (&k.name, &k.volume, &k.aux, k.nrhs, &k.layout, &k.recon)
}

/// The autotuner cache.
///
/// `tune` performs QUDA's protocol: look the key up; on a miss, `backup` the
/// tunable, sweep every candidate in its parameter space, keep the fastest,
/// `restore`, store the entry, and return the winning parameters. Subsequent
/// calls with the same key are pure lookups.
///
/// ```
/// use autotune::{ParamSpace, TimingHarness, TuneKey, TuneParam, Tunable, Tuner};
///
/// struct Kernel;
/// impl Tunable for Kernel {
///     fn key(&self) -> TuneKey { TuneKey::new("halo", "8x8x8x16", "prec=f32") }
///     fn param_space(&self) -> ParamSpace { ParamSpace::policies(4) }
///     fn run(&mut self, _p: TuneParam) {}
///     fn modeled_cost(&self, p: TuneParam) -> f64 { (p.policy as f64 - 2.0).abs() + 1.0 }
///     fn harness(&self) -> TimingHarness { TimingHarness::Modeled }
/// }
///
/// let tuner = Tuner::new();
/// let best = tuner.tune(&mut Kernel);
/// assert_eq!(best.policy, 2);          // swept on first encounter
/// assert_eq!(tuner.tune(&mut Kernel).policy, 2); // cache hit thereafter
/// assert_eq!(tuner.stats().hits, 1);
/// ```
pub struct Tuner {
    inner: RwLock<Inner>,
    /// Time source for wall-clock candidate sweeps. Real runs use
    /// [`WallClock`]; tests inject [`obs::ManualClock`] so sweep timing is
    /// deterministic.
    clock: Arc<dyn Clock>,
}

impl Default for Tuner {
    fn default() -> Self {
        Self::with_clock(Arc::new(WallClock::new()))
    }
}

impl Tuner {
    /// Empty tuner with no cached entries, timing against the wall clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty tuner that times candidate sweeps against `clock`.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            inner: RwLock::default(),
            clock,
        }
    }

    /// Return the optimum launch parameters for `tunable`, sweeping its
    /// parameter space first if this key has never been seen.
    pub fn tune<T: Tunable + ?Sized>(&self, tunable: &mut T) -> TuneParam {
        let key = tunable.key();
        let reg = Registry::current();
        if let Some(entry) = self.lookup(&key) {
            self.inner.write().stats.hits += 1;
            reg.counter("autotune.cache_hits").inc();
            return entry.param;
        }
        self.inner.write().stats.misses += 1;
        reg.counter("autotune.cache_misses").inc();

        let space = tunable.param_space();
        tunable.backup();
        let candidate_seconds = reg.histogram(
            "autotune.candidate_seconds",
            &obs::span::DEFAULT_SECONDS_BOUNDS,
        );
        let mut best_param = space.candidates()[0];
        let mut best_time = f64::INFINITY;
        for &candidate in space.candidates() {
            let seconds = time_candidate(tunable, candidate, self.clock.as_ref());
            candidate_seconds.record(seconds);
            if seconds < best_time {
                best_time = seconds;
                best_param = candidate;
            }
        }
        tunable.restore();

        let gflops = if best_time > 0.0 {
            tunable.flops() / best_time / 1e9
        } else {
            0.0
        };
        let entry = TuneEntry {
            param: best_param,
            seconds: best_time,
            gflops,
            candidates_swept: space.len(),
        };
        reg.event(
            "autotune.tuned",
            vec![
                ("key", Json::from(key.to_string())),
                ("grain", Json::from(best_param.grain)),
                ("block", Json::from(best_param.block)),
                ("policy", Json::from(best_param.policy)),
                ("seconds", Json::from(best_time)),
                ("gflops", Json::from(gflops)),
                ("swept", Json::from(space.len())),
            ],
        );
        self.inner.write().cache.insert(key, entry);
        best_param
    }

    /// Tune and immediately execute under the optimum.
    pub fn launch<T: Tunable + ?Sized>(&self, tunable: &mut T) {
        let param = self.tune(tunable);
        tunable.run(param);
    }

    /// Cached entry for `key`, if any.
    pub fn lookup(&self, key: &TuneKey) -> Option<TuneEntry> {
        self.inner.read().cache.get(key).cloned()
    }

    /// Insert or overwrite an entry directly (used when restoring from disk
    /// or seeding tests).
    pub fn insert(&self, key: TuneKey, entry: TuneEntry) {
        self.inner.write().cache.insert(key, entry);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.read().cache.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> TunerStats {
        self.inner.read().stats
    }

    /// Serialize the cache to JSON (QUDA persists to `tunecache.tsv`; we use
    /// JSON for the same purpose). Entries are sorted by key so the output
    /// is deterministic.
    pub fn to_json(&self) -> String {
        let inner = self.inner.read();
        let mut entries: Vec<(&TuneKey, &TuneEntry)> = inner.cache.iter().collect();
        entries.sort_by(|a, b| sort_key(a.0).cmp(&sort_key(b.0)));
        Json::Arr(
            entries
                .into_iter()
                .map(|(k, e)| {
                    Json::obj(vec![
                        ("name", Json::from(k.name.as_str())),
                        ("volume", Json::from(k.volume.as_str())),
                        ("aux", Json::from(k.aux.as_str())),
                        ("nrhs", Json::from(k.nrhs)),
                        ("layout", Json::from(k.layout.as_str())),
                        ("recon", Json::from(k.recon.as_str())),
                        ("grain", Json::from(e.param.grain)),
                        ("block", Json::from(e.param.block)),
                        ("policy", Json::from(e.param.policy)),
                        ("seconds", Json::from(e.seconds)),
                        ("gflops", Json::from(e.gflops)),
                        ("candidates_swept", Json::from(e.candidates_swept)),
                    ])
                })
                .collect(),
        )
        .to_string_pretty()
    }

    /// Restore a cache previously produced by `to_json`, merging into the
    /// current cache (disk entries win on key collision).
    pub fn merge_json(&self, json: &str) -> Result<usize, JsonError> {
        let bad = |msg: &str| JsonError {
            offset: 0,
            message: msg.to_string(),
        };
        let doc = Json::parse(json)?;
        let items = doc
            .as_arr()
            .ok_or_else(|| bad("tune cache: expected array"))?;
        let mut entries = Vec::with_capacity(items.len());
        for item in items {
            let s = |f: &str| {
                item.get(f)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| bad(&format!("tune cache: missing {f}")))
            };
            let u = |f: &str| {
                item.get(f)
                    .and_then(Json::as_u64)
                    .map(|v| v as usize)
                    .ok_or_else(|| bad(&format!("tune cache: missing {f}")))
            };
            let f = |f: &str| {
                item.get(f)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad(&format!("tune cache: missing {f}")))
            };
            // Pre-batching cache files have no `nrhs` (single-RHS); files
            // predating the layout/reconstruction axes likewise read as
            // AoS-layout, full-storage entries.
            let nrhs = item.get("nrhs").and_then(Json::as_u64).unwrap_or(1) as usize;
            let layout = item
                .get("layout")
                .and_then(Json::as_str)
                .unwrap_or("aos")
                .to_string();
            let recon = item
                .get("recon")
                .and_then(Json::as_str)
                .unwrap_or("full")
                .to_string();
            entries.push((
                TuneKey::new(s("name")?, s("volume")?, s("aux")?)
                    .with_nrhs(nrhs)
                    .with_layout(layout)
                    .with_recon(recon),
                TuneEntry {
                    param: TuneParam {
                        grain: u("grain")?,
                        block: u("block")?,
                        policy: u("policy")?,
                    },
                    seconds: f("seconds")?,
                    gflops: f("gflops")?,
                    candidates_swept: u("candidates_swept")?,
                },
            ));
        }
        let n = entries.len();
        let mut inner = self.inner.write();
        for (k, v) in entries {
            inner.cache.insert(k, v);
        }
        Ok(n)
    }

    /// Human-readable summary of the cache, one line per entry, sorted by
    /// key — the `tunecache` dump operators use to inspect what was chosen.
    pub fn summary(&self) -> String {
        let inner = self.inner.read();
        let mut entries: Vec<(&TuneKey, &TuneEntry)> = inner.cache.iter().collect();
        entries.sort_by(|a, b| sort_key(a.0).cmp(&sort_key(b.0)));
        let mut out = String::new();
        for (k, e) in entries {
            out.push_str(&format!(
                "{k}  grain={} block={} policy={}  {:.3e}s  {:.1} GFLOP/s  ({} swept)\n",
                e.param.grain,
                e.param.block,
                e.param.policy,
                e.seconds,
                e.gflops,
                e.candidates_swept
            ));
        }
        out
    }

    /// Persist the cache to a file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load a cache file saved by `save`, merging its entries.
    pub fn load(&self, path: &Path) -> io::Result<usize> {
        let json = std::fs::read_to_string(path)?;
        self.merge_json(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}
