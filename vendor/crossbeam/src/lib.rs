//! Offline typecheck stub: declared in the workspace, unused in code.
