//! Scheduler engine throughput: events per second through naive bundling,
//! METAQ backfilling, and `mpi_jm` — plus the communication-policy tuner.

use autotune::Tuner;
use coral_machine::{sierra, SolverPerfModel};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mpi_jm::{
    Cluster, ClusterConfig, MetaqScheduler, MpiJmConfig, MpiJmScheduler, NaiveBundler, Workload,
};

fn bench_schedulers(c: &mut Criterion) {
    let workload = Workload::heterogeneous_solves(512, 4, 1000.0, 0.3, 1e15, 7);
    let config = ClusterConfig {
        nodes: 256,
        jitter_sigma: 0.05,
        startup_failure_prob: 0.0,
        seed: 3,
    };

    let mut group = c.benchmark_group("schedulers_512tasks_256nodes");
    group.sample_size(20);
    group.throughput(Throughput::Elements(512));

    group.bench_function("naive", |b| {
        b.iter(|| NaiveBundler::run(&mut Cluster::new(sierra(), &config), &workload))
    });
    group.bench_function("metaq", |b| {
        b.iter(|| MetaqScheduler::run(&mut Cluster::new(sierra(), &config), &workload))
    });
    group.bench_function("mpi_jm", |b| {
        let sched = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 32,
            block_nodes: 4,
            ..MpiJmConfig::default()
        });
        b.iter(|| sched.run(&mut Cluster::new(sierra(), &config), &workload))
    });
    group.finish();
}

fn bench_policy_tuning(c: &mut Criterion) {
    let model = SolverPerfModel::new(sierra(), [48, 48, 48, 64], 12);

    let mut group = c.benchmark_group("comm_policy_tuning");
    group.bench_function("cold (sweep)", |b| {
        b.iter(|| {
            let tuner = Tuner::new();
            model.tuned_policy(&tuner, 64)
        })
    });
    group.bench_function("warm (cache hit)", |b| {
        let tuner = Tuner::new();
        model.tuned_policy(&tuner, 64);
        b.iter(|| model.tuned_policy(&tuner, 64))
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_policy_tuning);
criterion_main!(benches);
