//! Property-based tests over the fault-tolerant transport and checkpoint
//! serialization: exactly-once delivery under duplication + reordering,
//! dedup-by-seq idempotence, and CRC-gated checkpoint restore.

use lqcd::core::comms::{CommFaultProfile, CommRetryPolicy, FaultyTransport};
use lqcd::core::prelude::*;
use lqcd::core::solver::{CgCheckpoint, CKPT_SPINOR_F64};
use lqcd::io::{read_checkpoint, CheckpointStore, IoError};
use proptest::prelude::*;

fn arb_payload(len: usize) -> impl Strategy<Value = Vec<Spinor<f64>>> {
    proptest::collection::vec(-100.0f64..100.0, len * 24).prop_map(move |v| {
        let mut out = vec![Spinor::zero(); len];
        for (i, s) in out.iter_mut().enumerate() {
            for sp in 0..4 {
                for c in 0..3 {
                    let k = (i * 12 + sp * 3 + c) * 2;
                    s.s[sp].c[c] = lqcd::core::complex::Complex::new(v[k], v[k + 1]);
                }
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any mix of duplication and reordering (faults that multiply or
    /// shuffle frames but never destroy them), a send/recv sequence delivers
    /// every payload exactly once, in order, bit-identically.
    #[test]
    fn exactly_once_under_duplication_and_reordering(
        seed in any::<u64>(),
        dup in 0.0f64..0.9,
        reorder in 0.0f64..0.9,
        payload in arb_payload(3),
    ) {
        let mut tr = FaultyTransport::<f64>::new(2);
        tr.set_faults(
            CommFaultProfile {
                duplicate_prob: dup,
                reorder_prob: reorder,
                seed,
                ..CommFaultProfile::default()
            },
            CommRetryPolicy::default(),
        );
        for seq in 0..16u64 {
            let mut p = payload.clone();
            // Tag the payload with the seq so cross-seq mixups are visible.
            p[0].s[0].c[0] = lqcd::core::complex::Complex::new(seq as f64, 0.0);
            tr.send(0, 1, 2, 1, p.clone(), seq).unwrap();
            let got = tr.recv(1, 2, 1, 0, seq, p.len()).unwrap();
            prop_assert_eq!(got, p, "seq {} must arrive exactly once, intact", seq);
        }
        // A duplicate of the final seq is still parked in the mailbox; a
        // drain recv (which must come up empty-handed) flushes it through
        // the seq filter so the accounting below is exact.
        prop_assert!(tr.recv(1, 2, 1, 0, 16, payload.len()).is_err());
        let stats = tr.fault_stats();
        // Duplicated and reordered frames were all discarded by seq dedup,
        // never delivered twice or out of order.
        prop_assert_eq!(
            stats.duplicates_dropped,
            stats.injected_duplicates + stats.injected_reorders,
            "every surplus frame is dropped by the seq filter"
        );
        prop_assert_eq!(stats.crc_failures, 0);
    }

    /// Dedup is idempotent in seq: re-sending an already-consumed seq (a
    /// late retransmission) never corrupts the delivery of the next seq.
    #[test]
    fn stale_retransmissions_are_ignored(
        payload in arb_payload(2),
        stale_repeats in 1usize..4,
    ) {
        let tr = {
            let mut t = FaultyTransport::<f64>::new(2);
            t.set_faults(CommFaultProfile::default(), CommRetryPolicy::default());
            t
        };
        // Deliver seq 0 cleanly.
        tr.send(0, 1, 0, 0, payload.clone(), 0).unwrap();
        let got = tr.recv(1, 0, 0, 0, 0, payload.len()).unwrap();
        prop_assert_eq!(&got, &payload);
        // A confused sender re-sends seq 0 several times, then seq 1.
        for _ in 0..stale_repeats {
            tr.send(0, 1, 0, 0, payload.clone(), 0).unwrap();
        }
        let mut next = payload.clone();
        next[0].s[0].c[0] = lqcd::core::complex::Complex::new(-7.0, 7.0);
        tr.send(0, 1, 0, 0, next.clone(), 1).unwrap();
        let got = tr.recv(1, 0, 0, 0, 1, next.len()).unwrap();
        prop_assert_eq!(got, next, "stale seq-0 frames must not shadow seq 1");
        prop_assert_eq!(tr.fault_stats().duplicates_dropped, stale_repeats as u64);
    }

    /// CG checkpoints survive serialization bit-exactly, and the two-slot
    /// store's CRC gate rejects a corrupted snapshot, restoring from the
    /// previous one instead.
    #[test]
    fn checkpoint_roundtrip_and_crc_gated_restore(
        case in any::<u32>(),
        iteration in 0usize..10_000,
        rho in 1e-12f64..1e6,
        x in arb_payload(2),
        r in arb_payload(2),
        p in arb_payload(2),
    ) {
        let ckpt = CgCheckpoint { iteration, rho, x, r, p };
        let flat = ckpt.to_f64_vec();
        prop_assert_eq!(flat.len(), 3 + 3 * 2 * CKPT_SPINOR_F64);
        let back = CgCheckpoint::<f64>::from_f64_vec(&flat).unwrap();
        prop_assert_eq!(&back, &ckpt, "flat round-trip must be bit-exact");
        // Truncation is rejected, not misparsed.
        prop_assert!(CgCheckpoint::<f64>::from_f64_vec(&flat[..flat.len() - 1]).is_none());

        // Through the on-disk store: save twice (slot a then b), corrupt the
        // newest file, and require the restore to fall back to the older
        // snapshot rather than resume from garbage.
        let dir = std::env::temp_dir()
            .join(format!("transport-props-{}-{case}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = CheckpointStore::new(&dir.join("cg"), "cg-state");
        let older = CgCheckpoint {
            iteration: iteration.saturating_sub(1),
            ..ckpt.clone()
        };
        store.save(&older.to_f64_vec()).unwrap();
        store.save(&flat).unwrap();

        let newest = store.slot_paths()[1].to_path_buf();
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&newest, &bytes).unwrap();
        prop_assert!(matches!(
            read_checkpoint(&newest),
            Err(IoError::ChecksumMismatch { .. })
        ));
        let (seq, data) = store.load_latest().unwrap();
        prop_assert_eq!(seq, 0, "restore falls back to the older slot");
        let restored = CgCheckpoint::<f64>::from_f64_vec(&data).unwrap();
        prop_assert_eq!(restored, older);
        std::fs::remove_dir_all(&dir).ok();
    }
}
