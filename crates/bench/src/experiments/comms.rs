//! `repro comms` — execute the communication policies and compare measured
//! against analytic exchange behavior.
//!
//! For each rank grid, every [`CommPolicy`] drives the sharded
//! halo-exchange dslash through real face packs, channel sends, and ghost
//! unpacks; the harness times the applications (best-of-N through the `obs`
//! wall clock), collects the kernel's [`CommStats`], and writes them next to
//! the analytic predictions from the *same* `CommPolicy` type
//! (`exchange_time`, `Decomposition::halo_bytes`) into `comms.csv`.
//!
//! Two invariants are asserted, not just recorded:
//!
//! - measured messages per apply == the analytic
//!   `Decomposition::messages_per_apply` (× ranks), for every policy;
//! - measured payload bytes == halo spinors × `size_of::<Spinor<f64>>` —
//!   related to the analytic half-spinor byte model by a pure format factor
//!   (the model ships compressed 24 B/site halos; the executor ships full
//!   f64 spinors). Both columns are emitted so the factor is auditable.
//!
//! The [`autotune::Tuner`] then sweeps the policies per grid from the
//! measured timings and the winner is flagged in the `tuned` column.

use crate::output::{print_table, ExperimentOutput};
use coral_machine::commpolicy::CommPolicy;
use coral_machine::specs;
use lqcd_core::comms::{tune_comm_policy, DomainDecomposition, ShardedField, ShardedHopping};
use lqcd_core::prelude::*;
use obs::{Clock, WallClock};
use std::sync::Arc;

/// Options for the comms subcommand.
#[derive(Default)]
pub struct CommsOpts {
    /// Smaller lattice and fewer repetitions — for CI smoke runs.
    pub quick: bool,
}

/// The CSV header `comms.csv` is written (and schema-checked) against.
pub const CSV_HEADER: &str = "grid_id,n_ranks,policy,measured_ms,analytic_exchange_ms,\
measured_bytes_sent,analytic_halo_bytes,messages,overlap_ms,bytes_packed,tuned";

/// Best-of-`reps` seconds for one apply, after one warmup call.
fn time_best(
    reps: usize,
    clock: &WallClock,
    kernel: &mut ShardedHopping<f64>,
    out: &mut ShardedField<f64>,
    inp: &mut ShardedField<f64>,
) -> f64 {
    kernel
        .apply(out, inp)
        .expect("comms experiment runs a fault-free transport");
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = clock.now();
        kernel
            .apply(out, inp)
            .expect("comms experiment runs a fault-free transport");
        best = best.min(clock.now() - t0);
    }
    best
}

/// Run the experiment and write `comms.csv` + a console table.
pub fn run_comms(out: &ExperimentOutput, opts: &CommsOpts) -> std::io::Result<()> {
    let (dims, l5, reps) = if opts.quick {
        ([4usize, 4, 4, 8], 4usize, 2usize)
    } else {
        ([8usize, 8, 8, 16], 8usize, 5usize)
    };
    // Ray is the only Table II machine with GPU-Direct available, so all six
    // policies are analytically meaningful on it.
    let machine = specs::ray();
    let grids: &[[usize; 4]] = if opts.quick {
        &[[1, 1, 1, 1], [2, 1, 1, 1], [2, 2, 1, 1]]
    } else {
        &[[1, 1, 1, 1], [2, 1, 1, 1], [2, 2, 1, 1], [2, 2, 2, 1]]
    };
    println!(
        "repro comms: {} L5={l5}, grids {grids:?}, machine {}",
        lqcd_core::lattice::volume_string(dims),
        machine.name
    );

    let lat = Lattice::new(dims);
    let gauge = GaugeField::<f64>::hot(&lat, 7);
    let src = FermionField::<f64>::gaussian(l5 * lat.volume(), 8).data;
    let clock = WallClock::new();
    let tuner = autotune::Tuner::new();
    let policies = CommPolicy::all();
    let spinor_bytes = std::mem::size_of::<Spinor<f64>>() as f64;

    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut table: Vec<Vec<String>> = Vec::new();
    for (grid_id, &grid) in grids.iter().enumerate() {
        let domain = Arc::new(
            DomainDecomposition::new(&lat, grid, l5, machine.gpus_per_node)
                .expect("grid divides the lattice"),
        );
        let n_ranks = domain.n_ranks();
        let decomp = domain.decomp();
        let (intra, inter) = decomp.halo_bytes();
        let analytic_bytes = (intra + inter) * n_ranks as f64;

        // Tuner sweep on a scratch kernel: measured timings pick the winner
        // for this (geometry, precision, rank grid).
        let winner = {
            let mut k = ShardedHopping::new(domain.clone(), &gauge, true, policies[0]);
            let mut si = ShardedField::scatter(&domain, &src, l5);
            let mut so = ShardedField::zeros(&domain, l5);
            tune_comm_policy(&tuner, &mut k, &mut so, &mut si)
        };

        for (pi, &policy) in policies.iter().enumerate() {
            let mut kernel = ShardedHopping::new(domain.clone(), &gauge, true, policy);
            let mut si = ShardedField::scatter(&domain, &src, l5);
            let mut so = ShardedField::zeros(&domain, l5);
            let secs = time_best(reps, &clock, &mut kernel, &mut so, &mut si);
            let s = kernel.stats();
            let applies = s.applies as f64;

            // Measured-vs-analytic cross-checks: the executed exchange must
            // agree with the cost model's own message and site accounting.
            assert_eq!(
                s.messages as usize,
                s.applies as usize * domain.total_messages_per_apply(),
                "grid {grid:?} policy {}",
                policy.label()
            );
            let analytic_halo_sites: f64 =
                decomp.halos.iter().map(|h| h.sites).sum::<f64>() * n_ranks as f64;
            let measured_sites_per_apply = s.halo_sites as f64 / applies;
            assert!(
                (measured_sites_per_apply - analytic_halo_sites).abs() < 0.5,
                "halo sites: measured {measured_sites_per_apply}, analytic {analytic_halo_sites}"
            );

            let analytic_ms = policy.exchange_time(&machine, decomp) * 1e3;
            let measured_bytes = s.bytes_sent as f64 / applies;
            let packed_bytes = s.bytes_packed as f64 / applies;
            let overlap_ms = s.overlap_seconds / applies * 1e3;
            assert!(
                (measured_bytes - measured_sites_per_apply * spinor_bytes).abs() < 0.5,
                "payload bytes must be halo sites x spinor size"
            );

            let tuned = if policy == winner { 1.0 } else { 0.0 };
            rows.push(vec![
                grid_id as f64,
                n_ranks as f64,
                pi as f64,
                secs * 1e3,
                analytic_ms,
                measured_bytes,
                analytic_bytes,
                (s.messages as f64 / applies).round(),
                overlap_ms,
                packed_bytes,
                tuned,
            ]);
            table.push(vec![
                domain.grid_string(),
                policy.label(),
                format!("{:.3}", secs * 1e3),
                format!("{analytic_ms:.4}"),
                format!("{measured_bytes:.0}"),
                format!("{analytic_bytes:.0}"),
                format!("{:.0}", s.messages as f64 / applies),
                format!("{overlap_ms:.4}"),
                if tuned > 0.0 {
                    "*".into()
                } else {
                    String::new()
                },
            ]);
        }
    }

    let path = out.csv("comms.csv", CSV_HEADER, &rows)?;
    print_table(
        "halo exchange: measured vs analytic",
        &[
            "grid",
            "policy",
            "meas ms",
            "model ms",
            "meas B",
            "model B",
            "msgs",
            "overlap ms",
            "tuned",
        ],
        &table,
    );
    println!("wrote {}", path.display());
    Ok(())
}

/// `--check-schema FILE`: verify a committed `comms.csv` still has the
/// column layout this build writes. Exits non-zero on mismatch.
pub fn check_schema(file: &str) {
    let committed = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("repro comms --check-schema: cannot read {file}: {e}");
        std::process::exit(1);
    });
    let header = committed.lines().next().unwrap_or("");
    if header == CSV_HEADER {
        println!("schema check OK: {file} matches the current comms.csv columns");
    } else {
        eprintln!("schema mismatch in {file}:");
        eprintln!("  committed: {header}");
        eprintln!("  expected:  {CSV_HEADER}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_header_has_measured_and_analytic_columns() {
        let cols: Vec<&str> = CSV_HEADER.split(',').collect();
        assert_eq!(cols.len(), 11);
        assert!(cols.contains(&"measured_ms"));
        assert!(cols.contains(&"analytic_exchange_ms"));
        assert!(cols.contains(&"measured_bytes_sent"));
        assert!(cols.contains(&"analytic_halo_bytes"));
        assert!(cols.contains(&"tuned"));
    }

    #[test]
    fn quick_run_writes_csv_with_all_policies() {
        let dir = std::env::temp_dir().join("repro_comms_test");
        let out = ExperimentOutput::new(&dir).unwrap();
        run_comms(&out, &CommsOpts { quick: true }).unwrap();
        let content = std::fs::read_to_string(out.path("comms.csv")).unwrap();
        let mut lines = content.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        // 3 quick grids x 6 policies.
        assert_eq!(lines.count(), 3 * CommPolicy::all().len());
        std::fs::remove_file(out.path("comms.csv")).ok();
    }
}
