//! Quenched gauge-field generation for the Wilson plaquette action.
//!
//! The paper consumes externally produced ensembles of "gluonic field
//! configurations" (the Monte Carlo samples that dictate how the quarks
//! move). We have no access to the MILC HISQ ensembles, so this module
//! generates real quenched SU(3) ensembles with the standard Cabibbo–Marinari
//! pseudo-heat-bath (Kennedy–Pendleton SU(2) subgroup sampling) plus
//! microcanonical overrelaxation. The update exploits the same red–black
//! structure as the solver: all sites of one parity and one direction update
//! in parallel.

use crate::complex::Complex;
use crate::field::GaugeField;
use crate::lattice::{Lattice, Parity, ND};
use crate::su3::{Su3, NC};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// The three SU(2) subgroups of SU(3) used by Cabibbo–Marinari.
const SUBGROUPS: [(usize, usize); 3] = [(0, 1), (0, 2), (1, 2)];

/// Parameters of the quenched update.
#[derive(Clone, Copy, Debug)]
pub struct HeatbathParams {
    /// Wilson gauge coupling β = 6/g².
    pub beta: f64,
    /// Overrelaxation sweeps per heat-bath sweep.
    pub n_or: usize,
}

impl Default for HeatbathParams {
    fn default() -> Self {
        Self { beta: 5.7, n_or: 3 }
    }
}

/// Sum of the six staples around link `(x, mu)`, oriented so the local
/// action is `−β/3 · Re Tr[U_μ(x) Σ]`.
fn staple_sum(lat: &Lattice, gauge: &GaugeField<f64>, x: usize, mu: usize) -> Su3<f64> {
    let mut sum = Su3::zero();
    let nb = lat.neighbors(x);
    for nu in 0..ND {
        if nu == mu {
            continue;
        }
        let x_mu = nb.fwd[mu] as usize;
        let x_nu = nb.fwd[nu] as usize;
        // Forward staple: U_ν(x+μ̂) U_μ†(x+ν̂) U_ν†(x).
        let fwd = gauge.link(x_mu, nu) * gauge.link(x_nu, mu).dagger() * gauge.link(x, nu).dagger();
        sum += fwd;
        // Backward staple: U_ν†(x+μ̂−ν̂) U_μ†(x−ν̂) U_ν(x−ν̂).
        let x_dn_nu = nb.bwd[nu] as usize;
        let x_mu_dn_nu = lat.neighbors(x_mu).bwd[nu] as usize;
        let bwd = gauge.link(x_mu_dn_nu, nu).dagger()
            * gauge.link(x_dn_nu, mu).dagger()
            * gauge.link(x_dn_nu, nu);
        sum += bwd;
    }
    sum
}

use crate::field::GaugeLinks;

/// Average plaquette `⟨Re Tr U_{μν}⟩ / 3` over all sites and planes.
pub fn average_plaquette(lat: &Lattice, gauge: &GaugeField<f64>) -> f64 {
    let total = crate::reduce::sum_sites(lat.volume(), |x| {
        let nb = lat.neighbors(x);
        let mut acc = 0.0;
        for mu in 0..ND {
            for nu in (mu + 1)..ND {
                let x_mu = nb.fwd[mu] as usize;
                let x_nu = nb.fwd[nu] as usize;
                let p = gauge.link(x, mu)
                    * gauge.link(x_mu, nu)
                    * gauge.link(x_nu, mu).dagger()
                    * gauge.link(x, nu).dagger();
                acc += p.re_trace() / NC as f64;
            }
        }
        acc
    });
    total / (lat.volume() as f64 * 6.0)
}

/// A unit quaternion representing an SU(2) element
/// `a0 + i (a1 σ1 + a2 σ2 + a3 σ3)`.
#[derive(Clone, Copy, Debug)]
struct Quat {
    a: [f64; 4],
}

impl Quat {
    fn conj(self) -> Self {
        Self {
            a: [self.a[0], -self.a[1], -self.a[2], -self.a[3]],
        }
    }

    fn mul(self, o: Self) -> Self {
        let [a0, a1, a2, a3] = self.a;
        let [b0, b1, b2, b3] = o.a;
        Self {
            a: [
                a0 * b0 - a1 * b1 - a2 * b2 - a3 * b3,
                a0 * b1 + a1 * b0 + a2 * b3 - a3 * b2,
                a0 * b2 - a1 * b3 + a2 * b0 + a3 * b1,
                a0 * b3 + a1 * b2 - a2 * b1 + a3 * b0,
            ],
        }
    }
}

/// Extract the SU(2)-projected part of the 2×2 submatrix `(i, j)` of `w`.
/// Returns the quaternion components (unnormalized) of
/// `½ (w − w† + Tr(w†) 1)` restricted to the subgroup.
fn project_su2(w: &Su3<f64>, i: usize, j: usize) -> [f64; 4] {
    let w00 = w.m[i][i];
    let w01 = w.m[i][j];
    let w10 = w.m[j][i];
    let w11 = w.m[j][j];
    [
        0.5 * (w00.re + w11.re),
        0.5 * (w01.im + w10.im),
        0.5 * (w01.re - w10.re),
        0.5 * (w00.im - w11.im),
    ]
}

/// Embed an SU(2) quaternion into the `(i, j)` subgroup of SU(3).
fn embed_su2(q: Quat, i: usize, j: usize) -> Su3<f64> {
    let mut u = Su3::identity();
    let [a0, a1, a2, a3] = q.a;
    u.m[i][i] = Complex::new(a0, a3);
    u.m[i][j] = Complex::new(a2, a1);
    u.m[j][i] = Complex::new(-a2, a1);
    u.m[j][j] = Complex::new(a0, -a3);
    u
}

/// Kennedy–Pendleton sampling of `x0 = cos θ` with density
/// `∝ √(1−x0²) exp(α x0)`, plus a uniform direction for the vector part.
fn kp_sample(rng: &mut SmallRng, alpha: f64) -> Quat {
    let x0 = if alpha < 1e-10 {
        // α → 0: rejection-sample the semicircle density directly.
        loop {
            let x: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            if rng.gen::<f64>() * rng.gen::<f64>() <= 1.0 - x * x {
                break x;
            }
        }
    } else {
        loop {
            let r1: f64 = rng.gen::<f64>().max(1e-300);
            let r2: f64 = rng.gen();
            let r3: f64 = rng.gen::<f64>().max(1e-300);
            let c = (2.0 * std::f64::consts::PI * r2).cos();
            let lambda2 = -(r1.ln() + c * c * r3.ln()) / (2.0 * alpha);
            let r4: f64 = rng.gen();
            if r4 * r4 <= 1.0 - lambda2 {
                break 1.0 - 2.0 * lambda2;
            }
        }
    };
    // Uniform direction on the 2-sphere for the vector part.
    let norm = (1.0 - x0 * x0).max(0.0).sqrt();
    let cos_t = rng.gen::<f64>() * 2.0 - 1.0;
    let sin_t = (1.0 - cos_t * cos_t).sqrt();
    let phi = 2.0 * std::f64::consts::PI * rng.gen::<f64>();
    Quat {
        a: [
            x0,
            norm * sin_t * phi.cos(),
            norm * sin_t * phi.sin(),
            norm * cos_t,
        ],
    }
}

/// One subgroup update of a single link, shared by heat bath and
/// overrelaxation.
fn update_link(
    link: &mut Su3<f64>,
    staple: &Su3<f64>,
    beta: f64,
    rng: &mut SmallRng,
    overrelax: bool,
) {
    for &(i, j) in &SUBGROUPS {
        let w = *link * *staple;
        let proj = project_su2(&w, i, j);
        let k = (proj.iter().map(|a| a * a).sum::<f64>()).sqrt();
        if k < 1e-14 {
            continue; // staple orthogonal to this subgroup; nothing to do
        }
        let v = Quat {
            a: [proj[0] / k, proj[1] / k, proj[2] / k, proj[3] / k],
        };
        let g = if overrelax {
            // Microcanonical reflection: g = V†², preserves Re Tr(U Σ).
            v.conj().mul(v.conj())
        } else {
            // Heat bath: g = u V† with u ~ KP at α = 2kβ/Nc.
            let alpha = 2.0 * k * beta / NC as f64;
            kp_sample(rng, alpha).mul(v.conj())
        };
        *link = embed_su2(g, i, j) * *link;
    }
}

/// One full sweep (all parities × directions) of heat bath or overrelaxation.
fn sweep(
    lat: &Lattice,
    gauge: &mut GaugeField<f64>,
    beta: f64,
    seed: u64,
    sweep_idx: u64,
    overrelax: bool,
) {
    for parity in [Parity::Even, Parity::Odd] {
        for mu in 0..ND {
            // Compute the updated links for this (parity, mu) in parallel
            // against the frozen field — staples of same-parity links never
            // reference same-parity `mu`-links — then write them back.
            let sites = lat.sites_with_parity(parity).to_vec();
            let updated: Vec<Su3<f64>> = sites
                .par_iter()
                .map(|&x| {
                    let x = x as usize;
                    let st = staple_sum(lat, gauge, x, mu);
                    let mut rng = SmallRng::seed_from_u64(
                        seed ^ sweep_idx.wrapping_mul(0x9E3779B97F4A7C15)
                            ^ ((x as u64 * ND as u64 + mu as u64).wrapping_mul(0xBF58476D1CE4E5B9))
                            ^ if overrelax { 0x5555_5555 } else { 0 },
                    );
                    let mut link = gauge.link(x, mu);
                    update_link(&mut link, &st, beta, &mut rng, overrelax);
                    link
                })
                .collect();
            for (&x, link) in sites.iter().zip(updated) {
                *gauge.link_mut(x as usize, mu) = link;
            }
        }
    }
}

/// A quenched ensemble generator.
///
/// Produces a stream of decorrelated configurations: `n_therm` initial
/// sweeps, then `n_skip` sweeps between saved configurations, each "sweep"
/// being one heat-bath pass plus `n_or` overrelaxation passes.
pub struct QuenchedEnsemble {
    lattice: Lattice,
    gauge: GaugeField<f64>,
    params: HeatbathParams,
    seed: u64,
    sweeps_done: u64,
    /// Plaquette value after each completed update cycle.
    pub plaquette_history: Vec<f64>,
}

impl QuenchedEnsemble {
    /// Start from a hot (random) configuration.
    pub fn hot_start(lattice: &Lattice, params: HeatbathParams, seed: u64) -> Self {
        Self {
            lattice: lattice.clone(),
            gauge: GaugeField::hot(lattice, seed),
            params,
            seed,
            sweeps_done: 0,
            plaquette_history: Vec::new(),
        }
    }

    /// Start from a cold (unit) configuration.
    pub fn cold_start(lattice: &Lattice, params: HeatbathParams, seed: u64) -> Self {
        Self {
            lattice: lattice.clone(),
            gauge: GaugeField::cold(lattice),
            params,
            seed,
            sweeps_done: 0,
            plaquette_history: Vec::new(),
        }
    }

    /// The current configuration.
    pub fn current(&self) -> &GaugeField<f64> {
        &self.gauge
    }

    /// Run one update cycle (1 heat-bath + `n_or` overrelaxation sweeps) and
    /// record the plaquette.
    pub fn update(&mut self) {
        sweep(
            &self.lattice,
            &mut self.gauge,
            self.params.beta,
            self.seed,
            self.sweeps_done,
            false,
        );
        self.sweeps_done += 1;
        for _ in 0..self.params.n_or {
            sweep(
                &self.lattice,
                &mut self.gauge,
                self.params.beta,
                self.seed,
                self.sweeps_done,
                true,
            );
            self.sweeps_done += 1;
        }
        // Control rounding drift from repeated group multiplications.
        if self.sweeps_done % 32 < (1 + self.params.n_or) as u64 {
            self.gauge.reunitarize();
        }
        self.plaquette_history
            .push(average_plaquette(&self.lattice, &self.gauge));
    }

    /// Thermalize with `n_therm` cycles, then emit `n_configs` configurations
    /// separated by `n_skip` cycles each.
    pub fn generate(
        &mut self,
        n_therm: usize,
        n_configs: usize,
        n_skip: usize,
    ) -> Vec<GaugeField<f64>> {
        for _ in 0..n_therm {
            self.update();
        }
        let mut configs = Vec::with_capacity(n_configs);
        for _ in 0..n_configs {
            for _ in 0..n_skip.max(1) {
                self.update();
            }
            configs.push(self.gauge.clone());
        }
        configs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plaquette_of_cold_gauge_is_one() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let g = GaugeField::<f64>::cold(&lat);
        assert!((average_plaquette(&lat, &g) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn plaquette_of_hot_gauge_is_near_zero() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let g = GaugeField::<f64>::hot(&lat, 5);
        assert!(average_plaquette(&lat, &g).abs() < 0.1);
    }

    #[test]
    fn heatbath_preserves_group_manifold() {
        let lat = Lattice::new([4, 4, 2, 2]);
        let mut ens = QuenchedEnsemble::hot_start(&lat, HeatbathParams::default(), 7);
        for _ in 0..3 {
            ens.update();
        }
        assert!(ens.current().max_unitarity_error() < 1e-9);
    }

    #[test]
    fn strong_coupling_gives_small_plaquette_weak_coupling_large() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let mut strong =
            QuenchedEnsemble::hot_start(&lat, HeatbathParams { beta: 0.5, n_or: 1 }, 11);
        let mut weak = QuenchedEnsemble::cold_start(
            &lat,
            HeatbathParams {
                beta: 12.0,
                n_or: 1,
            },
            11,
        );
        for _ in 0..10 {
            strong.update();
            weak.update();
        }
        let ps = strong.plaquette_history.last().copied().unwrap();
        let pw = weak.plaquette_history.last().copied().unwrap();
        assert!(ps < 0.25, "strong coupling plaquette {ps}");
        // Leading weak-coupling expansion: ⟨P⟩ ≈ 1 − 2/β = 0.833 at β = 12.
        assert!(
            (pw - (1.0 - 2.0 / 12.0)).abs() < 0.04,
            "weak coupling plaquette {pw}"
        );
    }

    #[test]
    fn beta_5_7_plaquette_matches_literature() {
        // Quenched Wilson action at β = 5.7 has ⟨P⟩ ≈ 0.549 in the
        // thermodynamic limit; a 4⁴ box lands close enough for a loose check.
        let lat = Lattice::new([4, 4, 4, 4]);
        let mut ens = QuenchedEnsemble::cold_start(&lat, HeatbathParams { beta: 5.7, n_or: 2 }, 13);
        for _ in 0..40 {
            ens.update();
        }
        let tail = &ens.plaquette_history[20..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (0.50..0.62).contains(&mean),
            "β=5.7 plaquette {mean} outside literature band"
        );
    }

    #[test]
    fn hot_and_cold_starts_converge_to_same_plaquette() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let p = HeatbathParams { beta: 5.9, n_or: 2 };
        let mut hot = QuenchedEnsemble::hot_start(&lat, p, 17);
        let mut cold = QuenchedEnsemble::cold_start(&lat, p, 19);
        for _ in 0..30 {
            hot.update();
            cold.update();
        }
        let ph: f64 = hot.plaquette_history[20..].iter().sum::<f64>() / 10.0;
        let pc: f64 = cold.plaquette_history[20..].iter().sum::<f64>() / 10.0;
        assert!(
            (ph - pc).abs() < 0.05,
            "hot {ph} and cold {pc} should agree after thermalization"
        );
    }

    #[test]
    fn generate_returns_requested_configs() {
        let lat = Lattice::new([2, 2, 2, 4]);
        let mut ens = QuenchedEnsemble::hot_start(&lat, HeatbathParams::default(), 23);
        let configs = ens.generate(2, 3, 2);
        assert_eq!(configs.len(), 3);
        // Successive configs must differ (the chain is moving).
        assert_ne!(configs[0].links()[3], configs[1].links()[3]);
    }

    #[test]
    fn overrelaxation_preserves_action_approximately() {
        let lat = Lattice::new([4, 4, 2, 2]);
        let mut ens = QuenchedEnsemble::hot_start(&lat, HeatbathParams { beta: 5.7, n_or: 0 }, 29);
        for _ in 0..10 {
            ens.update();
        }
        let before = average_plaquette(&lat, ens.current());
        let mut g = ens.current().clone();
        sweep(&lat, &mut g, 5.7, 31, 999, true);
        let after = average_plaquette(&lat, &g);
        // One OR sweep is microcanonical per link but the field changes as
        // the sweep proceeds; the plaquette should stay within a few percent.
        assert!(
            (before - after).abs() < 0.02,
            "OR changed plaquette too much: {before} -> {after}"
        );
    }
}
