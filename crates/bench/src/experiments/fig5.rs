//! Figs. 5, 6, 7: weak scaling under the job managers and the per-solve
//! performance histogram.

use crate::output::{print_table, ExperimentOutput};
use coral_machine::{sierra, summit};
use mpi_jm::report::histogram;
use mpi_jm::weak::{weak_scaling_point, MpiFlavor, WeakScalingPoint};
use mpi_jm::{Cluster, ClusterConfig, MpiJmConfig, MpiJmScheduler, Workload};

/// Fig. 5: Sierra weak scaling of 4-node (16-GPU) 48³×64 solves under the
/// three deployment modes.
pub fn run_fig5(out: &ExperimentOutput) -> Vec<(MpiFlavor, Vec<WeakScalingPoint>)> {
    let machine = sierra();
    // Group counts: up to 4224 nodes = 1056 groups = 16896 GPUs.
    let group_counts = [8usize, 32, 64, 128, 256, 512, 1056];
    let flavors = [
        MpiFlavor::SpectrumIndividual,
        MpiFlavor::OpenMpiJmBlocks,
        MpiFlavor::Mvapich2JmSingle,
    ];

    let mut all = Vec::new();
    for flavor in flavors {
        let mut series = Vec::new();
        for &groups in &group_counts {
            // SpectrumMPI as individual jobs maxed out at 400 jobs (paper).
            if flavor == MpiFlavor::SpectrumIndividual && groups > 400 {
                continue;
            }
            let p = weak_scaling_point(
                &machine,
                [48, 48, 48, 64],
                12,
                4,
                groups,
                3,
                flavor,
                11 + groups as u64,
            )
            .expect("16-GPU groups decompose 48^3x64");
            series.push(p);
        }
        all.push((flavor, series));
    }

    for (flavor, series) in &all {
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|p| {
                vec![
                    p.n_gpus.to_string(),
                    format!("{:.2}", p.pflops),
                    format!("{:.2}", p.utilization),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 5 — Sierra weak scaling, {}", flavor.label()),
            &["GPUs", "PFLOPS", "utilization"],
            &rows,
        );
        let csv: Vec<Vec<f64>> = series
            .iter()
            .map(|p| vec![p.n_gpus as f64, p.pflops, p.utilization, p.makespan])
            .collect();
        let tag = flavor.label().replace([':', ' ', '/'], "_").to_lowercase();
        out.csv(
            &format!("fig5_{tag}.csv"),
            "gpus,pflops,utilization,makespan_s",
            &csv,
        )
        .expect("csv");
    }
    println!(
        "\npaper: ~20 PFLOPS peak sustained at ~16k GPUs in a single MVAPICH2 \
         mpi_jm submission; 15% of peak at scale vs 20% on small jobs"
    );
    all
}

/// Fig. 6: Summit weak scaling of 4-node (24-GPU) 64³×96 solves under METAQ.
pub fn run_fig6(out: &ExperimentOutput) -> Vec<WeakScalingPoint> {
    let machine = summit();
    let group_counts = [4usize, 16, 48, 96, 192, 276];
    let mut series = Vec::new();
    for &groups in &group_counts {
        let p = weak_scaling_point(
            &machine,
            [64, 64, 64, 96],
            12,
            4,
            groups,
            3,
            MpiFlavor::SpectrumMetaq,
            23 + groups as u64,
        )
        .expect("16-GPU groups decompose 64^3x96");
        series.push(p);
    }
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| {
            vec![
                p.n_gpus.to_string(),
                format!("{:.2}", p.pflops),
                format!("{:.2}", p.utilization),
            ]
        })
        .collect();
    print_table(
        "Fig. 6 — Summit weak scaling, SpectrumMPI: METAQ",
        &["GPUs", "PFLOPS", "utilization"],
        &rows,
    );
    println!("\npaper: near-perfect weak scaling to ~8 PFLOPS at ~6600 GPUs");
    let csv: Vec<Vec<f64>> = series
        .iter()
        .map(|p| vec![p.n_gpus as f64, p.pflops, p.utilization])
        .collect();
    out.csv("fig6_summit_metaq.csv", "gpus,pflops,utilization", &csv)
        .expect("csv");
    series
}

/// Fig. 7: histogram of per-solve performance in the largest Sierra run
/// (13500 GPUs under mpi_jm with MVAPICH2).
pub fn run_fig7(out: &ExperimentOutput) -> (Vec<f64>, Vec<usize>) {
    let machine = sierra();
    let groups = 843; // 13488 GPUs in 16-GPU groups
    let tuner = autotune::Tuner::new();
    let model = coral_machine::SolverPerfModel::new(machine.clone(), [48, 48, 48, 64], 12);
    let point = model.performance(&tuner, 16).expect("16 GPUs fits");
    let iterations = 5000.0;
    let solve_seconds = point.time_per_iter * iterations;
    let solve_flops = point.tflops * 1e12 * solve_seconds;

    let workload = Workload::uniform_solves(groups * 4, 4, solve_seconds, solve_flops);
    let mut cluster = Cluster::new(
        machine,
        &ClusterConfig {
            nodes: groups * 4,
            jitter_sigma: 0.05,
            startup_failure_prob: 0.0,
            seed: 77,
        },
    );
    let sched = MpiJmScheduler::new(MpiJmConfig {
        lump_nodes: 32,
        block_nodes: 4,
        spawn_seconds: 0.5,
        co_schedule: true,
        mpi_efficiency: MpiFlavor::Mvapich2JmSingle.efficiency(),
    });
    let report = sched.run(&mut cluster, &workload);
    let rates = report.per_task_tflops(solve_flops);

    let lo = rates.iter().fold(f64::INFINITY, |a, &b| a.min(b)) * 0.95;
    let hi = rates.iter().fold(0.0f64, |a, &b| a.max(b)) * 1.05;
    let (centers, counts) = histogram(&rates, lo, hi, 24);

    let rows: Vec<Vec<String>> = centers
        .iter()
        .zip(&counts)
        .map(|(c, n)| {
            vec![
                format!("{c:.2}"),
                n.to_string(),
                "#".repeat((*n as f64 / 8.0).ceil() as usize),
            ]
        })
        .collect();
    print_table(
        "Fig. 7 — per-solve performance histogram, 13488 GPUs, MVAPICH2 mpi_jm",
        &["TFLOPS/solve", "count", ""],
        &rows,
    );
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    println!(
        "\n{} solves; mean {mean:.2} TFLOPS/solve; aggregate sustained {:.1} PFLOPS",
        rates.len(),
        report.sustained_flops() / 1e15
    );

    let csv: Vec<Vec<f64>> = centers
        .iter()
        .zip(&counts)
        .map(|(&c, &n)| vec![c, n as f64])
        .collect();
    out.csv("fig7_histogram.csv", "tflops_per_solve,count", &csv)
        .expect("csv");
    (centers, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_series_scale_and_order_correctly() {
        let out = ExperimentOutput::new(std::env::temp_dir().join("fig5_test")).unwrap();
        let all = run_fig5(&out);
        // Every flavor weak-scales: last point ≥ 8x the first (with ~128x
        // more GPUs).
        for (flavor, series) in &all {
            let first = series.first().unwrap();
            let last = series.last().unwrap();
            assert!(
                last.pflops > 8.0 * first.pflops,
                "{}: {} -> {}",
                flavor.label(),
                first.pflops,
                last.pflops
            );
        }
        // MVAPICH2 reaches the largest scale and lands in the paper's
        // 15-25 PFLOPS window.
        let mv = &all[2].1;
        let top = mv.last().unwrap();
        assert_eq!(top.n_gpus, 1056 * 16);
        assert!(
            (10.0..30.0).contains(&top.pflops),
            "MVAPICH2 top point {} PFLOPS",
            top.pflops
        );
    }

    #[test]
    fn fig7_histogram_is_unimodal_spread() {
        let out = ExperimentOutput::new(std::env::temp_dir().join("fig7_test")).unwrap();
        let (_, counts) = run_fig7(&out);
        let total: usize = counts.iter().sum();
        assert_eq!(total, 843 * 4, "every solve lands in a bin");
        // More than one occupied bin (node jitter spreads the rates).
        assert!(counts.iter().filter(|&&c| c > 0).count() > 3);
    }
}
