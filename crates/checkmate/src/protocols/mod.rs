//! Shadow models of the repo's concurrent protocol cores.
//!
//! Each module ports one real protocol onto [`crate::explore::System`]
//! through a thin adapter: the shared state becomes modeled objects, the
//! participants become cooperative tasks, and fault injection becomes
//! extra adversary tasks whose timing the explorer enumerates like any
//! other scheduling choice. Every adapter carries seeded-defect switches
//! (`skip_dedup`, `single_slot`, `atomic: false`) so the harness can prove
//! it still has teeth: flipping a switch must produce a violating,
//! replayable schedule.
//!
//! Fidelity notes for each adapter live in its module docs; the summary of
//! what is and is not modeled is in DESIGN.md ("Concurrency verification").

pub mod cache;
pub mod checkpoint;
pub mod counter;
pub mod mailbox;
pub mod retransmit;
