//! Mathematical contracts of the low-mode deflation subsystem.
//!
//! The [`Deflation`] projector `P = V V†` over Lanczos eigenpairs of the
//! Hermitian positive-definite `D†D` must be idempotent and Hermitian (to
//! the accuracy of the computed subspace), removing the subspace component
//! must never grow a residual, and the eigenpairs themselves must satisfy
//! the advertised `‖A v − λ v‖` bound. The retirement test pins the
//! solver-side contract: a column that converges and retires mid-block is
//! never written again, so its bits match a solo solve exactly.

use lqcd::core::prelude::*;
use lqcd::core::solver::lanczos;
use obs::{assert_event_count, Registry};

/// Shared 4×4×2×4 Wilson normal-operator rig with a moderately light mass,
/// so the low modes carry real weight in random sources.
struct Rig {
    lat: Lattice,
    gauge: GaugeField<f64>,
}

fn rig() -> Rig {
    let lat = Lattice::new([4, 4, 2, 4]);
    let gauge = GaugeField::<f64>::hot(&lat, 51);
    Rig { lat, gauge }
}

#[test]
fn projector_is_idempotent_and_hermitian() {
    let r = rig();
    let d = WilsonDirac::new(&r.lat, &r.gauge, 0.1, true);
    let a = NormalOp::new(&d);
    let v = r.lat.volume();
    let defl = Deflation::new(lanczos_lowest(&a, 6, 70, 11));
    assert_eq!(defl.n_modes(), 6);

    let x = FermionField::<f64>::gaussian(v, 400).data;
    let y = FermionField::<f64>::gaussian(v, 401).data;

    // Idempotence: P(Px) == Px up to the basis orthonormality error.
    let mut px = vec![Spinor::zero(); v];
    let mut ppx = vec![Spinor::zero(); v];
    defl.apply_projector(&mut px, &x);
    defl.apply_projector(&mut ppx, &px);
    let mut diff = ppx.clone();
    blas::axpy(-1.0, &px, &mut diff);
    let rel = (blas::norm_sqr(&diff) / blas::norm_sqr(&px)).sqrt();
    assert!(rel < 1e-10, "P² deviates from P by {rel:e}");

    // Hermiticity: ⟨y, Px⟩ == ⟨Py, x⟩ to rounding.
    let mut py = vec![Spinor::zero(); v];
    defl.apply_projector(&mut py, &y);
    let lhs = blas::dot(&y, &px);
    let rhs = blas::dot(&py, &x);
    let scale = blas::norm_sqr(&x).sqrt() * blas::norm_sqr(&y).sqrt();
    assert!(
        (lhs - rhs).abs() / scale < 1e-12,
        "⟨y,Px⟩={lhs:?} vs ⟨Py,x⟩={rhs:?}"
    );
}

#[test]
fn projecting_out_never_grows_the_residual() {
    let r = rig();
    let d = WilsonDirac::new(&r.lat, &r.gauge, 0.05, true);
    let a = NormalOp::new(&d);
    let v = r.lat.volume();
    let defl = Deflation::new(lanczos_lowest(&a, 6, 70, 11));

    for seed in [410u64, 411, 412] {
        let mut res = FermionField::<f64>::gaussian(v, seed).data;
        let before = blas::norm_sqr(&res).sqrt();
        defl.project_out(&mut res);
        let after = blas::norm_sqr(&res).sqrt();
        assert!(
            after <= before * (1.0 + 1e-12),
            "seed {seed}: ‖(1−P)r‖={after} grew past ‖r‖={before}"
        );
        // A Gaussian source always overlaps the low modes: the removal
        // must be strict, not a no-op.
        assert!(
            after < before * 0.999999,
            "seed {seed}: projection removed nothing"
        );
    }
}

#[test]
fn restarted_lanczos_pairs_meet_the_residual_bound() {
    let r = rig();
    let d = WilsonDirac::new(&r.lat, &r.gauge, 0.1, true);
    let a = NormalOp::new(&d);
    let v = r.lat.volume();
    let resid_tol = 1e-3;
    let pairs = lanczos(
        &a,
        &LanczosParams::new(4, 80, 7).with_restarts(3, resid_tol),
    );
    assert_eq!(pairs.len(), 4);

    let mut prev = f64::NEG_INFINITY;
    for (k, p) in pairs.iter().enumerate() {
        assert!(p.value > 0.0, "D†D eigenvalues are positive");
        assert!(p.value >= prev, "pairs must come back ascending");
        prev = p.value;
        let mut av = vec![Spinor::zero(); v];
        a.apply(&mut av, &p.vector);
        blas::axpy(-p.value, &p.vector, &mut av);
        let res = blas::norm_sqr(&av).sqrt();
        let bound = resid_tol * p.value.abs().max(1.0);
        assert!(
            res <= bound,
            "pair {k}: ‖Av−λv‖={res:e} exceeds the accepted bound {bound:e}"
        );
        let nrm = blas::norm_sqr(&p.vector).sqrt();
        assert!((nrm - 1.0).abs() < 1e-12, "pair {k} is not unit norm");
    }
}

/// A column built from the lowest eigenvector converges almost instantly;
/// the other column keeps the block iterating long after. The early
/// column's retired bits must match a solo solve of the same source
/// exactly — proof it was never written again after retirement.
#[test]
fn retired_column_is_bit_stable_under_continued_iteration() {
    let r = rig();
    let d = WilsonDirac::new(&r.lat, &r.gauge, 0.1, true);
    let a = NormalOp::new(&d);
    let v = r.lat.volume();
    let modes = lanczos_lowest(&a, 2, 60, 9);

    let easy = modes[0].vector.clone(); // an eigenvector: CG solves it in O(1) iterations
    let hard = FermionField::<f64>::gaussian(v, 430).data;
    let bb = BlockSpinor::from_columns(&[easy.clone(), hard.clone()]);
    let params = CgParams::default();

    let reg = Registry::new();
    let (stats, xb) = {
        let _guard = reg.install_scoped();
        let mut xb = BlockSpinor::zeros(v, 2);
        let mut rb = ReliableBlock::new(&a);
        let stats = cg_block(&mut rb, &mut xb, &bb, params);
        (stats, xb)
    };
    assert!(stats[0].converged && stats[1].converged);
    assert!(
        stats[0].iterations + 5 < stats[1].iterations,
        "the eigenvector column must retire far earlier ({} vs {})",
        stats[0].iterations,
        stats[1].iterations
    );
    // One retirement event per column, each carrying its own iteration
    // count.
    assert_event_count!(reg, "solver.cg_block.retire", 2);

    // The retired column's bits equal the solo solve that stopped at the
    // same iteration — continued block iteration never touched it.
    let mut solo = vec![Spinor::zero(); v];
    let solo_stats = cg(&a, &mut solo, &easy, params);
    assert_eq!(stats[0], solo_stats);
    assert_eq!(
        xb.col(0),
        solo,
        "retired column was modified after retirement"
    );

    // And the late column still matches its own solo solve.
    let mut solo_hard = vec![Spinor::zero(); v];
    let hard_stats = cg(&a, &mut solo_hard, &hard, params);
    assert_eq!(stats[1], hard_stats);
    assert_eq!(xb.col(1), solo_hard);
}
