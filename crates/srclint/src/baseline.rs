//! The suppression baseline: pre-existing violations committed as
//! `lint-baseline.json`, keyed by `(rule, path, content-hash)`.
//!
//! The content hash is of the *trimmed line text*, so a violation that
//! merely moves within its file stays suppressed, while fixing the line
//! changes its hash and leaves the suppression stale — and `--check`
//! refuses stale entries, so a fixed violation cannot be silently
//! reintroduced under its old suppression. `--update-baseline`
//! regenerates the file from the current tree.
//!
//! Serialization goes through the workspace's hand-rolled `obs::Json`
//! emitter with fully sorted entries, so the committed file is
//! byte-deterministic (round-trip covered by a test).

use crate::{rule_ids, Finding};
use obs::Json;
use std::collections::BTreeMap;
use std::path::Path;

/// One suppression entry. `line` and `content` are informational (for
/// human review of the baseline); matching uses only rule + path + hash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    pub rule: String,
    pub path: String,
    pub line: u32,
    pub content_hash: String,
    /// Trimmed source line, for reviewability of the committed baseline.
    pub content: String,
}

/// A parsed baseline file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    pub suppressions: Vec<Suppression>,
}

/// Result of matching findings against a baseline.
#[derive(Debug, Default)]
pub struct Applied {
    /// Findings with no suppression: these fail `--check`.
    pub fresh: Vec<Finding>,
    /// Findings consumed by a suppression.
    pub suppressed: Vec<Finding>,
    /// Suppressions that matched nothing: the violation was fixed (or the
    /// file removed) — `--check` demands the baseline be shrunk.
    pub stale: Vec<Suppression>,
}

impl Baseline {
    /// Build a baseline that suppresses exactly `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut suppressions: Vec<Suppression> = findings
            .iter()
            .map(|f| Suppression {
                rule: f.rule.to_string(),
                path: f.path.clone(),
                line: f.line,
                content_hash: f.content_hash.clone(),
                content: String::new(),
            })
            .collect();
        suppressions.sort_by(sort_key);
        Baseline { suppressions }
    }

    /// Match `findings` against this baseline. Matching is multiset-style:
    /// each suppression absorbs at most one finding, so two identical
    /// violations need two entries and fixing one of them goes stale.
    pub fn apply(&self, findings: Vec<Finding>) -> Applied {
        let mut budget: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for s in &self.suppressions {
            *budget
                .entry((s.rule.clone(), s.path.clone(), s.content_hash.clone()))
                .or_insert(0) += 1;
        }
        let mut applied = Applied::default();
        for f in findings {
            let key = (f.rule.to_string(), f.path.clone(), f.content_hash.clone());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    applied.suppressed.push(f);
                }
                _ => applied.fresh.push(f),
            }
        }
        for s in &self.suppressions {
            let key = (s.rule.clone(), s.path.clone(), s.content_hash.clone());
            if let Some(n) = budget.get_mut(&key) {
                if *n > 0 {
                    *n -= 1;
                    applied.stale.push(s.clone());
                }
            }
        }
        applied
    }

    /// Render as the canonical baseline JSON (sorted, pretty, trailing
    /// newline) — the exact bytes `save` writes.
    pub fn to_json_string(&self) -> String {
        let mut entries = self.suppressions.clone();
        entries.sort_by(sort_key);
        Json::obj(vec![
            ("version", Json::from(1u64)),
            (
                "suppressions",
                Json::Arr(
                    entries
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("rule", Json::from(s.rule.as_str())),
                                ("path", Json::from(s.path.as_str())),
                                ("line", Json::from(s.line as u64)),
                                ("hash", Json::from(s.content_hash.as_str())),
                                ("content", Json::from(s.content.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_string_pretty()
    }

    /// Parse a baseline document produced by [`Baseline::to_json_string`].
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let items = doc
            .get("suppressions")
            .and_then(Json::as_arr)
            .ok_or("baseline: missing `suppressions` array")?;
        let mut suppressions = Vec::with_capacity(items.len());
        for item in items {
            let s = |k: &str| {
                item.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry: missing `{k}`"))
            };
            let rule = s("rule")?;
            if !rule_ids::ALL.contains(&rule.as_str()) {
                return Err(format!("baseline entry: unknown rule `{rule}`"));
            }
            suppressions.push(Suppression {
                rule,
                path: s("path")?,
                line: item
                    .get("line")
                    .and_then(Json::as_u64)
                    .ok_or("baseline entry: missing `line`")? as u32,
                content_hash: s("hash")?,
                content: s("content")?,
            });
        }
        Ok(Baseline { suppressions })
    }

    /// Load from `path`; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("read {}: {e}", path.display())),
        }
    }

    /// Write the canonical serialization to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }
}

fn sort_key(a: &Suppression, b: &Suppression) -> std::cmp::Ordering {
    (&a.path, &a.rule, &a.content_hash, a.line).cmp(&(&b.path, &b.rule, &b.content_hash, b.line))
}

/// Baseline covering `findings` with the violating source line recorded on
/// each entry (what `--update-baseline` writes).
pub fn baseline_with_content(findings: &[Finding], root: &Path) -> Baseline {
    let mut cache: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut suppressions: Vec<Suppression> = findings
        .iter()
        .map(|f| {
            let lines = cache.entry(f.path.clone()).or_insert_with(|| {
                std::fs::read_to_string(root.join(&f.path))
                    .map(|s| s.lines().map(|l| l.trim().to_string()).collect())
                    .unwrap_or_default()
            });
            Suppression {
                rule: f.rule.to_string(),
                path: f.path.clone(),
                line: f.line,
                content_hash: f.content_hash.clone(),
                content: lines.get(f.line as usize - 1).cloned().unwrap_or_default(),
            }
        })
        .collect();
    suppressions.sort_by(sort_key);
    Baseline { suppressions }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32, content: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line,
            message: "m".into(),
            content_hash: crate::fnv64_hex(content.trim()),
        }
    }

    #[test]
    fn apply_partitions_fresh_suppressed_stale() {
        let old = vec![
            finding(rule_ids::PANIC_SITE, "a.rs", 3, "x.unwrap();"),
            finding(rule_ids::PANIC_SITE, "a.rs", 9, "y.unwrap();"),
        ];
        let base = Baseline::from_findings(&old);
        // y's line was fixed; a new violation appeared in b.rs; x moved.
        let now = vec![
            finding(rule_ids::PANIC_SITE, "a.rs", 30, "x.unwrap();"),
            finding(rule_ids::PANIC_SITE, "b.rs", 1, "z.unwrap();"),
        ];
        let applied = base.apply(now);
        assert_eq!(applied.suppressed.len(), 1);
        assert_eq!(applied.suppressed[0].line, 30);
        assert_eq!(applied.fresh.len(), 1);
        assert_eq!(applied.fresh[0].path, "b.rs");
        assert_eq!(applied.stale.len(), 1);
    }

    #[test]
    fn duplicate_lines_need_duplicate_entries() {
        let two = vec![
            finding(rule_ids::PANIC_SITE, "a.rs", 3, "x.unwrap();"),
            finding(rule_ids::PANIC_SITE, "a.rs", 7, "x.unwrap();"),
        ];
        let base = Baseline::from_findings(&two[..1].to_vec());
        let applied = base.apply(two);
        assert_eq!(applied.suppressed.len(), 1);
        assert_eq!(applied.fresh.len(), 1);
    }

    #[test]
    fn serialization_round_trips_byte_identically() {
        let base = Baseline::from_findings(&[
            finding(rule_ids::NONDETERMINISM, "b.rs", 2, "Instant::now()"),
            finding(rule_ids::PANIC_SITE, "a.rs", 3, "x.unwrap();"),
        ]);
        let text = base.to_json_string();
        let back = Baseline::parse(&text).unwrap();
        assert_eq!(back, base);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn unknown_rules_are_rejected() {
        let doc = "{\"version\": 1, \"suppressions\": [{\"rule\": \"R9-bogus\", \"path\": \"a\", \"line\": 1, \"hash\": \"00\", \"content\": \"\"}]}";
        assert!(Baseline::parse(doc).is_err());
    }
}
