//! Metric-assertion tests: the observability layer's counters, events,
//! and histograms must report exactly what the instrumented code did —
//! and do so bit-stably across identical runs, so metrics can serve as
//! regression oracles.

use lqcd::core::prelude::*;
use lqcd::core::solver::{mixed_cg_robust, RobustParams, SolverOutcome};
use lqcd::io::{read_container_retrying, salvage_container_bytes, write_container, Container};
use obs::{
    assert_counter, assert_event_count, assert_float_counter, assert_hist_quantile, Registry,
};
use std::collections::BTreeMap;

/// The small 4³×8 Wilson system every solver test here uses.
struct System {
    lat: Lattice,
    gauge64: GaugeField<f64>,
    gauge32: GaugeField<f32>,
    b: Vec<Spinor<f64>>,
}

fn system() -> System {
    let lat = Lattice::new([4, 4, 4, 8]);
    let gauge64 = GaugeField::<f64>::hot(&lat, 83);
    let gauge32 = gauge64.cast::<f32>();
    let b = FermionField::<f64>::gaussian(lat.volume(), 17).data;
    System {
        lat,
        gauge64,
        gauge32,
        b,
    }
}

/// Run one mixed-precision solve under a fresh registry; return the
/// registry and the solver's own stats for cross-checking.
fn solve_once(sys: &System) -> (Registry, SolveStats) {
    let d64 = WilsonDirac::new(&sys.lat, &sys.gauge64, 0.3, true);
    let d32 = WilsonDirac::new(&sys.lat, &sys.gauge32, 0.3, true);
    let n64 = NormalOp::new(&d64);
    let n32 = NormalOp::new(&d32);
    let reg = Registry::new();
    let stats = {
        let _guard = reg.install_scoped();
        let mut x = vec![Spinor::zero(); sys.lat.volume()];
        mixed_cg(&n64, &n32, &mut x, &sys.b, MixedParams::default())
    };
    (reg, stats)
}

#[test]
fn mixed_solve_metrics_match_returned_stats() {
    let sys = system();
    let (reg, stats) = solve_once(&sys);
    assert!(stats.converged);

    assert_counter!(reg, "solver.mixed.solves", 1);
    assert_counter!(reg, "solver.mixed.iters", stats.iterations as u64);
    assert_counter!(reg, "solver.mixed.converged", 1);
    assert_counter!(
        reg,
        "solver.mixed.reliable_updates",
        stats.reliable_updates as u64
    );
    // Flops are accumulated by the same code that fills `stats`, in the
    // same order — the counter must match to the bit.
    assert_float_counter!(reg, "solver.mixed.flops", stats.flops);
    // One reliable-update event per update, carrying the residual
    // trajectory.
    assert_event_count!(reg, "solver.reliable_update", stats.reliable_updates as u64);
}

#[test]
fn solver_metrics_are_bit_stable_across_runs() {
    let sys = system();
    let (reg_a, stats_a) = solve_once(&sys);
    let (reg_b, stats_b) = solve_once(&sys);

    assert_eq!(stats_a.iterations, stats_b.iterations);
    assert_counter!(reg_a, "solver.mixed.iters", stats_b.iterations as u64);
    assert_counter!(
        reg_a,
        "solver.mixed.reliable_updates",
        reg_b.counter("solver.mixed.reliable_updates").get()
    );
    // Bit-exact flops: the whole arithmetic chain is deterministic.
    assert_float_counter!(
        reg_a,
        "solver.mixed.flops",
        reg_b.float_counter("solver.mixed.flops").get()
    );
    assert_eq!(
        reg_a.to_json().to_string_pretty(),
        reg_b.to_json().to_string_pretty(),
        "identical solves must serialize to identical metric snapshots"
    );
}

/// Low-precision operator mis-scaled by a constant: the inner solve
/// stalls, forcing the robust wrapper through restarts into the
/// double-precision escalation (mirrors the core solver's own test rig).
struct MisscaledOp<'a, D: DiracOp<f32>>(NormalOp<'a, f32, D>, f64);

impl<D: DiracOp<f32>> LinearOp<f32> for MisscaledOp<'_, D> {
    fn vec_len(&self) -> usize {
        self.0.vec_len()
    }
    fn apply(&self, out: &mut [Spinor<f32>], inp: &[Spinor<f32>]) {
        self.0.apply(out, inp);
        blas::scal(self.1, out);
    }
}

#[test]
fn escalation_is_counted_and_emitted() {
    let sys = system();
    let d64 = WilsonDirac::new(&sys.lat, &sys.gauge64, 0.3, true);
    let d32 = WilsonDirac::new(&sys.lat, &sys.gauge32, 0.3, true);
    let n64 = NormalOp::new(&d64);
    let bad = MisscaledOp(NormalOp::new(&d32), 0.4);

    let reg = Registry::new();
    let outcome = {
        let _guard = reg.install_scoped();
        let mut x = vec![Spinor::zero(); sys.lat.volume()];
        mixed_cg_robust(&n64, &bad, &mut x, &sys.b, RobustParams::default())
    };
    match outcome {
        SolverOutcome::Converged { escalated, .. } => assert!(escalated),
        other => panic!("expected escalated convergence, got {other:?}"),
    }

    assert_counter!(reg, "solver.robust.solves", 1);
    assert_counter!(reg, "solver.robust.escalations", 1);
    assert_counter!(reg, "solver.robust.failures", 0);
    assert_event_count!(reg, "solver.escalation", 1);
    // The escalation runs exactly one full-double CG epilogue.
    assert_counter!(reg, "solver.cg.solves", 1);
    assert_counter!(reg, "solver.cg.converged", 1);
}

#[test]
fn iteration_histogram_tracks_the_solve() {
    let sys = system();
    let (reg, stats) = solve_once(&sys);
    let h = reg
        .try_histogram("solver.mixed.iterations")
        .expect("iteration histogram exists");
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), stats.iterations as f64);
    // With one sample every quantile is that sample's bucket.
    assert_hist_quantile!(reg, "solver.mixed.iterations", 0.5, 1.0..=10_000.0);
}

#[test]
fn io_retry_counter_counts_injected_faults() {
    let vals: Vec<f64> = (0..512).map(|i| i as f64).collect();
    let c = Container::from_f64("retry", vec![512], &vals, BTreeMap::new());
    let dir = std::env::temp_dir().join("lqcd_metrics_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("retry.lqio");

    let reg = Registry::new();
    {
        let _guard = reg.install_scoped();
        write_container(&path, &c).unwrap();
        let good = std::fs::read(&path).unwrap();
        let mut fetches = 0usize;
        let (back, attempts) = read_container_retrying(3, || {
            fetches += 1;
            let mut bytes = good.clone();
            if fetches == 1 {
                let n = bytes.len();
                bytes[n - 5] ^= 0xFF;
            }
            Ok(bytes)
        })
        .unwrap();
        assert_eq!(attempts, 2);
        assert_eq!(back.payload, c.payload);
    }
    assert_counter!(reg, "io.crc_retries", 1);
    assert_counter!(reg, "io.checksum_failures", 1);
    assert_counter!(reg, "io.containers_written", 1);
    // Only the clean attempt completes a read.
    assert_counter!(reg, "io.containers_read", 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn salvage_counters_report_the_hole() {
    let vals: Vec<f64> = (0..512).map(|i| (i as f64).cos()).collect();
    let c = Container::from_f64("salvage", vec![512], &vals, BTreeMap::new());
    let dir = std::env::temp_dir().join("lqcd_metrics_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("salvage.lqio");

    let reg = Registry::new();
    let lost = {
        let _guard = reg.install_scoped();
        write_container(&path, &c).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 5] ^= 0xFF; // corrupt the single chunk's payload
        let s = salvage_container_bytes(&bytes).unwrap();
        assert!(!s.is_complete());
        s.lost_bytes()
    };
    assert_counter!(reg, "io.salvage.calls", 1);
    assert_counter!(reg, "io.salvage.corrupt_chunks", 1);
    assert_counter!(reg, "io.salvage.lost_bytes", lost as u64);
    assert_eq!(lost, 512 * 8, "whole single chunk is forfeit");
    std::fs::remove_file(&path).ok();
}

#[test]
fn lanczos_metrics_count_passes_and_restarts() {
    let sys = system();
    let d = WilsonDirac::new(&sys.lat, &sys.gauge64, 0.3, true);
    let a = NormalOp::new(&d);

    // Single pass: one run, no restarts, one done event, and the step
    // counter equals the Krylov dimension (no breakdown on this system).
    let reg = Registry::new();
    let pairs = {
        let _guard = reg.install_scoped();
        lanczos_lowest(&a, 2, 12, 3)
    };
    assert_eq!(pairs.len(), 2);
    assert_counter!(reg, "solver.eig.runs", 1);
    assert_counter!(reg, "solver.eig.restarts", 0);
    assert_event_count!(reg, "solver.eig.done", 1);
    assert_event_count!(reg, "solver.eig.restart", 0);
    let single_pass = reg.counter("solver.eig.lanczos_iters").get();
    assert_eq!(single_pass, 12);

    // An unmeetable residual bound forces every budgeted restart; each
    // restart is counted, emitted, and runs one more full pass.
    let reg = Registry::new();
    {
        let _guard = reg.install_scoped();
        lanczos(&a, &LanczosParams::new(2, 12, 3).with_restarts(2, 0.0));
    }
    assert_counter!(reg, "solver.eig.runs", 1);
    assert_counter!(reg, "solver.eig.restarts", 2);
    assert_event_count!(reg, "solver.eig.restart", 2);
    assert_event_count!(reg, "solver.eig.done", 1);
    assert_counter!(reg, "solver.eig.lanczos_iters", 3 * single_pass);
}

#[test]
fn scoped_registries_isolate_metrics() {
    let sys = system();
    let outer = Registry::new();
    let _outer_guard = outer.install_scoped();
    let (inner, stats) = solve_once(&sys);
    assert!(stats.converged);
    // The solve ran under `inner`'s scope; nothing may leak outward.
    assert_counter!(inner, "solver.mixed.solves", 1);
    assert_counter!(outer, "solver.mixed.solves", 0);
    assert_event_count!(outer, "solver.reliable_update", 0);
}
