//! Complex arithmetic over a generic [`Real`] scalar.
//!
//! The Dirac operator's sub-matrices are dense complex 12×12 blocks; every
//! kernel in this crate bottoms out in this type. It is `repr(C)` so fields
//! can be viewed as flat real slices for BLAS-1 routines and I/O.

use crate::real::Real;
use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Complex<R> {
    /// Real part.
    pub re: R,
    /// Imaginary part.
    pub im: R,
}

/// `Complex<f64>`, the reference precision.
pub type C64 = Complex<f64>;
/// `Complex<f32>`, the bulk compute precision.
pub type C32 = Complex<f32>;

impl<R: Real> Complex<R> {
    /// Additive identity.
    pub const fn zero() -> Self
    where
        R: Real,
    {
        Self {
            re: R::ZERO,
            im: R::ZERO,
        }
    }

    /// Multiplicative identity.
    pub fn one() -> Self {
        Self {
            re: R::ONE,
            im: R::ZERO,
        }
    }

    /// The imaginary unit.
    pub fn i() -> Self {
        Self {
            re: R::ZERO,
            im: R::ONE,
        }
    }

    /// Construct from parts.
    #[inline(always)]
    pub fn new(re: R, im: R) -> Self {
        Self { re, im }
    }

    /// Construct from `f64` parts, rounding to `R`.
    pub fn from_f64(re: f64, im: f64) -> Self {
        Self {
            re: R::from_f64(re),
            im: R::from_f64(im),
        }
    }

    /// Widen to `Complex<f64>`.
    pub fn to_c64(self) -> C64 {
        C64 {
            re: self.re.to_f64(),
            im: self.im.to_f64(),
        }
    }

    /// Narrow/convert between precisions.
    pub fn cast<S: Real>(self) -> Complex<S> {
        Complex {
            re: S::from_f64(self.re.to_f64()),
            im: S::from_f64(self.im.to_f64()),
        }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> R {
        self.re * self.re + self.im * self.im
    }

    /// Modulus.
    pub fn abs(self) -> R {
        self.norm_sqr().sqrt()
    }

    /// Multiply by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: R) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiply by the imaginary unit (`i·self`), avoiding a full complex mul.
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Self {
            re: -self.im,
            im: self.re,
        }
    }

    /// `self * conj(rhs)`.
    #[inline(always)]
    pub fn mul_conj(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re + self.im * rhs.im,
            im: self.im * rhs.re - self.re * rhs.im,
        }
    }

    /// Fused `self + a * b`.
    #[inline(always)]
    pub fn add_mul(self, a: Self, b: Self) -> Self {
        Self {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }

    /// Multiplicative inverse. Caller must ensure `self != 0`.
    pub fn inv(self) -> Self {
        let n = self.norm_sqr();
        Self {
            re: self.re / n,
            im: -self.im / n,
        }
    }
}

impl<R: Real> Add for Complex<R> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl<R: Real> Sub for Complex<R> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl<R: Real> Mul for Complex<R> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl<R: Real> Div for Complex<R> {
    type Output = Self;
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w⁻¹ is the definition
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl<R: Real> Neg for Complex<R> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl<R: Real> AddAssign for Complex<R> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<R: Real> SubAssign for Complex<R> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<R: Real> MulAssign for Complex<R> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<R: Real> Mul<R> for Complex<R> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: R) -> Self {
        self.scale(rhs)
    }
}

impl<R: Real> Sum for Complex<R> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> C64 {
        C64::new(re, im)
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = c(1.0, 2.0);
        let b = c(3.0, -4.0);
        let p = a * b;
        assert_eq!(p, c(1.0 * 3.0 - 2.0 * (-4.0), 1.0 * (-4.0) + 2.0 * 3.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::i() * C64::i(), -C64::one());
    }

    #[test]
    fn mul_i_matches_full_multiply() {
        let a = c(1.5, -2.5);
        assert_eq!(a.mul_i(), a * C64::i());
    }

    #[test]
    fn conj_norm_identity() {
        let a = c(3.0, 4.0);
        let n = (a * a.conj()).re;
        assert!((n - a.norm_sqr()).abs() < 1e-15);
        assert!((a.abs() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = c(2.0, -1.0);
        let b = c(0.5, 3.0);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-14);
    }

    #[test]
    fn mul_conj_matches_explicit() {
        let a = c(1.0, 2.0);
        let b = c(-3.0, 0.5);
        let d = a.mul_conj(b) - a * b.conj();
        assert!(d.abs() < 1e-15);
    }

    #[test]
    fn add_mul_is_fused_axpy() {
        let acc = c(1.0, 1.0);
        let a = c(2.0, -1.0);
        let b = c(0.0, 3.0);
        assert_eq!(acc.add_mul(a, b), acc + a * b);
    }

    #[test]
    fn cast_f64_to_f32_rounds() {
        let a = c(1.0 + 1e-12, -2.0);
        let b: C32 = a.cast();
        assert_eq!(b.re, 1.0f32);
        assert_eq!(b.im, -2.0f32);
    }
}
