//! Blocked SoA (structure-of-arrays) field layout.
//!
//! The AoS layout (`Vec<Spinor<R>>`, `Vec<Su3<R>>`) interleaves re/im pairs,
//! which forces the stencil to shuffle components in and out of vector
//! registers. This module stores the same data in *site blocks* of
//! [`LANES`] consecutive lexicographic sites with components outermost and
//! the site lane innermost:
//!
//! ```text
//! AoS  (site-major):  [ s0: re im re im … | s1: re im re im … | … ]
//! SoA  (blocked):     block b = sites { 4b, 4b+1, 4b+2, 4b+3 }
//!   [ comp0: re(4b) re(4b+1) re(4b+2) re(4b+3) | comp0: im ×4 | comp1 … ]
//! ```
//!
//! One spinor block is 24 × [`LANES`] reals = 12 cache lines at `f64`; a
//! vector load of 4 consecutive reals yields one component of 4 sites —
//! exactly the operand shape of the [`crate::simd`] lane arithmetic. Since
//! the lane ops reproduce the scalar complex arithmetic bit for bit, the SoA
//! hop kernel below is bit-identical to the AoS [`crate::dirac::hop_site`]
//! path site by site (under test).
//!
//! Lanes run along `x` (the fastest lexicographic coordinate), so when the
//! x-extent is a multiple of [`LANES`] every block sits inside one x-line:
//! y/z/t-neighbors of a block are whole blocks again and the temporal wrap
//! sign is uniform across the block.

use crate::complex::Complex;
use crate::field::GaugeLinks;
use crate::gamma::GAMMAS;
use crate::lattice::{Lattice, ND};
use crate::simd::{CVec, CvColor, CvSpinor, CvSu3, LaneReal, LANES};
use crate::spinor::Spinor;
use crate::su3::{Su3, NC};

/// Reals per spinor (4 spins × 3 colors × re/im).
const SPINOR_REALS: usize = 24;
/// Reals per SU(3) link (3 × 3 complex entries).
const LINK_REALS: usize = 18;

/// Fermion vector in blocked SoA form. Sites beyond `len` in the last block
/// are zero padding and never observed.
#[derive(Clone, Debug)]
pub struct SoaSpinorField<R> {
    len: usize,
    data: Vec<R>,
}

#[inline(always)]
fn spinor_comp(sp: usize, c: usize, reim: usize) -> usize {
    (sp * NC + c) * 2 + reim
}

impl<R: LaneReal> SoaSpinorField<R> {
    /// Zero vector holding `len` spinors.
    pub fn zeros(len: usize) -> Self {
        let blocks = len.div_ceil(LANES);
        Self {
            len,
            data: vec![R::ZERO; blocks * SPINOR_REALS * LANES],
        }
    }

    /// Number of spinors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw blocked storage.
    pub fn data(&self) -> &[R] {
        &self.data
    }

    /// Mutable raw blocked storage (for chunk-parallel kernels).
    pub fn data_mut(&mut self) -> &mut [R] {
        &mut self.data
    }

    /// One complex component of site `i`.
    #[inline(always)]
    fn cplx(&self, i: usize, sp: usize, c: usize) -> Complex<R> {
        let (b, l) = (i / LANES, i % LANES);
        let base = b * SPINOR_REALS * LANES;
        Complex::new(
            self.data[base + spinor_comp(sp, c, 0) * LANES + l],
            self.data[base + spinor_comp(sp, c, 1) * LANES + l],
        )
    }

    /// Read the spinor at site `i` back into AoS form.
    pub fn get(&self, i: usize) -> Spinor<R> {
        assert!(i < self.len);
        let mut s = Spinor::zero();
        for sp in 0..4 {
            for c in 0..NC {
                s.s[sp].c[c] = self.cplx(i, sp, c);
            }
        }
        s
    }

    /// Write the spinor at site `i`.
    pub fn set(&mut self, i: usize, s: &Spinor<R>) {
        assert!(i < self.len);
        let (b, l) = (i / LANES, i % LANES);
        let base = b * SPINOR_REALS * LANES;
        for sp in 0..4 {
            for c in 0..NC {
                self.data[base + spinor_comp(sp, c, 0) * LANES + l] = s.s[sp].c[c].re;
                self.data[base + spinor_comp(sp, c, 1) * LANES + l] = s.s[sp].c[c].im;
            }
        }
    }

    /// Transpose an AoS vector into blocked SoA form.
    pub fn from_aos(aos: &[Spinor<R>]) -> Self {
        let mut out = Self::zeros(aos.len());
        out.fill_from_aos(aos);
        out
    }

    /// Overwrite from an AoS vector of the same length.
    pub fn fill_from_aos(&mut self, aos: &[Spinor<R>]) {
        assert_eq!(aos.len(), self.len);
        let blen = SPINOR_REALS * LANES;
        rayon::for_each_chunk_mut(&mut self.data, blen, |base, chunk| {
            let b = base / blen;
            for l in 0..LANES {
                let i = b * LANES + l;
                if i >= aos.len() {
                    break;
                }
                let s = &aos[i];
                for sp in 0..4 {
                    for c in 0..NC {
                        chunk[spinor_comp(sp, c, 0) * LANES + l] = s.s[sp].c[c].re;
                        chunk[spinor_comp(sp, c, 1) * LANES + l] = s.s[sp].c[c].im;
                    }
                }
            }
        });
    }

    /// Transpose back to AoS into `out` (same length).
    pub fn store_to_aos(&self, out: &mut [Spinor<R>]) {
        assert_eq!(out.len(), self.len);
        let data = &self.data;
        rayon::for_each_chunk_mut(out, LANES, |base, chunk| {
            for (k, s) in chunk.iter_mut().enumerate() {
                let i = base + k;
                let (b, l) = (i / LANES, i % LANES);
                let off = b * SPINOR_REALS * LANES;
                for sp in 0..4 {
                    for c in 0..NC {
                        s.s[sp].c[c] = Complex::new(
                            data[off + spinor_comp(sp, c, 0) * LANES + l],
                            data[off + spinor_comp(sp, c, 1) * LANES + l],
                        );
                    }
                }
            }
        });
    }

    /// Transpose back to a fresh AoS vector.
    pub fn to_aos(&self) -> Vec<Spinor<R>> {
        let mut out = vec![Spinor::zero(); self.len];
        self.store_to_aos(&mut out);
        out
    }

    /// Load a whole aligned block (contiguous vector loads).
    #[inline(always)]
    pub fn load_block(&self, b: usize) -> CvSpinor<R> {
        let base = b * SPINOR_REALS * LANES;
        let d = &self.data[base..base + SPINOR_REALS * LANES];
        CvSpinor {
            s: std::array::from_fn(|sp| CvColor {
                c: std::array::from_fn(|c| CVec {
                    re: std::array::from_fn(|l| d[spinor_comp(sp, c, 0) * LANES + l]),
                    im: std::array::from_fn(|l| d[spinor_comp(sp, c, 1) * LANES + l]),
                }),
            }),
        }
    }

    /// Gather one spinor per lane from arbitrary site indices (the x-neighbor
    /// funnel at block boundaries).
    #[inline(always)]
    pub fn gather(&self, idx: [usize; LANES]) -> CvSpinor<R> {
        CvSpinor {
            s: std::array::from_fn(|sp| CvColor {
                c: std::array::from_fn(|c| CVec::gather(|l| self.cplx(idx[l], sp, c))),
            }),
        }
    }
}

/// Write a lane spinor into one block's raw storage chunk
/// (`SPINOR_REALS × LANES` reals).
#[inline(always)]
fn write_spinor_lanes<R: LaneReal>(chunk: &mut [R], v: &CvSpinor<R>) {
    for sp in 0..4 {
        for c in 0..NC {
            let cv = &v.s[sp].c[c];
            chunk[spinor_comp(sp, c, 0) * LANES..spinor_comp(sp, c, 0) * LANES + LANES]
                .copy_from_slice(&cv.re);
            chunk[spinor_comp(sp, c, 1) * LANES..spinor_comp(sp, c, 1) * LANES + LANES]
                .copy_from_slice(&cv.im);
        }
    }
}

/// Gauge links in blocked SoA form: per block, the four directions'
/// matrices with component-outermost, lane-innermost storage.
#[derive(Clone, Debug)]
pub struct SoaGaugeField<R> {
    volume: usize,
    data: Vec<R>,
}

#[inline(always)]
fn link_comp(i: usize, j: usize, reim: usize) -> usize {
    (i * NC + j) * 2 + reim
}

impl<R: LaneReal> SoaGaugeField<R> {
    /// Transpose any [`GaugeLinks`] storage into blocked SoA form. Lattice
    /// volumes are products of four even extents, hence always a multiple of
    /// [`LANES`].
    pub fn from_links<G: GaugeLinks<R>>(gauge: &G) -> Self {
        let volume = gauge.volume();
        assert_eq!(
            volume % LANES,
            0,
            "volume must be a multiple of the lane width"
        );
        let blen = ND * LINK_REALS * LANES;
        let mut data = vec![R::ZERO; (volume / LANES) * blen];
        rayon::for_each_chunk_mut(&mut data, blen, |base, chunk| {
            let b = base / blen;
            for mu in 0..ND {
                let m = &mut chunk[mu * LINK_REALS * LANES..(mu + 1) * LINK_REALS * LANES];
                for l in 0..LANES {
                    let u = gauge.link(b * LANES + l, mu);
                    for i in 0..NC {
                        for j in 0..NC {
                            m[link_comp(i, j, 0) * LANES + l] = u.m[i][j].re;
                            m[link_comp(i, j, 1) * LANES + l] = u.m[i][j].im;
                        }
                    }
                }
            }
        });
        Self { volume, data }
    }

    /// Scalar link read-back (validation, sharded gathers).
    #[inline]
    pub fn link_at(&self, site: usize, mu: usize) -> Su3<R> {
        let (b, l) = (site / LANES, site % LANES);
        let base = (b * ND + mu) * LINK_REALS * LANES;
        let mut u = Su3::zero();
        for i in 0..NC {
            for j in 0..NC {
                u.m[i][j] = Complex::new(
                    self.data[base + link_comp(i, j, 0) * LANES + l],
                    self.data[base + link_comp(i, j, 1) * LANES + l],
                );
            }
        }
        u
    }

    /// Load the direction-`mu` links of a whole aligned block.
    #[inline(always)]
    pub fn load_block(&self, b: usize, mu: usize) -> CvSu3<R> {
        let base = (b * ND + mu) * LINK_REALS * LANES;
        let d = &self.data[base..base + LINK_REALS * LANES];
        CvSu3 {
            m: std::array::from_fn(|i| {
                std::array::from_fn(|j| CVec {
                    re: std::array::from_fn(|l| d[link_comp(i, j, 0) * LANES + l]),
                    im: std::array::from_fn(|l| d[link_comp(i, j, 1) * LANES + l]),
                })
            }),
        }
    }

    /// Gather one direction-`mu` link per lane from arbitrary sites.
    #[inline(always)]
    pub fn gather(&self, idx: [usize; LANES], mu: usize) -> CvSu3<R> {
        CvSu3 {
            m: std::array::from_fn(|i| {
                std::array::from_fn(|j| {
                    CVec::gather(|l| {
                        let (b, lane) = (idx[l] / LANES, idx[l] % LANES);
                        let base = (b * ND + mu) * LINK_REALS * LANES;
                        Complex::new(
                            self.data[base + link_comp(i, j, 0) * LANES + lane],
                            self.data[base + link_comp(i, j, 1) * LANES + lane],
                        )
                    })
                })
            }),
        }
    }
}

impl<R: LaneReal> GaugeLinks<R> for SoaGaugeField<R> {
    #[inline(always)]
    fn link(&self, site: usize, mu: usize) -> Su3<R> {
        self.link_at(site, mu)
    }
    fn volume(&self) -> usize {
        self.volume
    }
}

/// Full-volume Wilson hop over the SoA layout, [`LANES`] sites at a time,
/// with the diagonal algebra fused into the single output write:
/// `out = inp·a − hop·b` when `diag = Some((a, b))`, else `out = hop`.
///
/// Per lane this evaluates exactly the operation chain of
/// [`crate::dirac::hop_site`] (same projections, same accumulation order,
/// links loaded from the same values) followed by the scalar fused write, so
/// each site's result is bit-identical to the AoS path.
///
/// # Panics
/// If the x-extent is not a multiple of [`LANES`] (blocks must not straddle
/// x-lines so the temporal wrap sign is block-uniform).
pub fn hop_full_soa<R: LaneReal>(
    lattice: &Lattice,
    gauge: &SoaGaugeField<R>,
    out: &mut SoaSpinorField<R>,
    inp: &SoaSpinorField<R>,
    antiperiodic_t: bool,
    grain: usize,
    diag: Option<(R, R)>,
) {
    let v = lattice.volume();
    assert_eq!(inp.len(), v);
    assert_eq!(out.len(), v);
    assert_eq!(
        lattice.dims()[0] % LANES,
        0,
        "SoA hop requires the x-extent to be a multiple of the lane width"
    );
    let blen = SPINOR_REALS * LANES;
    let gblocks = (grain.max(1)).div_ceil(LANES);
    rayon::for_each_chunk_mut(out.data_mut(), gblocks * blen, |base, chunk| {
        for (k, oblk) in chunk.chunks_exact_mut(blen).enumerate() {
            let b = base / blen + k;
            let mut r = hop_block(lattice, gauge, inp, antiperiodic_t, b);
            if let Some((a, bb)) = diag {
                r = inp.load_block(b).scale(a) - r.scale(bb);
            }
            write_spinor_lanes(oblk, &r);
        }
    });
}

/// The lane-parallel body of [`hop_full_soa`] for one site block.
#[inline]
fn hop_block<R: LaneReal>(
    lattice: &Lattice,
    gauge: &SoaGaugeField<R>,
    inp: &SoaSpinorField<R>,
    antiperiodic_t: bool,
    b: usize,
) -> CvSpinor<R> {
    // Per-lane neighbor indices. Within an x-line block, the y/z/t neighbors
    // of the lanes are again consecutive sites, but the general gather keeps
    // the kernel correct for every direction including the x funnel.
    let nbs: [&crate::lattice::Neighbors; LANES] =
        std::array::from_fn(|l| lattice.neighbors(b * LANES + l));
    let mut r = CvSpinor::zero();
    for mu in 0..ND {
        let g = &GAMMAS[mu];
        let (p0, p1, p2, p3) = (g.perm[0], g.perm[1], g.perm[2], g.perm[3]);
        let phi0 = CVec::splat(g.phase[0].cast::<R>());
        let phi1 = CVec::splat(g.phase[1].cast::<R>());
        let phi2 = CVec::splat(g.phase[2].cast::<R>());
        let phi3 = CVec::splat(g.phase[3].cast::<R>());

        // Forward hop: (1 − γμ) Uμ(x) ψ(x+μ̂).
        {
            let fwd_idx: [usize; LANES] = std::array::from_fn(|l| nbs[l].fwd[mu] as usize);
            // The t-wrap is uniform across an x-line block (all lanes share
            // y, z, t), so lane 0's wrap bit speaks for the whole block.
            // Only t matters: x-direction wraps *do* differ across lanes,
            // but no other direction carries the antiperiodic sign.
            let flip = antiperiodic_t && mu == 3 && (nbs[0].fwd_wrap >> mu) & 1 == 1;
            debug_assert!(
                mu != 3
                    || (0..LANES).all(|l| ((nbs[l].fwd_wrap >> mu) & 1 == 1)
                        == ((nbs[0].fwd_wrap >> mu) & 1 == 1))
            );
            let psi = inp.gather(fwd_idx);
            let u = gauge.load_block(b, mu);
            let h0 = psi.s[0] - psi.s[p0].scale_c(phi0);
            let h1 = psi.s[1] - psi.s[p1].scale_c(phi1);
            let mut t = [u.mul_vec(&h0), u.mul_vec(&h1)];
            if flip {
                t[0] = -t[0];
                t[1] = -t[1];
            }
            r.s[0] = r.s[0] + t[0];
            r.s[1] = r.s[1] + t[1];
            r.s[2] = r.s[2] + (-t[p2].scale_c(phi2));
            r.s[3] = r.s[3] + (-t[p3].scale_c(phi3));
        }

        // Backward hop: (1 + γμ) U†μ(x−μ̂) ψ(x−μ̂).
        {
            let bwd_idx: [usize; LANES] = std::array::from_fn(|l| nbs[l].bwd[mu] as usize);
            let flip = antiperiodic_t && mu == 3 && (nbs[0].bwd_wrap >> mu) & 1 == 1;
            debug_assert!(
                mu != 3
                    || (0..LANES).all(|l| ((nbs[l].bwd_wrap >> mu) & 1 == 1)
                        == ((nbs[0].bwd_wrap >> mu) & 1 == 1))
            );
            let psi = inp.gather(bwd_idx);
            let u = gauge.gather(bwd_idx, mu);
            let h0 = psi.s[0] + psi.s[p0].scale_c(phi0);
            let h1 = psi.s[1] + psi.s[p1].scale_c(phi1);
            let mut t = [u.dagger_mul_vec(&h0), u.dagger_mul_vec(&h1)];
            if flip {
                t[0] = -t[0];
                t[1] = -t[1];
            }
            r.s[0] = r.s[0] + t[0];
            r.s[1] = r.s[1] + t[1];
            r.s[2] = r.s[2] + t[p2].scale_c(phi2);
            r.s[3] = r.s[3] + t[p3].scale_c(phi3);
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{FermionField, GaugeField};

    #[test]
    fn spinor_round_trip_is_exact() {
        for len in [1usize, 3, 4, 17, 64] {
            let aos = FermionField::<f64>::gaussian(len, 41).data;
            let soa = SoaSpinorField::from_aos(&aos);
            assert_eq!(soa.to_aos(), aos, "len {len}");
            for (i, s) in aos.iter().enumerate() {
                assert_eq!(&soa.get(i), s, "len {len} site {i}");
            }
        }
    }

    #[test]
    fn spinor_set_matches_from_aos() {
        let aos = FermionField::<f32>::gaussian(10, 5).data;
        let mut soa = SoaSpinorField::zeros(10);
        for (i, s) in aos.iter().enumerate() {
            soa.set(i, s);
        }
        assert_eq!(soa.to_aos(), aos);
    }

    #[test]
    fn gauge_round_trip_is_exact() {
        let lat = Lattice::new([4, 4, 2, 2]);
        let gauge = GaugeField::<f64>::hot(&lat, 7);
        let soa = SoaGaugeField::from_links(&gauge);
        for site in 0..lat.volume() {
            for mu in 0..ND {
                assert_eq!(soa.link_at(site, mu), gauge.link(site, mu));
            }
        }
    }

    #[test]
    fn soa_hop_is_bit_identical_to_aos() {
        use crate::dirac::HoppingKernel;
        let lat = Lattice::new([4, 4, 2, 6]);
        let gauge = GaugeField::<f64>::hot(&lat, 19);
        let psi = FermionField::<f64>::gaussian(lat.volume(), 20).data;
        for apbc in [false, true] {
            let hop = HoppingKernel::new(&lat, &gauge, apbc);
            let mut aos_out = vec![Spinor::zero(); lat.volume()];
            hop.apply_full(&mut aos_out, &psi, 64);

            let sg = SoaGaugeField::from_links(&gauge);
            let sp = SoaSpinorField::from_aos(&psi);
            let mut soa_out = SoaSpinorField::zeros(lat.volume());
            hop_full_soa(&lat, &sg, &mut soa_out, &sp, apbc, 64, None);
            assert_eq!(soa_out.to_aos(), aos_out, "apbc={apbc}");
        }
    }

    proptest::proptest! {
        /// Random lengths (including non-multiple-of-LANES tails) and
        /// seeds: AoS → SoA → AoS is exact in f64, both via `to_aos` and
        /// via per-site `get`.
        #[test]
        fn aos_soa_round_trip_is_exact_f64(len in 1usize..=130, seed in 0u64..=1_000_000) {
            let aos = FermionField::<f64>::gaussian(len, seed).data;
            let soa = SoaSpinorField::from_aos(&aos);
            proptest::prop_assert_eq!(soa.to_aos(), aos.clone());
            for (i, s) in aos.iter().enumerate() {
                proptest::prop_assert_eq!(&soa.get(i), s);
            }
        }

        /// Same round-trip in f32, driving the `set`/`store_to_aos` pair.
        #[test]
        fn aos_soa_round_trip_is_exact_f32(len in 1usize..=130, seed in 0u64..=1_000_000) {
            let aos = FermionField::<f32>::gaussian(len, seed).data;
            let mut soa = SoaSpinorField::zeros(len);
            for (i, s) in aos.iter().enumerate() {
                soa.set(i, s);
            }
            let mut back = vec![Spinor::zero(); len];
            soa.store_to_aos(&mut back);
            proptest::prop_assert_eq!(back, aos);
        }
    }

    #[test]
    fn soa_hop_fused_diag_matches_scalar_chain() {
        use crate::dirac::HoppingKernel;
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 23);
        let psi = FermionField::<f64>::gaussian(lat.volume(), 24).data;
        let hop = HoppingKernel::new(&lat, &gauge, true);
        let (a, bb) = (4.1f64, 0.5f64);
        let mut expect = vec![Spinor::zero(); lat.volume()];
        hop.apply_full(&mut expect, &psi, 64);
        for (o, i) in expect.iter_mut().zip(&psi) {
            *o = i.scale(a) - o.scale(bb);
        }

        let sg = SoaGaugeField::from_links(&gauge);
        let sp = SoaSpinorField::from_aos(&psi);
        let mut out = SoaSpinorField::zeros(lat.volume());
        hop_full_soa(&lat, &sg, &mut out, &sp, true, 128, Some((a, bb)));
        assert_eq!(out.to_aos(), expect);
    }
}
