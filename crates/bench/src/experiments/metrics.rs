//! The `metrics` experiment: one small, fully deterministic pass through
//! every instrumented layer of the pipeline — the mixed-precision solver
//! and its double-precision escalation path, container I/O with injected
//! transient corruption and a salvage, the autotuner cache, and the three
//! fault-tolerant schedulers at the fault sweep's harshest MTBF — captured
//! in a fresh [`obs::Registry`] and exported as `results/metrics.json`.
//!
//! Every input is seeded and the registry clock is a [`ManualClock`], so
//! two runs produce byte-identical JSON. The committed
//! `results/metrics.json` is a golden: CI regenerates it and diffs, which
//! turns every counter in the observability layer into a regression test.

use crate::experiments::faults::{fault_stats_json, run_point, SweepPoint};
use crate::output::{print_table, ExperimentOutput};
use autotune::{ParamSpace, TimingHarness, Tunable, TuneKey, TuneParam, Tuner};
use coral_machine::sierra;
use lattice_io::{
    read_container, read_container_retrying, salvage_container_bytes, write_container, Container,
};
use lqcd_core::prelude::*;
use lqcd_core::solver::{mixed_cg_robust, RobustParams, SolverOutcome};
use obs::{Json, ManualClock, Registry};
use std::collections::BTreeMap;

/// MTBF (seconds) the scheduler stage runs at: the fault sweep's brutal
/// endpoint, so crash, retry, requeue, and blacklist paths all fire.
const SCHED_MTBF: f64 = 10_000.0;

/// Transient fetch failures injected into the retrying container read.
const INJECTED_CRC_FAULTS: usize = 2;

/// A low-precision operator whose output is mis-scaled by a constant, so
/// the inner mixed-precision solve stalls and `mixed_cg_robust` must
/// escalate to full double precision (same construction as the core solver
/// tests, reproduced here because it is test-only in `lqcd-core`).
struct MisscaledOp<'a, D: DiracOp<f32>>(NormalOp<'a, f32, D>, f64);

impl<D: DiracOp<f32>> LinearOp<f32> for MisscaledOp<'_, D> {
    fn vec_len(&self) -> usize {
        self.0.vec_len()
    }
    fn apply(&self, out: &mut [Spinor<f32>], inp: &[Spinor<f32>]) {
        self.0.apply(out, inp);
        blas::scal(self.1, out);
    }
}

/// A modeled-cost kernel for the autotune stage. The harness is
/// `Modeled`, so candidate "timings" come from `modeled_cost` and never
/// touch the wall clock — the recorded `autotune.candidate_seconds`
/// histogram is exactly reproducible.
struct ModelKernel {
    name: &'static str,
    best_policy: usize,
}

impl Tunable for ModelKernel {
    fn key(&self) -> TuneKey {
        TuneKey::new(self.name, "4x4x4x8", "prec=f32")
    }
    fn param_space(&self) -> ParamSpace {
        ParamSpace::policies(6)
    }
    fn run(&mut self, _p: TuneParam) {}
    fn modeled_cost(&self, p: TuneParam) -> f64 {
        1e-3 * ((p.policy as f64 - self.best_policy as f64).abs() + 1.0)
    }
    fn harness(&self) -> TimingHarness {
        TimingHarness::Modeled
    }
    fn flops(&self) -> f64 {
        1e9
    }
}

/// Per-stage results the summary table and tests consume.
pub struct MetricsResult {
    /// The registry snapshot written to `metrics.json`.
    pub json: Json,
    /// Scheduler (name, utilization, fraction-of-peak) rows.
    pub sched_rows: Vec<(String, f64, f64)>,
}

fn solver_stage() {
    let lat = Lattice::new([4, 4, 4, 8]);
    let gauge64 = GaugeField::<f64>::hot(&lat, 83);
    let gauge32 = gauge64.cast::<f32>();
    let d64 = WilsonDirac::new(&lat, &gauge64, 0.3, true);
    let d32 = WilsonDirac::new(&lat, &gauge32, 0.3, true);
    let n64 = NormalOp::new(&d64);
    let n32 = NormalOp::new(&d32);
    let b = FermionField::<f64>::gaussian(lat.volume(), 17).data;

    // Healthy mixed-precision solve: iterations, flops, reliable updates.
    let mut x = vec![Spinor::zero(); lat.volume()];
    let stats = mixed_cg(&n64, &n32, &mut x, &b, MixedParams::default());
    assert!(
        stats.converged,
        "healthy mixed solve must converge: {stats:?}"
    );

    // Sabotaged low-precision operator: the robust wrapper restarts, then
    // escalates to double precision — exercising the full-double CG path
    // and the escalation counters/events.
    let bad = MisscaledOp(NormalOp::new(&d32), 0.4);
    let mut y = vec![Spinor::zero(); lat.volume()];
    let outcome = mixed_cg_robust(&n64, &bad, &mut y, &b, RobustParams::default());
    match outcome {
        SolverOutcome::Converged { escalated, .. } => {
            assert!(escalated, "mis-scaled inner op must force escalation")
        }
        other => panic!("escalated solve must converge: {other:?}"),
    }
}

fn io_stage(out: &ExperimentOutput) {
    let vals: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.001).sin()).collect();
    let mut md = BTreeMap::new();
    md.insert("experiment".into(), "metrics".into());
    let c = Container::from_f64("metrics_demo", vec![4096], &vals, md);
    let path = out.path("metrics_demo.lqio");
    write_container(&path, &c).expect("write demo container");

    // Clean round trip.
    let back = read_container(&path).expect("clean read");
    assert_eq!(back.payload, c.payload);

    // Transient corruption: the first `INJECTED_CRC_FAULTS` fetches flip a
    // payload byte (CRC mismatch), then the source heals — the retry loop
    // must absorb exactly that many failures.
    let good = std::fs::read(&path).expect("read file bytes");
    let mut fetches = 0usize;
    let (_, attempts) = read_container_retrying(INJECTED_CRC_FAULTS + 1, || {
        fetches += 1;
        let mut bytes = good.clone();
        if fetches <= INJECTED_CRC_FAULTS {
            let n = bytes.len();
            bytes[n - 5] ^= 0xFF; // last payload byte of the last chunk
        }
        Ok(bytes)
    })
    .expect("retrying read heals");
    assert_eq!(attempts, INJECTED_CRC_FAULTS + 1);

    // Persistent corruption: salvage zero-fills the bad chunk and reports
    // the hole.
    let mut bad = good;
    let n = bad.len();
    bad[n - 5] ^= 0xFF;
    let s = salvage_container_bytes(&bad).expect("salvage");
    assert!(!s.is_complete() && s.lost_bytes() > 0);

    std::fs::remove_file(&path).ok();
}

fn autotune_stage() {
    let tuner = Tuner::new();
    for (name, best) in [("dslash_wilson", 2), ("halo_exchange", 4)] {
        let mut k = ModelKernel {
            name,
            best_policy: best,
        };
        let won = tuner.tune(&mut k); // miss: sweeps 6 candidates
        assert_eq!(won.policy, best);
        assert_eq!(tuner.tune(&mut k).policy, best); // hit: pure lookup
    }
}

fn sched_stage() -> Vec<SweepPoint> {
    ["naive", "metaq", "mpi_jm"]
        .into_iter()
        .map(|s| run_point(SCHED_MTBF, s))
        .collect()
}

/// Run the metrics experiment: exercise every instrumented layer under a
/// fresh registry and write the deterministic `metrics.json` snapshot.
pub fn run_metrics(out: &ExperimentOutput) -> MetricsResult {
    let reg = Registry::new();
    let clock = ManualClock::new(0.0);
    reg.set_clock(clock.clone());
    let _guard = reg.install_scoped();

    // Each stage is bracketed by a stage event on the manual clock, so the
    // event log shows simulated — never wall — time.
    let stage = |name: &str, f: &mut dyn FnMut()| {
        reg.event("metrics.stage", vec![("stage", Json::from(name))]);
        f();
        clock.advance(1.0);
    };
    stage("solver", &mut solver_stage);
    stage("io", &mut || io_stage(out));
    stage("autotune", &mut autotune_stage);
    let mut points = Vec::new();
    stage("schedulers", &mut || points = sched_stage());

    // Sustained fraction of peak per scheduler: completed work over the
    // makespan, against the 64-node slice of Sierra's fp32 peak.
    let peak_flops = 64.0 * sierra().fp32_tflops_per_node * 1e12;
    let sched_rows: Vec<(String, f64, f64)> = points
        .iter()
        .map(|p| {
            (
                p.scheduler.to_string(),
                p.report.utilization(),
                p.report.sustained_flops() / peak_flops,
            )
        })
        .collect();
    print_table(
        &format!("Metrics run — schedulers at MTBF {SCHED_MTBF:.0} s, 64 Sierra nodes"),
        &["scheduler", "utilization", "sustained TFLOP/s", "of peak"],
        &sched_rows
            .iter()
            .zip(&points)
            .map(|((name, util, frac), p)| {
                vec![
                    name.clone(),
                    format!("{:.1}%", 100.0 * util),
                    format!("{:.0}", p.report.sustained_flops() / 1e12),
                    format!("{:.1}%", 100.0 * frac),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let json = Json::obj(vec![
        ("experiment", Json::from("metrics")),
        (
            "workload",
            Json::from(
                "4^3x8 Wilson mixed-CG + escalation; container round trip with 2 injected CRC \
                 faults + salvage; 2 modeled autotune sweeps; 3 schedulers at MTBF 10000 s",
            ),
        ),
        (
            "schedulers",
            Json::Arr(
                points
                    .iter()
                    .zip(&sched_rows)
                    .map(|(p, (name, util, frac))| {
                        Json::obj(vec![
                            ("scheduler", Json::from(name.as_str())),
                            ("mtbf_seconds", Json::from(p.mtbf)),
                            ("utilization", Json::from(*util)),
                            ("sustained_flops", Json::from(p.report.sustained_flops())),
                            ("fraction_of_peak", Json::from(*frac)),
                            ("faults", fault_stats_json(&p.report.faults)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("registry", reg.to_json()),
    ]);
    std::fs::write(out.path("metrics.json"), json.to_string_pretty()).expect("write metrics.json");
    std::fs::write(out.path("metrics.csv"), reg.to_csv()).expect("write metrics.csv");

    MetricsResult { json, sched_rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_into(dir: &str) -> MetricsResult {
        let out = ExperimentOutput::new(std::env::temp_dir().join(dir)).unwrap();
        run_metrics(&out)
    }

    #[test]
    fn metrics_json_is_bit_stable_across_runs() {
        let a = run_into("metrics_test_a");
        let b = run_into("metrics_test_b");
        assert_eq!(
            a.json.to_string_pretty(),
            b.json.to_string_pretty(),
            "metrics.json must be byte-identical between runs"
        );
    }

    #[test]
    fn metrics_json_contains_every_layer() {
        let r = run_into("metrics_test_c");
        let reg = r.json.get("registry").expect("registry section");
        // Solver iteration counters from both the healthy and robust solves.
        assert!(
            reg.get_path(&["counters", "solver.mixed.iters"])
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
        assert_eq!(
            reg.get_path(&["counters", "solver.robust.escalations"])
                .unwrap()
                .as_u64(),
            Some(1)
        );
        // Injected transient faults and the salvage.
        assert_eq!(
            reg.get_path(&["counters", "io.crc_retries"])
                .unwrap()
                .as_u64(),
            Some(INJECTED_CRC_FAULTS as u64)
        );
        assert_eq!(
            reg.get_path(&["counters", "io.salvage.calls"])
                .unwrap()
                .as_u64(),
            Some(1)
        );
        // Autotune cache behaviour: one miss + one hit per kernel.
        assert_eq!(
            reg.get_path(&["counters", "autotune.cache_hits"])
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(
            reg.get_path(&["counters", "autotune.cache_misses"])
                .unwrap()
                .as_u64(),
            Some(2)
        );
        // Scheduler gauges for all three schedulers.
        for s in ["naive", "metaq", "mpi_jm"] {
            let u = reg
                .get_path(&["gauges", &format!("sched.{s}.utilization")])
                .unwrap_or_else(|| panic!("missing sched.{s}.utilization"))
                .as_f64()
                .unwrap();
            // Can exceed 1 at harsh MTBF: busy seconds are normalized by
            // the *surviving* nodes' availability.
            assert!(u.is_finite() && u >= 0.0, "utilization {u} for {s}");
        }
        // The stage markers rode the manual clock.
        assert_eq!(
            reg.get_path(&["event_counts", "metrics.stage"])
                .unwrap()
                .as_u64(),
            Some(4)
        );
    }
}
