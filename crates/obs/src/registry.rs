//! The metrics registry: named counters/gauges/histograms plus the event
//! log and clock, with ambient (thread-local or global) installation so
//! deep call stacks — solver inner loops, DES event handlers — can record
//! without threading a handle through every signature.
//!
//! Lookup discipline: `Registry::current()` returns the innermost scoped
//! registry on this thread, else the globally installed one, else a
//! process-wide default. Tests install a fresh registry with
//! [`Registry::install_scoped`] and get perfect isolation.

use crate::clock::{Clock, WallClock};
use crate::events::{Event, EventLog};
use crate::json::Json;
use crate::metrics::{Counter, FloatCounter, Gauge, Histogram};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

struct RegistryInner {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    float_counters: RwLock<BTreeMap<String, Arc<FloatCounter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    events: EventLog,
    clock: RwLock<Arc<dyn Clock>>,
}

#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static SCOPED: RefCell<Vec<Registry>> = const { RefCell::new(Vec::new()) };
}

static GLOBAL: OnceLock<RwLock<Option<Registry>>> = OnceLock::new();
static DEFAULT: OnceLock<Registry> = OnceLock::new();

fn global_slot() -> &'static RwLock<Option<Registry>> {
    GLOBAL.get_or_init(|| RwLock::new(None))
}

/// Read-lock, continuing through poison: the registry maps hold only
/// `Arc` handles and the metric cells themselves are monotone atomics, so
/// a panicking holder cannot leave them inconsistent — and
/// instrumentation must never take the process down with it.
fn read_on<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Write-lock twin of [`read_on`], with the same poison-blind rationale.
fn write_on<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Pops the scoped registry when dropped.
pub struct ScopedInstall {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ScopedInstall {
    fn drop(&mut self) {
        SCOPED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry {
            inner: Arc::new(RegistryInner {
                counters: RwLock::new(BTreeMap::new()),
                float_counters: RwLock::new(BTreeMap::new()),
                gauges: RwLock::new(BTreeMap::new()),
                histograms: RwLock::new(BTreeMap::new()),
                events: EventLog::new(),
                clock: RwLock::new(Arc::new(WallClock::new())),
            }),
        }
    }

    /// The ambient registry: innermost scoped on this thread, else global,
    /// else a shared process default (so instrumentation is always safe).
    pub fn current() -> Registry {
        if let Some(r) = SCOPED.with(|s| s.borrow().last().cloned()) {
            return r;
        }
        if let Some(r) = read_on(global_slot()).clone() {
            return r;
        }
        DEFAULT.get_or_init(Registry::new).clone()
    }

    /// Install as the ambient registry for the current thread until the
    /// returned guard drops. Nests: the innermost install wins.
    #[must_use = "the registry is uninstalled when the guard drops"]
    pub fn install_scoped(&self) -> ScopedInstall {
        SCOPED.with(|s| s.borrow_mut().push(self.clone()));
        ScopedInstall {
            _not_send: std::marker::PhantomData,
        }
    }

    /// Install as the process-global fallback registry.
    pub fn install_global(&self) {
        *write_on(global_slot()) = Some(self.clone());
    }

    /// Replace the clock used to stamp events and spans.
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *write_on(&self.inner.clock) = clock;
    }

    pub fn now(&self) -> f64 {
        read_on(&self.inner.clock).now()
    }

    // ---- metric handles (get-or-create) --------------------------------

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = read_on(&self.inner.counters).get(name) {
            return c.clone();
        }
        write_on(&self.inner.counters)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    pub fn float_counter(&self, name: &str) -> Arc<FloatCounter> {
        if let Some(c) = read_on(&self.inner.float_counters).get(name) {
            return c.clone();
        }
        write_on(&self.inner.float_counters)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(FloatCounter::new()))
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = read_on(&self.inner.gauges).get(name) {
            return g.clone();
        }
        write_on(&self.inner.gauges)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// Get-or-create a histogram. `bounds` applies only on first creation;
    /// later callers get the existing histogram whatever its bounds.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        if let Some(h) = read_on(&self.inner.histograms).get(name) {
            return h.clone();
        }
        write_on(&self.inner.histograms)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// Fetch an existing histogram without creating it.
    pub fn try_histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        read_on(&self.inner.histograms).get(name).cloned()
    }

    // ---- events --------------------------------------------------------

    /// Record an event stamped with this registry's clock.
    pub fn event(&self, kind: &str, fields: Vec<(&str, Json)>) {
        let t = self.now();
        self.event_at(t, kind, fields);
    }

    /// Record an event at an explicit time (simulated seconds from a DES).
    pub fn event_at(&self, t: f64, kind: &str, fields: Vec<(&str, Json)>) {
        self.inner.events.record(Event::new(t, kind, fields));
    }

    pub fn events(&self) -> &EventLog {
        &self.inner.events
    }

    // ---- export --------------------------------------------------------

    /// Full snapshot as ordered JSON: counters, float counters, gauges,
    /// histogram summaries, and event-kind counts. BTreeMap storage means
    /// every section is emitted in sorted name order — deterministic
    /// output for golden diffs.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            read_on(&self.inner.counters)
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(v.get())))
                .collect(),
        );
        let float_counters = Json::Obj(
            read_on(&self.inner.float_counters)
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(v.get())))
                .collect(),
        );
        let gauges = Json::Obj(
            read_on(&self.inner.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(v.get())))
                .collect(),
        );
        let histograms = Json::Obj(
            read_on(&self.inner.histograms)
                .iter()
                .map(|(k, h)| {
                    let s = h.snapshot();
                    (
                        k.clone(),
                        Json::obj(vec![
                            ("count", Json::from(s.count)),
                            ("sum", Json::from(s.sum)),
                            (
                                "min",
                                if s.count == 0 {
                                    Json::Null
                                } else {
                                    Json::from(s.min)
                                },
                            ),
                            (
                                "max",
                                if s.count == 0 {
                                    Json::Null
                                } else {
                                    Json::from(s.max)
                                },
                            ),
                            (
                                "bounds",
                                Json::Arr(s.bounds.iter().map(|&b| Json::from(b)).collect()),
                            ),
                            (
                                "buckets",
                                Json::Arr(s.buckets.iter().map(|&c| Json::from(c)).collect()),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        let event_counts = Json::Obj(
            self.inner
                .events
                .counts_by_kind()
                .into_iter()
                .map(|(k, v)| (k, Json::from(v)))
                .collect(),
        );
        Json::obj(vec![
            ("counters", counters),
            ("float_counters", float_counters),
            ("gauges", gauges),
            ("histograms", histograms),
            ("event_counts", event_counts),
        ])
    }

    /// Flat CSV of all scalar metrics: `kind,name,value`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,value\n");
        for (k, v) in read_on(&self.inner.counters).iter() {
            out.push_str(&format!("counter,{k},{}\n", v.get()));
        }
        for (k, v) in read_on(&self.inner.float_counters).iter() {
            out.push_str(&format!("float_counter,{k},{}\n", v.get()));
        }
        for (k, v) in read_on(&self.inner.gauges).iter() {
            out.push_str(&format!("gauge,{k},{}\n", v.get()));
        }
        for (k, h) in read_on(&self.inner.histograms).iter() {
            let s = h.snapshot();
            out.push_str(&format!("histogram_count,{k},{}\n", s.count));
            out.push_str(&format!("histogram_sum,{k},{}\n", s.sum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        r.counter("x").inc();
        r.counter("x").add(2);
        assert_eq!(r.counter("x").get(), 3);
        r.gauge("g").set(1.5);
        assert_eq!(r.gauge("g").get(), 1.5);
    }

    #[test]
    fn scoped_install_nests_and_restores() {
        let outer = Registry::new();
        let inner = Registry::new();
        {
            let _g1 = outer.install_scoped();
            Registry::current().counter("n").inc();
            {
                let _g2 = inner.install_scoped();
                Registry::current().counter("n").inc();
            }
            Registry::current().counter("n").inc();
        }
        assert_eq!(outer.counter("n").get(), 2);
        assert_eq!(inner.counter("n").get(), 1);
    }

    #[test]
    fn manual_clock_drives_event_timestamps() {
        let r = Registry::new();
        let clock = ManualClock::new(100.0);
        r.set_clock(clock.clone());
        r.event("tick", vec![]);
        clock.advance(5.0);
        r.event("tick", vec![]);
        let snap = r.events().snapshot();
        assert_eq!((snap[0].t, snap[1].t), (100.0, 105.0));
    }

    #[test]
    fn json_export_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b.second").inc();
        r.counter("a.first").add(2);
        r.float_counter("flops").add(1e9);
        r.gauge("depth").set(4.0);
        r.histogram("h", &[1.0, 2.0]).record(1.5);
        r.event_at(0.0, "go", vec![]);
        let j = r.to_json();
        let names: Vec<&str> = j
            .get("counters")
            .unwrap()
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(names, vec!["a.first", "b.second"]);
        assert_eq!(
            j.get_path(&["float_counters", "flops"]).unwrap().as_f64(),
            Some(1e9)
        );
        assert_eq!(
            j.get_path(&["histograms", "h", "count"]).unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            j.get_path(&["event_counts", "go"]).unwrap().as_u64(),
            Some(1)
        );
        // Round trip through the parser.
        assert_eq!(Json::parse(&j.to_string_pretty()).unwrap(), j);
    }

    #[test]
    fn csv_lists_every_metric_kind() {
        let r = Registry::new();
        r.counter("c").inc();
        r.gauge("g").set(2.0);
        r.histogram("h", &[1.0]).record(0.5);
        let csv = r.to_csv();
        assert!(csv.contains("counter,c,1"));
        assert!(csv.contains("gauge,g,2"));
        assert!(csv.contains("histogram_count,h,1"));
    }
}
