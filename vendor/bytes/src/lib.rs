//! Offline typecheck stub: the workspace declares `bytes` but does not use
//! its API directly.
