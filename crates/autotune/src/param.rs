use serde::{Deserialize, Serialize};

/// One point in a kernel's launch-parameter space.
///
/// QUDA tunes CUDA launch geometry (block/grid dims, shared-memory bytes).
/// Our kernels run on CPU threads, so the analogous knobs are the parallel
/// *grain size* (sites per rayon task), an inner *blocking factor* (sites per
/// cache block), and a free `policy` index used for discrete choices such as
/// communication strategies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct TuneParam {
    /// Sites handed to one parallel task at a time.
    pub grain: usize,
    /// Inner cache-blocking factor (sites per block within a task).
    pub block: usize,
    /// Discrete policy selector (e.g. which communication policy).
    pub policy: usize,
}

impl TuneParam {
    /// Parameter point with a policy index only (grain/block irrelevant).
    pub fn policy_only(policy: usize) -> Self {
        Self {
            grain: 1,
            block: 1,
            policy,
        }
    }
}

impl Default for TuneParam {
    fn default() -> Self {
        Self {
            grain: 1024,
            block: 64,
            policy: 0,
        }
    }
}

/// A finite candidate set to sweep.
///
/// The default space crosses a geometric ladder of grain sizes with a few
/// block sizes, which is what our stencil kernels enumerate. Policy-style
/// tunables instead enumerate one candidate per policy.
#[derive(Clone, Debug)]
pub struct ParamSpace {
    candidates: Vec<TuneParam>,
}

impl ParamSpace {
    /// Space containing exactly the given candidates.
    ///
    /// Returns `None` if `candidates` is empty — an empty space cannot be
    /// tuned.
    pub fn from_candidates(candidates: Vec<TuneParam>) -> Option<Self> {
        if candidates.is_empty() {
            None
        } else {
            Some(Self { candidates })
        }
    }

    /// Geometric ladder of grain sizes crossed with block sizes, clamped so
    /// no candidate exceeds `max_sites`.
    pub fn grain_ladder(max_sites: usize) -> Self {
        let mut candidates = Vec::new();
        let mut grain = 64usize;
        while grain <= max_sites.max(64) {
            for &block in &[16usize, 64, 256] {
                if block <= grain {
                    candidates.push(TuneParam {
                        grain,
                        block,
                        policy: 0,
                    });
                }
            }
            grain *= 4;
        }
        if candidates.is_empty() {
            candidates.push(TuneParam::default());
        }
        Self { candidates }
    }

    /// One candidate per policy index in `0..n_policies`.
    pub fn policies(n_policies: usize) -> Self {
        let candidates = (0..n_policies.max(1)).map(TuneParam::policy_only).collect();
        Self { candidates }
    }

    /// All candidate points.
    pub fn candidates(&self) -> &[TuneParam] {
        &self.candidates
    }

    /// Number of candidate points.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the space is empty (never true for constructed spaces).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}
