//! The unsynchronized-counter defect model.
//!
//! The canonical lost-update bug: N tasks each add `increments` to one
//! shared counter. With `atomic: true` every increment is a single
//! fetch-add step (the pool's chunk-cursor idiom) and the final count is
//! exact in every interleaving. With `atomic: false` each increment is a
//! separate load step then store step — the seeded "unsynchronized
//! counter" defect — and the explorer must find a schedule where two tasks
//! interleave between load and store, losing an update.
//!
//! This model also anchors the trace round-trip proptest: its parameter
//! space is cheap to sample and produces both verdicts.

use crate::explore::{Footprint, System};
use crate::model::obj_id;

/// Counter configuration.
#[derive(Debug, Clone)]
pub struct CounterSpec {
    pub tasks: usize,
    pub increments: u64,
    /// False = the seeded defect (split load/store increments).
    pub atomic: bool,
}

impl Default for CounterSpec {
    fn default() -> Self {
        Self {
            tasks: 2,
            increments: 2,
            atomic: false,
        }
    }
}

pub struct CounterSystem {
    spec: CounterSpec,
    counter: u64,
    counter_id: u64,
    /// Increments still to perform, per task.
    left: Vec<u64>,
    /// Loaded-but-not-stored value, per task (`atomic: false` only).
    staged: Vec<Option<u64>>,
}

impl CounterSystem {
    pub fn new(spec: CounterSpec) -> Self {
        Self {
            counter: 0,
            counter_id: obj_id("counter.value"),
            left: vec![spec.increments; spec.tasks],
            staged: vec![None; spec.tasks],
            spec,
        }
    }
}

impl System for CounterSystem {
    fn n_tasks(&self) -> usize {
        self.spec.tasks
    }

    fn task_name(&self, task: usize) -> String {
        format!("incr{task}")
    }

    fn done(&self, task: usize) -> bool {
        self.left[task] == 0 && self.staged[task].is_none()
    }

    fn enabled(&self, task: usize) -> bool {
        !self.done(task)
    }

    fn peek(&self, task: usize) -> Footprint {
        // Loads conflict with stores, so model every phase as read+write.
        let _ = task;
        Footprint::new()
            .read(self.counter_id)
            .write(self.counter_id)
    }

    fn step(&mut self, task: usize) {
        if self.spec.atomic {
            self.counter += 1;
            self.left[task] -= 1;
            return;
        }
        match self.staged[task].take() {
            // Store phase: publish the stale read + 1.
            Some(loaded) => {
                self.counter = loaded + 1;
                self.left[task] -= 1;
            }
            // Load phase.
            None => self.staged[task] = Some(self.counter),
        }
    }

    fn check(&self) -> Result<(), String> {
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        let want = self.spec.tasks as u64 * self.spec.increments;
        if self.counter != want {
            return Err(format!(
                "lost update: counter ended at {} after {} increments",
                self.counter, want
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{replay, Explorer};

    #[test]
    fn atomic_counter_is_exact_in_every_interleaving() {
        let run = Explorer::default().explore("counter-atomic", || {
            CounterSystem::new(CounterSpec {
                atomic: true,
                ..CounterSpec::default()
            })
        });
        assert!(run.verified(), "got {:?}", run.violation);
    }

    #[test]
    fn split_increment_loses_an_update() {
        let run = Explorer::default().explore("counter-defect", || {
            CounterSystem::new(CounterSpec::default())
        });
        let v = run.violation.expect("lost update must be found");
        assert!(v.message.contains("lost update"), "{}", v.message);
        let mut sys = CounterSystem::new(CounterSpec::default());
        let replayed = replay(&mut sys, &v.schedule).expect_err("replay must reproduce");
        assert_eq!(replayed.message, v.message);
    }

    #[test]
    fn preemption_bound_zero_misses_the_bug_bound_two_finds_it() {
        // With no preemptions each task runs to completion: no lost update.
        let serial = Explorer {
            preemption_bound: Some(0),
            ..Explorer::default()
        }
        .explore("counter-serial", || {
            CounterSystem::new(CounterSpec::default())
        });
        assert!(serial.violation.is_none(), "serial schedules are correct");
        let bounded = Explorer {
            preemption_bound: Some(2),
            ..Explorer::default()
        }
        .explore("counter-b2", || CounterSystem::new(CounterSpec::default()));
        assert!(
            bounded.violation.is_some(),
            "two preemptions expose the bug"
        );
    }
}
