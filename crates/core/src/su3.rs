//! SU(3) color algebra: 3×3 special-unitary matrices and color 3-vectors.
//!
//! Gauge links live in the fundamental representation of SU(3) (`Nc = 3`); a
//! quark field carries one color 3-vector per spin component. These types are
//! the dense "sub-matrices along the diagonal" of the Dirac operator the paper
//! describes.

use crate::complex::Complex;
use crate::real::Real;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Number of colors.
pub const NC: usize = 3;

/// A color 3-vector.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct ColorVec<R> {
    /// The three color components.
    pub c: [Complex<R>; NC],
}

impl<R: Real> ColorVec<R> {
    /// The zero vector.
    pub fn zero() -> Self {
        Self {
            c: [Complex::zero(); NC],
        }
    }

    /// Squared 2-norm.
    #[inline(always)]
    pub fn norm_sqr(&self) -> R {
        self.c[0].norm_sqr() + self.c[1].norm_sqr() + self.c[2].norm_sqr()
    }

    /// Hermitian inner product `⟨self, rhs⟩ = Σ conj(self_i) rhs_i`.
    pub fn dot(&self, rhs: &Self) -> Complex<R> {
        let mut acc = Complex::zero();
        for i in 0..NC {
            acc += self.c[i].conj() * rhs.c[i];
        }
        acc
    }

    /// Multiply every component by a complex scalar.
    #[inline(always)]
    pub fn scale_c(&self, s: Complex<R>) -> Self {
        Self {
            c: [self.c[0] * s, self.c[1] * s, self.c[2] * s],
        }
    }

    /// Multiply every component by a real scalar.
    #[inline(always)]
    pub fn scale(&self, s: R) -> Self {
        Self {
            c: [self.c[0].scale(s), self.c[1].scale(s), self.c[2].scale(s)],
        }
    }

    /// `i · self`.
    #[inline(always)]
    pub fn mul_i(&self) -> Self {
        Self {
            c: [self.c[0].mul_i(), self.c[1].mul_i(), self.c[2].mul_i()],
        }
    }

    /// Convert precision component-wise.
    pub fn cast<S: Real>(&self) -> ColorVec<S> {
        ColorVec {
            c: [self.c[0].cast(), self.c[1].cast(), self.c[2].cast()],
        }
    }
}

impl<R: Real> Add for ColorVec<R> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self {
            c: [
                self.c[0] + rhs.c[0],
                self.c[1] + rhs.c[1],
                self.c[2] + rhs.c[2],
            ],
        }
    }
}

impl<R: Real> Sub for ColorVec<R> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self {
            c: [
                self.c[0] - rhs.c[0],
                self.c[1] - rhs.c[1],
                self.c[2] - rhs.c[2],
            ],
        }
    }
}

impl<R: Real> Neg for ColorVec<R> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self {
            c: [-self.c[0], -self.c[1], -self.c[2]],
        }
    }
}

impl<R: Real> AddAssign for ColorVec<R> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..NC {
            self.c[i] += rhs.c[i];
        }
    }
}

/// A 3×3 complex matrix in row-major order; gauge links are the SU(3) subset.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Su3<R> {
    /// Row-major entries `m[row][col]`.
    pub m: [[Complex<R>; NC]; NC],
}

impl<R: Real> Default for Su3<R> {
    fn default() -> Self {
        Self::identity()
    }
}

impl<R: Real> Su3<R> {
    /// The identity matrix (a valid group element: the "cold" link).
    pub fn identity() -> Self {
        let mut m = [[Complex::zero(); NC]; NC];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = Complex::one();
        }
        Self { m }
    }

    /// The zero matrix (not a group element; used as an accumulator).
    pub fn zero() -> Self {
        Self {
            m: [[Complex::zero(); NC]; NC],
        }
    }

    /// Hermitian conjugate (the group inverse for unitary matrices).
    pub fn dagger(&self) -> Self {
        let mut out = Self::zero();
        for i in 0..NC {
            for j in 0..NC {
                out.m[i][j] = self.m[j][i].conj();
            }
        }
        out
    }

    /// Matrix–vector product `U v`.
    #[inline]
    pub fn mul_vec(&self, v: &ColorVec<R>) -> ColorVec<R> {
        let mut out = ColorVec::zero();
        for (i, row) in self.m.iter().enumerate() {
            let mut acc = Complex::zero();
            for (j, &u) in row.iter().enumerate() {
                acc = acc.add_mul(u, v.c[j]);
            }
            out.c[i] = acc;
        }
        out
    }

    /// `U† v` without materializing the dagger.
    #[inline]
    pub fn dagger_mul_vec(&self, v: &ColorVec<R>) -> ColorVec<R> {
        let mut out = ColorVec::zero();
        for i in 0..NC {
            let mut acc = Complex::zero();
            for j in 0..NC {
                acc += self.m[j][i].conj() * v.c[j];
            }
            out.c[i] = acc;
        }
        out
    }

    /// Trace.
    pub fn trace(&self) -> Complex<R> {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Real part of the trace (the plaquette observable's ingredient).
    pub fn re_trace(&self) -> R {
        self.m[0][0].re + self.m[1][1].re + self.m[2][2].re
    }

    /// Determinant (should be 1 for group elements).
    pub fn det(&self) -> Complex<R> {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Multiply every entry by a real scalar.
    pub fn scale(&self, s: R) -> Self {
        let mut out = *self;
        for row in out.m.iter_mut() {
            for e in row.iter_mut() {
                *e = e.scale(s);
            }
        }
        out
    }

    /// Frobenius distance to another matrix, as `f64` for tolerance checks.
    pub fn distance(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..NC {
            for j in 0..NC {
                acc += (self.m[i][j] - other.m[i][j]).norm_sqr().to_f64();
            }
        }
        acc.sqrt()
    }

    /// Deviation from unitarity `‖U U† − 1‖_F` as `f64`.
    pub fn unitarity_error(&self) -> f64 {
        let uud = *self * self.dagger();
        uud.distance(&Self::identity())
    }

    /// Project back onto SU(3) by Gram–Schmidt on the first two rows and
    /// setting the third to the conjugate cross product (reunitarization,
    /// applied periodically during gauge evolution to control rounding drift).
    pub fn reunitarize(&self) -> Self {
        let mut r0 = ColorVec { c: self.m[0] };
        let n0 = r0.norm_sqr().sqrt();
        r0 = r0.scale(R::ONE / n0);
        let mut r1 = ColorVec { c: self.m[1] };
        let proj = r0.dot(&r1);
        for i in 0..NC {
            r1.c[i] -= proj * r0.c[i];
        }
        let n1 = r1.norm_sqr().sqrt();
        r1 = r1.scale(R::ONE / n1);
        // Third row: conj(r0 × r1) makes the matrix special unitary.
        let cross = |a: &ColorVec<R>, b: &ColorVec<R>| -> ColorVec<R> {
            ColorVec {
                c: [
                    (a.c[1] * b.c[2] - a.c[2] * b.c[1]).conj(),
                    (a.c[2] * b.c[0] - a.c[0] * b.c[2]).conj(),
                    (a.c[0] * b.c[1] - a.c[1] * b.c[0]).conj(),
                ],
            }
        };
        let r2 = cross(&r0, &r1);
        Self {
            m: [r0.c, r1.c, r2.c],
        }
    }

    /// A Haar-ish random SU(3) element: Gaussian entries re-unitarized.
    /// Used for "hot" gauge starts.
    pub fn random<G: Rng>(rng: &mut G) -> Self {
        let mut m = [[Complex::zero(); NC]; NC];
        for row in m.iter_mut() {
            for e in row.iter_mut() {
                *e = Complex::from_f64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5);
            }
        }
        Self { m }.reunitarize()
    }

    /// Convert precision entry-wise.
    pub fn cast<S: Real>(&self) -> Su3<S> {
        let mut out = Su3::zero();
        for i in 0..NC {
            for j in 0..NC {
                out.m[i][j] = self.m[i][j].cast();
            }
        }
        out
    }
}

impl<R: Real> Mul for Su3<R> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let mut out = Self::zero();
        for i in 0..NC {
            for k in 0..NC {
                let a = self.m[i][k];
                for j in 0..NC {
                    out.m[i][j] = out.m[i][j].add_mul(a, rhs.m[k][j]);
                }
            }
        }
        out
    }
}

impl<R: Real> Add for Su3<R> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let mut out = self;
        for i in 0..NC {
            for j in 0..NC {
                out.m[i][j] += rhs.m[i][j];
            }
        }
        out
    }
}

impl<R: Real> AddAssign for Su3<R> {
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..NC {
            for j in 0..NC {
                self.m[i][j] += rhs.m[i][j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_unitary_with_unit_det() {
        let u = Su3::<f64>::identity();
        assert!(u.unitarity_error() < 1e-15);
        assert!((u.det() - Complex::one()).abs() < 1e-15);
    }

    #[test]
    fn random_elements_are_special_unitary() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let u = Su3::<f64>::random(&mut rng);
            assert!(u.unitarity_error() < 1e-12, "U U† = 1");
            assert!((u.det() - Complex::one()).abs() < 1e-12, "det U = 1");
        }
    }

    #[test]
    fn group_closure_under_multiplication() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = Su3::<f64>::random(&mut rng);
        let b = Su3::<f64>::random(&mut rng);
        let c = a * b;
        assert!(c.unitarity_error() < 1e-12);
        assert!((c.det() - Complex::one()).abs() < 1e-12);
    }

    #[test]
    fn dagger_is_inverse() {
        let mut rng = SmallRng::seed_from_u64(11);
        let u = Su3::<f64>::random(&mut rng);
        let prod = u * u.dagger();
        assert!(prod.distance(&Su3::identity()) < 1e-12);
    }

    #[test]
    fn dagger_mul_vec_matches_materialized_dagger() {
        let mut rng = SmallRng::seed_from_u64(5);
        let u = Su3::<f64>::random(&mut rng);
        let v = ColorVec {
            c: [
                Complex::from_f64(0.3, -1.0),
                Complex::from_f64(2.0, 0.7),
                Complex::from_f64(-0.5, 0.1),
            ],
        };
        let a = u.dagger_mul_vec(&v);
        let b = u.dagger().mul_vec(&v);
        assert!((a - b).norm_sqr() < 1e-24);
    }

    #[test]
    fn mul_vec_preserves_norm_for_unitary() {
        let mut rng = SmallRng::seed_from_u64(13);
        let u = Su3::<f64>::random(&mut rng);
        let v = ColorVec {
            c: [
                Complex::from_f64(1.0, 2.0),
                Complex::from_f64(-0.3, 0.4),
                Complex::from_f64(0.0, -1.5),
            ],
        };
        let w = u.mul_vec(&v);
        assert!((w.norm_sqr() - v.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn reunitarize_fixes_perturbed_matrix() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut u = Su3::<f64>::random(&mut rng);
        // Perturb off the group manifold.
        u.m[0][0] += Complex::from_f64(1e-3, -2e-3);
        u.m[2][1] += Complex::from_f64(-5e-4, 1e-4);
        let v = u.reunitarize();
        assert!(v.unitarity_error() < 1e-12);
        assert!((v.det() - Complex::one()).abs() < 1e-12);
        // Projection must stay close to the original.
        assert!(u.distance(&v) < 0.05);
    }

    #[test]
    fn trace_of_identity_is_three() {
        let u = Su3::<f64>::identity();
        assert_eq!(u.re_trace(), 3.0);
    }

    #[test]
    fn color_dot_is_hermitian() {
        let a: ColorVec<f64> = ColorVec {
            c: [
                Complex::from_f64(1.0, 1.0),
                Complex::from_f64(0.0, 2.0),
                Complex::from_f64(-1.0, 0.5),
            ],
        };
        let b = ColorVec {
            c: [
                Complex::from_f64(0.3, -0.7),
                Complex::from_f64(1.2, 0.0),
                Complex::from_f64(0.0, 0.9),
            ],
        };
        let ab = a.dot(&b);
        let ba = b.dot(&a);
        assert!((ab - ba.conj()).abs() < 1e-15);
        assert!((a.dot(&a).im).abs() < 1e-15, "self-dot is real");
    }
}
