//! Figs. 3 and 4: strong scaling of the CG solver.
//!
//! Fig. 3 — 48³×64 lattice on Titan, Ray, and Sierra: (a) TFLOPS,
//! (b) percent of peak, (c) effective bandwidth per GPU.
//! Fig. 4 — 96³×144 proof-of-concept on Summit up to ~10k GPUs, showing the
//! efficiency knee past ~2000 GPUs.

use crate::output::{print_table, ExperimentOutput};
use autotune::Tuner;
use coral_machine::{ray, sierra, summit, titan, PerfPoint, SolverPerfModel};

/// Strong-scaling curves for the three Fig. 3 machines.
pub fn run_fig3(out: &ExperimentOutput) -> Vec<(String, Vec<PerfPoint>)> {
    let tuner = Tuner::new();
    let counts: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 48, 64, 96, 128, 144, 160];
    let mut curves = Vec::new();
    for machine in [titan(), ray(), sierra()] {
        let model = SolverPerfModel::new(machine.clone(), [48, 48, 48, 64], 12);
        let curve = model.strong_scaling(&tuner, &counts);
        curves.push((machine.name.clone(), curve));
    }

    for (name, curve) in &curves {
        let rows: Vec<Vec<String>> = curve
            .iter()
            .map(|p| {
                vec![
                    p.n_gpus.to_string(),
                    format!("{:.1}", p.tflops),
                    format!("{:.1}", p.pct_peak),
                    format!("{:.0}", p.bw_per_gpu_gbs),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 3 — {name}, 48^3 x 64 strong scaling"),
            &["GPUs", "TFLOPS", "% peak", "GB/s per GPU"],
            &rows,
        );
        let csv: Vec<Vec<f64>> = curve
            .iter()
            .map(|p| {
                vec![
                    p.n_gpus as f64,
                    p.tflops,
                    p.pct_peak,
                    p.bw_per_gpu_gbs,
                    p.time_per_iter,
                ]
            })
            .collect();
        out.csv(
            &format!("fig3_{}.csv", name.to_lowercase()),
            "gpus,tflops,pct_peak,bw_per_gpu_gbs,time_per_iter_s",
            &csv,
        )
        .expect("csv");
    }
    println!(
        "\npaper anchors at peak efficiency: 139 / 516 / 975 GB/s per GPU \
         (Titan / Ray / Sierra); Sierra ~20% of peak at low node count"
    );
    curves
}

/// Summit strong scaling on the 96³×144 lattice (Fig. 4).
pub fn run_fig4(out: &ExperimentOutput) -> Vec<PerfPoint> {
    let tuner = Tuner::new();
    let model = SolverPerfModel::new(summit(), [96, 96, 96, 144], 20);
    let counts: Vec<usize> = vec![
        24, 48, 96, 192, 384, 768, 1536, 2048, 3072, 4608, 6144, 9216,
    ];
    let curve = model.strong_scaling(&tuner, &counts);

    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|p| {
            vec![
                p.n_gpus.to_string(),
                format!("{:.0}", p.tflops),
                format!("{:.1}", p.pct_peak),
            ]
        })
        .collect();
    print_table(
        "Fig. 4 — Summit, 96^3 x 144 strong scaling",
        &["GPUs", "TFLOPS", "% peak"],
        &rows,
    );
    println!("\npaper: approaches 1.5 PFLOPS with a large efficiency drop past ~2000 GPUs");

    let csv: Vec<Vec<f64>> = curve
        .iter()
        .map(|p| vec![p.n_gpus as f64, p.tflops, p.pct_peak])
        .collect();
    out.csv("fig4_summit.csv", "gpus,tflops,pct_peak", &csv)
        .expect("csv");
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shapes_hold() {
        let out = ExperimentOutput::new(std::env::temp_dir().join("fig3_test")).unwrap();
        let curves = run_fig3(&out);
        assert_eq!(curves.len(), 3);
        // Sierra dominates Titan at every shared GPU count.
        let titan = &curves[0].1;
        let sierra = &curves[2].1;
        for (t, s) in titan.iter().zip(sierra) {
            assert_eq!(t.n_gpus, s.n_gpus);
            assert!(s.tflops > t.tflops);
        }
        // Efficiency decreases monotonically along each curve.
        for (_, curve) in &curves {
            assert!(curve
                .windows(2)
                .all(|w| w[1].pct_peak <= w[0].pct_peak + 1e-9));
        }
    }

    #[test]
    fn fig4_knee_exists() {
        let out = ExperimentOutput::new(std::env::temp_dir().join("fig4_test")).unwrap();
        let curve = run_fig4(&out);
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert!(last.tflops > 500.0, "saturation should be O(1) PFLOPS");
        assert!(last.pct_peak < 0.4 * first.pct_peak, "efficiency knee");
    }
}
