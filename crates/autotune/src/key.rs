use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier for a tunable computation.
///
/// Mirrors QUDA's `TuneKey`: a kernel name, a volume string describing the
/// local problem, and an auxiliary string carrying anything else that changes
/// the optimum (precision, parity, communication topology, machine name).
/// Batched multi-RHS kernels additionally carry the block size `nrhs` —
/// the optimum policy genuinely shifts with how many right-hand-sides share
/// each gauge-link load, so block sizes must not share cache entries.
/// Two computations with equal keys share a cached optimum; anything that
/// could shift the optimum must be folded into one of the fields.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Debug)]
pub struct TuneKey {
    /// Kernel or algorithm name, e.g. `"dslash_wilson"` or `"halo_exchange"`.
    pub name: String,
    /// Problem-geometry component, e.g. `"48x48x48x64x12"`.
    pub volume: String,
    /// Auxiliary discriminator, e.g. `"prec=half,parity=odd,nodes=4"`.
    pub aux: String,
    /// Right-hand-side block size of a batched kernel; `1` for the
    /// single-RHS kernels (and absent from their displayed keys and from
    /// pre-batching cache files, which [`crate::Tuner::merge_json`] reads
    /// as single-RHS).
    pub nrhs: usize,
}

impl TuneKey {
    /// Build a single-RHS key from its three string components.
    pub fn new(name: impl Into<String>, volume: impl Into<String>, aux: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            volume: volume.into(),
            aux: aux.into(),
            nrhs: 1,
        }
    }

    /// The same key at RHS block size `nrhs`.
    pub fn with_nrhs(mut self, nrhs: usize) -> Self {
        self.nrhs = nrhs;
        self
    }
}

impl fmt::Display for TuneKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}::{}", self.name, self.volume, self.aux)?;
        if self.nrhs != 1 {
            write!(f, "::rhs{}", self.nrhs)?;
        }
        Ok(())
    }
}
