//! Four-dimensional lattice geometry.
//!
//! Sites are stored lexicographically (`x` fastest); even–odd (red–black)
//! parity, which underlies the preconditioned solver, is `(x+y+z+t) mod 2`.
//! Neighbor lookups — the entire communication pattern of the radius-one
//! stencil — are precomputed into flat tables, together with a wrap flag used
//! to apply antiperiodic temporal boundary conditions to fermions.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Number of spacetime directions.
pub const ND: usize = 4;

/// Site parity for red–black decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parity {
    /// Sites with even coordinate sum.
    Even,
    /// Sites with odd coordinate sum.
    Odd,
}

impl Parity {
    /// The opposite parity.
    pub fn other(self) -> Self {
        match self {
            Parity::Even => Parity::Odd,
            Parity::Odd => Parity::Even,
        }
    }
}

/// Neighbor record for one site: forward/backward lexicographic indices per
/// direction, plus bitmasks marking hops that wrapped around the lattice.
#[derive(Clone, Copy, Debug, Default)]
pub struct Neighbors {
    /// `fwd[mu]` = lexicographic index of `x + μ̂`.
    pub fwd: [u32; ND],
    /// `bwd[mu]` = lexicographic index of `x − μ̂`.
    pub bwd: [u32; ND],
    /// Bit `mu` set when the forward hop crossed the boundary.
    pub fwd_wrap: u8,
    /// Bit `mu` set when the backward hop crossed the boundary.
    pub bwd_wrap: u8,
}

/// Shared, immutable lattice geometry.
#[derive(Clone)]
pub struct Lattice {
    dims: [usize; ND],
    volume: usize,
    neighbors: Arc<Vec<Neighbors>>,
    parity: Arc<Vec<Parity>>,
    /// `cb_of_lex[idx]` = position of `idx` within its parity's site list.
    cb_of_lex: Arc<Vec<u32>>,
    /// Lexicographic indices of even sites, increasing.
    even_sites: Arc<Vec<u32>>,
    /// Lexicographic indices of odd sites, increasing.
    odd_sites: Arc<Vec<u32>>,
}

impl Lattice {
    /// Build the geometry for the given extents `[nx, ny, nz, nt]`.
    ///
    /// # Panics
    /// If any extent is zero, or any extent is odd (even extents are required
    /// for a consistent red–black decomposition), or the volume overflows.
    pub fn new(dims: [usize; ND]) -> Self {
        for (mu, &d) in dims.iter().enumerate() {
            assert!(d > 0, "extent in direction {mu} must be positive");
            assert!(
                d % 2 == 0,
                "extent in direction {mu} must be even for red-black parity"
            );
        }
        let volume = dims.iter().product::<usize>();
        assert!(
            volume <= u32::MAX as usize,
            "volume must fit in u32 indices"
        );

        let mut neighbors = vec![Neighbors::default(); volume];
        let mut parity = vec![Parity::Even; volume];
        for idx in 0..volume {
            let coords = Self::coords_of(dims, idx);
            parity[idx] = if coords.iter().sum::<usize>() % 2 == 0 {
                Parity::Even
            } else {
                Parity::Odd
            };
            let mut rec = Neighbors::default();
            for mu in 0..ND {
                let mut up = coords;
                let wrapped_up = coords[mu] + 1 == dims[mu];
                up[mu] = if wrapped_up { 0 } else { coords[mu] + 1 };
                rec.fwd[mu] = Self::index_of(dims, up) as u32;
                if wrapped_up {
                    rec.fwd_wrap |= 1 << mu;
                }

                let mut dn = coords;
                let wrapped_dn = coords[mu] == 0;
                dn[mu] = if wrapped_dn {
                    dims[mu] - 1
                } else {
                    coords[mu] - 1
                };
                rec.bwd[mu] = Self::index_of(dims, dn) as u32;
                if wrapped_dn {
                    rec.bwd_wrap |= 1 << mu;
                }
            }
            neighbors[idx] = rec;
        }

        let mut cb_of_lex = vec![0u32; volume];
        let mut even_sites = Vec::with_capacity(volume / 2);
        let mut odd_sites = Vec::with_capacity(volume / 2);
        for idx in 0..volume {
            match parity[idx] {
                Parity::Even => {
                    cb_of_lex[idx] = even_sites.len() as u32;
                    even_sites.push(idx as u32);
                }
                Parity::Odd => {
                    cb_of_lex[idx] = odd_sites.len() as u32;
                    odd_sites.push(idx as u32);
                }
            }
        }

        Self {
            dims,
            volume,
            neighbors: Arc::new(neighbors),
            parity: Arc::new(parity),
            cb_of_lex: Arc::new(cb_of_lex),
            even_sites: Arc::new(even_sites),
            odd_sites: Arc::new(odd_sites),
        }
    }

    /// Lattice extents `[nx, ny, nz, nt]`.
    pub fn dims(&self) -> [usize; ND] {
        self.dims
    }

    /// Total number of sites.
    pub fn volume(&self) -> usize {
        self.volume
    }

    /// Spatial volume `nx·ny·nz`.
    pub fn spatial_volume(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Temporal extent.
    pub fn nt(&self) -> usize {
        self.dims[3]
    }

    /// Lexicographic index of a coordinate tuple.
    pub fn index(&self, coords: [usize; ND]) -> usize {
        Self::index_of(self.dims, coords)
    }

    /// Coordinates of a lexicographic index.
    pub fn coords(&self, idx: usize) -> [usize; ND] {
        Self::coords_of(self.dims, idx)
    }

    fn index_of(dims: [usize; ND], c: [usize; ND]) -> usize {
        ((c[3] * dims[2] + c[2]) * dims[1] + c[1]) * dims[0] + c[0]
    }

    fn coords_of(dims: [usize; ND], mut idx: usize) -> [usize; ND] {
        let mut c = [0usize; ND];
        for mu in 0..ND {
            c[mu] = idx % dims[mu];
            idx /= dims[mu];
        }
        c
    }

    /// Neighbor table entry for a site.
    #[inline(always)]
    pub fn neighbors(&self, idx: usize) -> &Neighbors {
        &self.neighbors[idx]
    }

    /// Raw neighbor table (for kernels iterating in bulk).
    pub fn neighbor_table(&self) -> &[Neighbors] {
        &self.neighbors
    }

    /// Parity of a site.
    #[inline(always)]
    pub fn parity(&self, idx: usize) -> Parity {
        self.parity[idx]
    }

    /// Sites of one parity, in increasing lexicographic order. Exactly half
    /// the volume each.
    pub fn sites_with_parity(&self, p: Parity) -> &[u32] {
        match p {
            Parity::Even => &self.even_sites,
            Parity::Odd => &self.odd_sites,
        }
    }

    /// Position of a lexicographic site within its parity's checkerboard.
    #[inline(always)]
    pub fn cb_index(&self, idx: usize) -> usize {
        self.cb_of_lex[idx] as usize
    }

    /// Number of sites on one checkerboard (half the volume).
    pub fn half_volume(&self) -> usize {
        self.volume / 2
    }

    /// Time coordinate of a site (frequent in correlator code).
    #[inline(always)]
    pub fn time_of(&self, idx: usize) -> usize {
        idx / (self.dims[0] * self.dims[1] * self.dims[2])
    }
}

impl std::fmt::Debug for Lattice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Lattice({}x{}x{}x{})",
            self.dims[0], self.dims[1], self.dims[2], self.dims[3]
        )
    }
}

/// Volume string for autotune keys, e.g. `"8x8x8x16"`.
pub fn volume_string(dims: [usize; ND]) -> String {
    format!("{}x{}x{}x{}", dims[0], dims[1], dims[2], dims[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coords_round_trip() {
        let lat = Lattice::new([4, 6, 2, 8]);
        for idx in 0..lat.volume() {
            assert_eq!(lat.index(lat.coords(idx)), idx);
        }
    }

    #[test]
    fn volume_and_slices() {
        let lat = Lattice::new([4, 4, 4, 8]);
        assert_eq!(lat.volume(), 512);
        assert_eq!(lat.spatial_volume(), 64);
        assert_eq!(lat.nt(), 8);
    }

    #[test]
    fn neighbors_are_mutually_inverse() {
        let lat = Lattice::new([4, 4, 2, 6]);
        for idx in 0..lat.volume() {
            let n = lat.neighbors(idx);
            for mu in 0..ND {
                let up = n.fwd[mu] as usize;
                assert_eq!(lat.neighbors(up).bwd[mu] as usize, idx, "fwd∘bwd = id");
                let dn = n.bwd[mu] as usize;
                assert_eq!(lat.neighbors(dn).fwd[mu] as usize, idx, "bwd∘fwd = id");
            }
        }
    }

    #[test]
    fn neighbors_flip_parity() {
        let lat = Lattice::new([4, 4, 4, 4]);
        for idx in 0..lat.volume() {
            let p = lat.parity(idx);
            let n = lat.neighbors(idx);
            for mu in 0..ND {
                assert_eq!(lat.parity(n.fwd[mu] as usize), p.other());
                assert_eq!(lat.parity(n.bwd[mu] as usize), p.other());
            }
        }
    }

    #[test]
    fn parity_halves_are_equal() {
        let lat = Lattice::new([4, 6, 2, 4]);
        let even = lat.sites_with_parity(Parity::Even);
        let odd = lat.sites_with_parity(Parity::Odd);
        assert_eq!(even.len(), lat.volume() / 2);
        assert_eq!(odd.len(), lat.volume() / 2);
    }

    #[test]
    fn wrap_flags_mark_boundary_hops_only() {
        let lat = Lattice::new([4, 4, 4, 6]);
        for idx in 0..lat.volume() {
            let c = lat.coords(idx);
            let n = lat.neighbors(idx);
            for mu in 0..ND {
                let expect_fwd = c[mu] == lat.dims()[mu] - 1;
                let expect_bwd = c[mu] == 0;
                assert_eq!((n.fwd_wrap >> mu) & 1 == 1, expect_fwd);
                assert_eq!((n.bwd_wrap >> mu) & 1 == 1, expect_bwd);
            }
        }
    }

    #[test]
    fn cb_index_round_trips() {
        let lat = Lattice::new([4, 4, 2, 6]);
        for p in [Parity::Even, Parity::Odd] {
            let sites = lat.sites_with_parity(p);
            for (k, &lex) in sites.iter().enumerate() {
                assert_eq!(lat.cb_index(lex as usize), k);
                assert_eq!(lat.parity(lex as usize), p);
            }
        }
        assert_eq!(lat.half_volume(), lat.volume() / 2);
    }

    #[test]
    fn time_of_matches_coords() {
        let lat = Lattice::new([4, 4, 2, 8]);
        for idx in 0..lat.volume() {
            assert_eq!(lat.time_of(idx), lat.coords(idx)[3]);
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_extent_is_rejected() {
        let _ = Lattice::new([3, 4, 4, 4]);
    }
}
