//! Deterministic bounded schedule exploration.
//!
//! A [`System`] is a set of cooperative tasks over shared modeled objects;
//! each `step` is one atomic transition. [`Explorer::explore`] enumerates
//! interleavings by stateless depth-first search: every schedule re-executes
//! a fresh system from scratch following the decision prefix on the DFS
//! stack, so the harness needs no state snapshotting and any schedule is
//! trivially replayable from its decision list alone.
//!
//! Two classic reductions keep the tree tractable:
//!
//! - **Sleep sets** (Flanagan–Godefroid): after exploring task `a` from a
//!   state, sibling branches put `a` to sleep; it wakes only when a
//!   dependent step (footprint intersection) executes. This prunes
//!   Mazurkiewicz-equivalent interleavings without losing safety
//!   violations.
//! - **Preemption bound** (CHESS): optionally cap the number of times the
//!   scheduler switches away from a task that could have continued.
//!   Unbounded (`None`) exploration is exhaustive; bounded exploration is a
//!   systematic smoke pass for larger configurations.
//!
//! Dependence comes from [`Footprint`]s: `peek` reports the object ids the
//! next step would read/write. Footprints must *over*-approximate — extra
//! ids only cost pruning power, while a missing id could prune a real
//! interleaving. Steps that change another task's enabledness must conflict
//! with that task's footprint (model the guard object as read by the
//! blocked task and written by the unblocking step).

/// Object ids read and written by one prospective step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    pub reads: Vec<u64>,
    pub writes: Vec<u64>,
}

impl Footprint {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: the step reads object `id`.
    #[must_use]
    pub fn read(mut self, id: u64) -> Self {
        self.reads.push(id);
        self
    }

    /// Builder: the step writes object `id`.
    #[must_use]
    pub fn write(mut self, id: u64) -> Self {
        self.writes.push(id);
        self
    }

    /// Two steps are independent when neither writes anything the other
    /// touches — they commute and cannot enable/disable each other.
    pub fn independent(&self, other: &Footprint) -> bool {
        let collides = |writes: &[u64], fp: &Footprint| {
            writes
                .iter()
                .any(|w| fp.writes.contains(w) || fp.reads.contains(w))
        };
        !collides(&self.writes, other) && !collides(&other.writes, self)
    }
}

/// A concurrent protocol modeled as cooperative tasks with atomic steps.
///
/// Task indices are `0..n_tasks()` and must keep a fixed meaning for the
/// lifetime of the system (traces serialize indices). A fresh system built
/// by the same constructor must behave identically — exploration re-runs
/// the constructor once per schedule.
pub trait System {
    fn n_tasks(&self) -> usize;

    /// Human-readable task name for reports and violation messages.
    fn task_name(&self, task: usize) -> String;

    /// A done task has finished its program and takes no further steps.
    fn done(&self, task: usize) -> bool;

    /// An enabled task can step now; not-enabled and not-done means blocked
    /// (e.g. waiting on a modeled mutex or an empty channel).
    fn enabled(&self, task: usize) -> bool;

    /// Shared objects the next `step(task)` would touch. Must be
    /// side-effect free and must over-approximate (see module docs).
    fn peek(&self, task: usize) -> Footprint;

    /// Execute one atomic step of `task`. Only called when enabled.
    fn step(&mut self, task: usize);

    /// Safety property over the current state, checked after every step.
    fn check(&self) -> Result<(), String>;

    /// Property over a terminal state (every task done).
    fn check_final(&self) -> Result<(), String> {
        Ok(())
    }
}

/// A failing schedule: the decision list that reproduces it plus the
/// property (or deadlock) message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Task index chosen at each step, in order.
    pub schedule: Vec<usize>,
    pub message: String,
}

/// Outcome of one exploration run.
#[derive(Debug, Clone)]
pub struct Exploration {
    pub config: String,
    /// Schedules executed (including the violating one, if any).
    pub schedules: u64,
    /// Total steps executed across all schedules.
    pub steps: u64,
    /// Longest schedule seen, in steps.
    pub max_depth: usize,
    /// True when the reduced interleaving space was fully enumerated (no
    /// cap hit, no violation cut the search short).
    pub complete: bool,
    pub violation: Option<Violation>,
}

impl Exploration {
    /// Exhaustively verified: every (sleep-set-reduced) interleaving ran
    /// and none violated a property.
    pub fn verified(&self) -> bool {
        self.complete && self.violation.is_none()
    }
}

/// DFS stack node: one scheduling decision point.
struct Node {
    /// Task currently being explored from this state.
    chosen: usize,
    /// Footprint `chosen` had at this state (captured at execution).
    chosen_fp: Footprint,
    /// Candidate siblings not yet explored.
    pending: Vec<usize>,
    /// Tasks asleep on arrival at this state, with the footprints they had
    /// when put to sleep.
    sleep: Vec<(usize, Footprint)>,
    /// Siblings fully explored from this state (they sleep in later ones).
    explored: Vec<(usize, Footprint)>,
}

enum ScheduleEnd {
    /// All tasks done, final check passed.
    Completed,
    /// Every enabled task was asleep: subtree covered elsewhere.
    Pruned,
    Violated(String),
}

/// Schedule enumeration parameters.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Max scheduler switches away from a runnable task per schedule;
    /// `None` explores the full (sleep-set-reduced) space.
    pub preemption_bound: Option<usize>,
    /// Hard cap on schedules executed; hitting it marks the exploration
    /// incomplete rather than wedging CI.
    pub max_schedules: u64,
    /// Steps per schedule before declaring a livelock violation.
    pub max_steps: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Self {
            preemption_bound: None,
            max_schedules: 2_000_000,
            max_steps: 10_000,
        }
    }
}

impl Explorer {
    /// Enumerate interleavings of fresh systems built by `new_sys`,
    /// stopping at the first violation.
    pub fn explore<S: System>(&self, config: &str, mut new_sys: impl FnMut() -> S) -> Exploration {
        let mut out = Exploration {
            config: config.to_string(),
            schedules: 0,
            steps: 0,
            max_depth: 0,
            complete: true,
            violation: None,
        };
        let mut stack: Vec<Node> = Vec::new();
        'schedules: loop {
            if out.schedules >= self.max_schedules {
                out.complete = false;
                break;
            }
            out.schedules += 1;
            let mut sys = new_sys();
            let mut cur_sleep: Vec<(usize, Footprint)> = Vec::new();
            let mut preemptions = 0usize;
            let mut last: Option<usize> = None;
            let mut depth = 0usize;
            // Replay the stack prefix, then extend at the frontier until the
            // schedule terminates.
            let end = loop {
                if depth >= self.max_steps {
                    break ScheduleEnd::Violated(format!(
                        "schedule exceeded max_steps = {} (livelock?)",
                        self.max_steps
                    ));
                }
                if depth == stack.len() {
                    match self.open_node(&sys, &cur_sleep, preemptions, last) {
                        Frontier::Terminal(end) => break end,
                        Frontier::Node(node) => stack.push(node),
                    }
                }
                let node = &mut stack[depth];
                let task = node.chosen;
                let fp = sys.peek(task);
                // Sleepers stay asleep across independent steps only.
                let mut next_sleep = Vec::new();
                for (s, sfp) in node.sleep.iter().chain(node.explored.iter()) {
                    if *s != task && sfp.independent(&fp) {
                        next_sleep.push((*s, sfp.clone()));
                    }
                }
                node.chosen_fp = fp;
                if let Some(l) = last {
                    if l != task && !sys.done(l) && sys.enabled(l) {
                        preemptions += 1;
                    }
                }
                sys.step(task);
                out.steps += 1;
                cur_sleep = next_sleep;
                last = Some(task);
                depth += 1;
                out.max_depth = out.max_depth.max(depth);
                if let Err(msg) = sys.check() {
                    break ScheduleEnd::Violated(format!(
                        "property failed after a step of {}: {msg}",
                        sys.task_name(task)
                    ));
                }
            };
            match end {
                ScheduleEnd::Violated(message) => {
                    let schedule = stack[..depth].iter().map(|n| n.chosen).collect();
                    out.violation = Some(Violation { schedule, message });
                    out.complete = false;
                    break 'schedules;
                }
                ScheduleEnd::Completed | ScheduleEnd::Pruned => {}
            }
            // Backtrack to the deepest decision with an unexplored sibling.
            loop {
                let Some(top) = stack.last_mut() else {
                    break 'schedules;
                };
                if let Some(next) = top.pending.pop() {
                    let fp = std::mem::take(&mut top.chosen_fp);
                    top.explored.push((top.chosen, fp));
                    top.chosen = next;
                    break;
                }
                stack.pop();
            }
        }
        out
    }

    /// Build the decision node for a frontier state, or classify the state
    /// as terminal.
    fn open_node<S: System>(
        &self,
        sys: &S,
        cur_sleep: &[(usize, Footprint)],
        preemptions: usize,
        last: Option<usize>,
    ) -> Frontier {
        let n = sys.n_tasks();
        let enabled: Vec<usize> = (0..n).filter(|&t| !sys.done(t) && sys.enabled(t)).collect();
        if enabled.is_empty() {
            if (0..n).all(|t| sys.done(t)) {
                return Frontier::Terminal(match sys.check_final() {
                    Ok(()) => ScheduleEnd::Completed,
                    Err(msg) => {
                        ScheduleEnd::Violated(format!("final-state property failed: {msg}"))
                    }
                });
            }
            let blocked: Vec<String> = (0..n)
                .filter(|&t| !sys.done(t))
                .map(|t| sys.task_name(t))
                .collect();
            return Frontier::Terminal(ScheduleEnd::Violated(format!(
                "deadlock: blocked tasks [{}]",
                blocked.join(", ")
            )));
        }
        let mut cands: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|t| !cur_sleep.iter().any(|(s, _)| s == t))
            .collect();
        if cands.is_empty() {
            // Every enabled task sleeps: every continuation from here is
            // equivalent to a schedule reached down another branch.
            return Frontier::Terminal(ScheduleEnd::Pruned);
        }
        if let Some(bound) = self.preemption_bound {
            // Out of preemption budget: if the running task could continue,
            // it must (a switch away from a blocked task is free).
            if preemptions >= bound {
                if let Some(l) = last {
                    if !sys.done(l) && sys.enabled(l) && cands.contains(&l) {
                        cands = vec![l];
                    }
                }
            }
        }
        // Explore the non-preempting continuation first so the baseline
        // schedule is the cheapest one.
        if let Some(l) = last {
            if let Some(pos) = cands.iter().position(|&c| c == l) {
                cands.remove(pos);
                cands.insert(0, l);
            }
        }
        let chosen = cands[0];
        let pending = cands[1..].to_vec();
        Frontier::Node(Node {
            chosen,
            chosen_fp: Footprint::new(),
            pending,
            sleep: cur_sleep.to_vec(),
            explored: Vec::new(),
        })
    }
}

enum Frontier {
    Node(Node),
    Terminal(ScheduleEnd),
}

/// Re-execute a serialized schedule against a fresh system, reporting the
/// violation it reproduces (or `Ok` if the schedule runs clean).
///
/// Diverging traces — a decision for a task that is done or blocked at
/// that point — are reported as violations too, so a stale trace fails
/// loudly instead of silently passing.
pub fn replay<S: System>(sys: &mut S, schedule: &[usize]) -> Result<(), Violation> {
    for (i, &task) in schedule.iter().enumerate() {
        if task >= sys.n_tasks() || sys.done(task) || !sys.enabled(task) {
            return Err(Violation {
                schedule: schedule[..=i].to_vec(),
                message: format!("trace diverged: task {task} not runnable at step {i}"),
            });
        }
        sys.step(task);
        if let Err(msg) = sys.check() {
            return Err(Violation {
                schedule: schedule[..=i].to_vec(),
                message: format!(
                    "property failed after a step of {}: {msg}",
                    sys.task_name(task)
                ),
            });
        }
    }
    if (0..sys.n_tasks()).all(|t| sys.done(t)) {
        if let Err(msg) = sys.check_final() {
            return Err(Violation {
                schedule: schedule.to_vec(),
                message: format!("final-state property failed: {msg}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_independence() {
        let a = Footprint::new().write(1).read(2);
        let b = Footprint::new().read(3).write(4);
        assert!(a.independent(&b));
        let c = Footprint::new().read(1);
        assert!(!a.independent(&c), "read of 1 conflicts with write of 1");
        let d = Footprint::new().write(2);
        assert!(!a.independent(&d), "write of 2 conflicts with read of 2");
        let reads_only_a = Footprint::new().read(7);
        let reads_only_b = Footprint::new().read(7);
        assert!(reads_only_a.independent(&reads_only_b), "readers commute");
    }

    /// Two tasks, each takes `len` steps touching only its own object:
    /// fully independent, so sleep sets collapse the space to one schedule.
    struct Independent {
        pc: [usize; 2],
        len: usize,
    }

    impl System for Independent {
        fn n_tasks(&self) -> usize {
            2
        }
        fn task_name(&self, t: usize) -> String {
            format!("t{t}")
        }
        fn done(&self, t: usize) -> bool {
            self.pc[t] >= self.len
        }
        fn enabled(&self, t: usize) -> bool {
            !self.done(t)
        }
        fn peek(&self, t: usize) -> Footprint {
            Footprint::new().write(t as u64 + 1)
        }
        fn step(&mut self, t: usize) {
            self.pc[t] += 1;
        }
        fn check(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn sleep_sets_collapse_independent_tasks() {
        let ex = Explorer::default();
        let run = ex.explore("independent", || Independent { pc: [0, 0], len: 3 });
        assert!(run.verified());
        // Without reduction this space has C(6,3) = 20 interleavings; sleep
        // sets cut each branch to a short pruned stub, leaving one complete
        // schedule plus one stub per decision point (3).
        assert_eq!(run.schedules, 4, "independent steps must be pruned");
        assert_eq!(run.steps, 18);
    }

    /// Same shape but both tasks write one shared object: no pruning
    /// applies and all C(2n, n) interleavings must be visited.
    struct Conflicting {
        pc: [usize; 2],
        len: usize,
    }

    impl System for Conflicting {
        fn n_tasks(&self) -> usize {
            2
        }
        fn task_name(&self, t: usize) -> String {
            format!("t{t}")
        }
        fn done(&self, t: usize) -> bool {
            self.pc[t] >= self.len
        }
        fn enabled(&self, t: usize) -> bool {
            !self.done(t)
        }
        fn peek(&self, _t: usize) -> Footprint {
            Footprint::new().write(1)
        }
        fn step(&mut self, t: usize) {
            self.pc[t] += 1;
        }
        fn check(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn conflicting_tasks_visit_all_interleavings() {
        let ex = Explorer::default();
        let run = ex.explore("conflicting", || Conflicting { pc: [0, 0], len: 3 });
        assert!(run.verified());
        assert_eq!(run.schedules, 20, "C(6,3) interleavings of dependent steps");
    }

    #[test]
    fn preemption_bound_prunes_schedules() {
        let unbounded = Explorer::default().explore("c", || Conflicting { pc: [0, 0], len: 3 });
        let bounded = Explorer {
            preemption_bound: Some(1),
            ..Explorer::default()
        }
        .explore("c", || Conflicting { pc: [0, 0], len: 3 });
        assert!(bounded.schedules < unbounded.schedules);
        assert!(bounded.violation.is_none());
    }

    /// A task blocked forever behind a guard nobody sets.
    struct Stuck;

    impl System for Stuck {
        fn n_tasks(&self) -> usize {
            1
        }
        fn task_name(&self, _t: usize) -> String {
            "waiter".into()
        }
        fn done(&self, _t: usize) -> bool {
            false
        }
        fn enabled(&self, _t: usize) -> bool {
            false
        }
        fn peek(&self, _t: usize) -> Footprint {
            Footprint::new()
        }
        fn step(&mut self, _t: usize) {}
        fn check(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn deadlock_is_a_violation() {
        let run = Explorer::default().explore("stuck", || Stuck);
        let v = run.violation.expect("deadlock must be reported");
        assert!(v.message.contains("deadlock"), "{}", v.message);
        assert!(v.schedule.is_empty());
    }

    #[test]
    fn replay_reproduces_and_divergence_fails() {
        let mut sys = Conflicting { pc: [0, 0], len: 1 };
        assert!(replay(&mut sys, &[0, 1]).is_ok());
        let mut sys = Conflicting { pc: [0, 0], len: 1 };
        let err = replay(&mut sys, &[0, 0]).expect_err("task 0 done after one step");
        assert!(err.message.contains("diverged"), "{}", err.message);
    }
}
