//! Injectable time sources.
//!
//! Everything in `obs` that timestamps (events, span timers) reads time
//! through a [`Clock`], so the discrete-event scheduler simulations can
//! drive metric time with *simulated* seconds while production code uses
//! the monotonic wall clock. Times are `f64` seconds from an arbitrary
//! per-clock origin — the same convention the DES uses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

pub trait Clock: Send + Sync {
    /// Monotonic seconds since this clock's origin.
    fn now(&self) -> f64;
}

/// Monotonic wall clock, origin = construction time.
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// A manually-advanced clock for simulations and tests. Time only moves
/// when `set`/`advance` is called, so timestamps are fully deterministic.
pub struct ManualClock {
    bits: AtomicU64,
}

impl ManualClock {
    pub fn new(t: f64) -> Arc<Self> {
        Arc::new(ManualClock {
            bits: AtomicU64::new(t.to_bits()),
        })
    }

    pub fn set(&self, t: f64) {
        self.bits.store(t.to_bits(), Ordering::Release);
    }

    pub fn advance(&self, dt: f64) {
        // Single-writer in practice; a load+store race would only skip an
        // advance, and sim drivers advance from one thread.
        let t = f64::from_bits(self.bits.load(Ordering::Acquire));
        self.set(t + dt);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_deterministic() {
        let c = ManualClock::new(10.0);
        assert_eq!(c.now(), 10.0);
        c.advance(2.5);
        assert_eq!(c.now(), 12.5);
        c.set(1.0);
        assert_eq!(c.now(), 1.0);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a && a >= 0.0);
    }
}
