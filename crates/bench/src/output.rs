//! CSV + console output helpers for the experiment harness.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Where an experiment's artifacts land.
pub struct ExperimentOutput {
    dir: PathBuf,
}

impl ExperimentOutput {
    /// Create (and ensure) the results directory.
    pub fn new(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// Default location: `results/` under the current directory.
    pub fn default_dir() -> std::io::Result<Self> {
        Self::new("results")
    }

    /// Path for a named artifact.
    pub fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Probe that the results directory actually accepts writes.
    ///
    /// `create_dir_all` succeeding is not enough — the directory may exist
    /// but be read-only, or the path may pass through a regular file. This
    /// writes and removes a probe file so the harness can fail with one
    /// clear error up front instead of panicking mid-experiment.
    pub fn ensure_writable(&self) -> std::io::Result<()> {
        let probe = self.dir.join(".write-probe");
        std::fs::write(&probe, b"probe")?;
        std::fs::remove_file(&probe)
    }

    /// Write rows as CSV with a header line.
    pub fn csv(&self, name: &str, header: &str, rows: &[Vec<f64>]) -> std::io::Result<PathBuf> {
        let path = self.path(name);
        write_csv(&path, header, rows)?;
        Ok(path)
    }
}

/// Write a CSV file with a header and numeric rows.
pub fn write_csv(path: &Path, header: &str, rows: &[Vec<f64>]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{header}")?;
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(f, "{}", line.join(","))?;
    }
    Ok(())
}

/// Render a fixed-width console table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title}");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, |c| c.len()))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("bench_output_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.csv");
        write_csv(&path, "a,b", &[vec![1.0, 2.0], vec![3.5, -4.0]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3.5,-4\n");
        std::fs::remove_file(&path).ok();
    }
}
