//! Tasks and workloads — the Fig. 2 application structure.
//!
//! The workflow is: load a gluonic configuration, solve a large number of
//! propagators (GPU, ~96.5% of time), contract propagators that are already
//! on disk (CPU-only, ~3%), and read/write fields (~0.5%). Contractions
//! depend on the propagators they consume.

use serde::{Deserialize, Serialize};

/// What a task needs and does.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TaskKind {
    /// GPU propagator solve occupying `nodes` whole nodes.
    PropagatorSolve {
        /// Whole nodes required.
        nodes: usize,
    },
    /// CPU-only tensor contraction: occupies one node's CPUs, leaves its
    /// GPUs free — the co-scheduling opportunity `mpi_jm` exploits.
    Contraction,
    /// I/O step (configuration read / propagator write).
    Io,
}

/// One schedulable task.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Stable identifier (index into the workload).
    pub id: usize,
    /// Resource shape.
    pub kind: TaskKind,
    /// Nominal duration on ideal nodes, seconds.
    pub base_seconds: f64,
    /// Useful floating-point work in the task (for sustained-rate reports).
    pub flops: f64,
    /// Tasks that must complete first.
    pub deps: Vec<usize>,
}

/// A bag of tasks with dependencies.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Workload {
    /// All tasks, `id` = index.
    pub tasks: Vec<TaskSpec>,
}

impl Workload {
    /// Uniform batch of independent GPU solves (the Fig. 5/6 workload shape:
    /// "groups of 4 nodes" each running propagator solves).
    pub fn uniform_solves(
        n_tasks: usize,
        nodes_per_task: usize,
        base_seconds: f64,
        flops: f64,
    ) -> Self {
        let tasks = (0..n_tasks)
            .map(|id| TaskSpec {
                id,
                kind: TaskKind::PropagatorSolve {
                    nodes: nodes_per_task,
                },
                base_seconds,
                flops,
                deps: Vec::new(),
            })
            .collect();
        Self { tasks }
    }

    /// Heterogeneous batch with a duration spread — the regime where naive
    /// bundling visibly idles (fast tasks wait for the slowest in the wave).
    pub fn heterogeneous_solves(
        n_tasks: usize,
        nodes_per_task: usize,
        base_seconds: f64,
        spread: f64,
        flops: f64,
        seed: u64,
    ) -> Self {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let tasks = (0..n_tasks)
            .map(|id| TaskSpec {
                id,
                kind: TaskKind::PropagatorSolve {
                    nodes: nodes_per_task,
                },
                base_seconds: base_seconds * (1.0 + spread * (rng.gen::<f64>() - 0.5) * 2.0),
                flops,
                deps: Vec::new(),
            })
            .collect();
        Self { tasks }
    }

    /// The Fig. 2 workflow for one ensemble: per configuration, an I/O load,
    /// `props_per_config` propagator solves (each followed by a write), and
    /// one contraction per propagator depending on it. Time fractions follow
    /// §VI: propagators 96.5%, contractions 3%, I/O 0.5%.
    pub fn figure2_workflow(
        n_configs: usize,
        props_per_config: usize,
        nodes_per_solve: usize,
        solve_seconds: f64,
        solve_flops: f64,
    ) -> Self {
        let mut tasks = Vec::new();
        // §VI fractions, per propagator solve.
        let contraction_seconds = solve_seconds * (3.0 / 96.5);
        let io_seconds = solve_seconds * (0.5 / 96.5) / 2.0;
        for _cfg in 0..n_configs {
            let load_id = tasks.len();
            tasks.push(TaskSpec {
                id: load_id,
                kind: TaskKind::Io,
                base_seconds: io_seconds,
                flops: 0.0,
                deps: Vec::new(),
            });
            for _p in 0..props_per_config {
                let solve_id = tasks.len();
                tasks.push(TaskSpec {
                    id: solve_id,
                    kind: TaskKind::PropagatorSolve {
                        nodes: nodes_per_solve,
                    },
                    base_seconds: solve_seconds,
                    flops: solve_flops,
                    deps: vec![load_id],
                });
                let write_id = tasks.len();
                tasks.push(TaskSpec {
                    id: write_id,
                    kind: TaskKind::Io,
                    base_seconds: io_seconds,
                    flops: 0.0,
                    deps: vec![solve_id],
                });
                let contract_id = tasks.len();
                tasks.push(TaskSpec {
                    id: contract_id,
                    kind: TaskKind::Contraction,
                    base_seconds: contraction_seconds,
                    flops: solve_flops * 0.03,
                    deps: vec![write_id],
                });
            }
        }
        Self { tasks }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Sum of task flops.
    pub fn total_flops(&self) -> f64 {
        self.tasks.iter().map(|t| t.flops).sum()
    }

    /// Serial GPU-seconds of all propagator tasks (ideal-node work content).
    pub fn total_gpu_node_seconds(&self) -> f64 {
        self.tasks
            .iter()
            .filter_map(|t| match t.kind {
                TaskKind::PropagatorSolve { nodes } => Some(t.base_seconds * nodes as f64),
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_solves_have_no_deps() {
        let w = Workload::uniform_solves(10, 4, 100.0, 1e15);
        assert_eq!(w.len(), 10);
        assert!(w.tasks.iter().all(|t| t.deps.is_empty()));
        assert_eq!(w.total_flops(), 1e16);
    }

    #[test]
    fn heterogeneous_spread_is_bounded() {
        let w = Workload::heterogeneous_solves(100, 4, 100.0, 0.25, 1e15, 3);
        for t in &w.tasks {
            assert!((75.0..=125.0).contains(&t.base_seconds));
        }
        // Not all equal.
        let first = w.tasks[0].base_seconds;
        assert!(w.tasks.iter().any(|t| (t.base_seconds - first).abs() > 1.0));
    }

    #[test]
    fn figure2_workflow_structure() {
        let w = Workload::figure2_workflow(2, 3, 4, 965.0, 1e15);
        // Per config: 1 load + 3×(solve + write + contraction).
        assert_eq!(w.len(), 2 * (1 + 3 * 3));
        // Dependencies: solves depend on the config load; contractions on
        // the propagator write.
        for t in &w.tasks {
            match t.kind {
                TaskKind::PropagatorSolve { .. } => assert_eq!(t.deps.len(), 1),
                TaskKind::Contraction => assert_eq!(t.deps.len(), 1),
                TaskKind::Io => assert!(t.deps.len() <= 1),
            }
        }
    }

    #[test]
    fn figure2_time_budget_matches_section6() {
        let w = Workload::figure2_workflow(1, 10, 4, 965.0, 1e15);
        let mut solve = 0.0;
        let mut contract = 0.0;
        let mut io = 0.0;
        for t in &w.tasks {
            match t.kind {
                TaskKind::PropagatorSolve { .. } => solve += t.base_seconds,
                TaskKind::Contraction => contract += t.base_seconds,
                TaskKind::Io => io += t.base_seconds,
            }
        }
        let total = solve + contract + io;
        assert!((solve / total - 0.965).abs() < 0.01, "{}", solve / total);
        assert!((contract / total - 0.03).abs() < 0.01);
        assert!((io / total - 0.005).abs() < 0.005);
    }
}
