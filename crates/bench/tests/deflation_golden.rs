//! Golden test for `repro deflation --quick`: driven by a [`ManualClock`],
//! the experiment's CSV is a pure function of the committed solver code, so
//! the whole quick run — Lanczos subspace, sequential/block/deflated
//! iteration counts, link-traffic accounting — is pinned byte for byte.
//!
//! Regenerate after an intentional numerical change with
//! `UPDATE_GOLDENS=1 cargo test -p bench --test deflation_golden`.

use bench::experiments::deflation::{run_deflation_with_clock, DeflationOpts};
use bench::output::ExperimentOutput;
use obs::ManualClock;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join("deflation_quick.csv")
}

#[test]
fn quick_deflation_csv_matches_golden() {
    let dir = std::env::temp_dir().join("repro_deflation_golden");
    let out = ExperimentOutput::new(&dir).expect("temp results dir");
    // Frozen time: the seconds and eff_gib_per_s columns are exactly zero,
    // every other column is deterministic arithmetic.
    let clock = ManualClock::new(0.0);
    run_deflation_with_clock(&out, &DeflationOpts { quick: true }, &*clock)
        .expect("quick deflation run");
    let got = std::fs::read_to_string(out.path("deflation.csv")).expect("csv written");
    std::fs::remove_file(out.path("deflation.csv")).ok();
    std::fs::remove_file(out.path("deflation.md")).ok();

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().expect("goldens dir")).expect("mkdir goldens");
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDENS=1 to create it",
            path.display()
        )
    });
    if got != want {
        let diff = got
            .lines()
            .zip(want.lines())
            .enumerate()
            .find(|(_, (g, w))| g != w);
        match diff {
            Some((i, (g, w))) => panic!(
                "deflation_quick.csv drifted at line {}:\n  got:    {g}\n  golden: {w}\n\
                 (UPDATE_GOLDENS=1 regenerates after an intentional change)",
                i + 1
            ),
            None => panic!(
                "deflation_quick.csv drifted in length: got {} lines, golden {} lines",
                got.lines().count(),
                want.lines().count()
            ),
        }
    }
}
