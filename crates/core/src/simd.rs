//! Explicitly vectorized complex-arithmetic layer.
//!
//! The stencil kernels bottom out in complex multiply–adds over 3-vectors
//! and 3×3 matrices. This module provides fixed-width *lane* types that
//! perform the same arithmetic on [`LANES`] independent lattice sites at
//! once: a [`CVec`] is one complex number per lane, stored as separate
//! re/im arrays (component-innermost SoA) so the compiler can map every
//! operation onto vector registers.
//!
//! Determinism contract: every lane operation applies, per lane, **exactly
//! the scalar operation sequence** of the corresponding [`Complex`] method
//! (same operations, same association, no FMA contraction). IEEE 754
//! arithmetic is elementwise, so a lane-vectorized kernel produces
//! bit-identical results to the scalar kernel on each site — this is what
//! lets the SoA dslash variants share goldens with the AoS path.
//!
//! The portable path is plain per-lane loops, written so rustc's
//! autovectorizer handles them (at the baseline ISA, 128-bit on `x86_64`).
//! The `arch-simd` cargo feature additionally compiles the hot kernel
//! bodies a second time with `#[target_feature(enable = "avx2")]` and
//! dispatches to that twin after `std::arch::is_x86_feature_detected!`
//! confirms support — one lane group then fills a single 256-bit register.
//! Because the recompiled code still consists of the same elementwise IEEE
//! add/sub/mul operations (rustc never contracts mul+add to FMA), the
//! feature gate cannot change a single bit of any result.

use crate::complex::Complex;
use crate::real::Real;
use crate::spinor::Spinor;
use crate::su3::{ColorVec, Su3};
use std::ops::{Add, Mul, Neg, Sub};

/// Whether the AVX2-compiled kernel twins should run: requires the
/// `arch-simd` feature, an `x86_64` target, and runtime CPU support.
#[inline]
pub fn avx2_detected() -> bool {
    #[cfg(all(feature = "arch-simd", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "arch-simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Number of lattice sites processed per lane group.
///
/// Four lanes fill one 256-bit vector at `f64`-pair granularity and keep a
/// spinor block (24 × [`LANES`] reals) within a handful of cache lines.
pub const LANES: usize = 4;

/// Marker for reals with lane primitives, blanket-implemented for every
/// [`Real`]. The primitives themselves (`l4_add` …) live on `Real` so the
/// generic operators can reach them without changing their bounds; this
/// name survives for kernel signatures that read better as "lane-capable
/// real".
pub trait LaneReal: Real {}

impl<R: Real> LaneReal for R {}

/// [`LANES`] complex numbers in SoA form (separate re/im lane arrays).
///
/// Each method mirrors the corresponding [`Complex`] method's exact scalar
/// operation sequence, per lane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CVec<R> {
    /// Real parts, one per lane.
    pub re: [R; LANES],
    /// Imaginary parts, one per lane.
    pub im: [R; LANES],
}

impl<R: LaneReal> CVec<R> {
    /// All-zero lanes.
    #[inline(always)]
    pub fn zero() -> Self {
        Self {
            re: [R::ZERO; LANES],
            im: [R::ZERO; LANES],
        }
    }

    /// The same complex value in every lane.
    #[inline(always)]
    pub fn splat(c: Complex<R>) -> Self {
        Self {
            re: [c.re; LANES],
            im: [c.im; LANES],
        }
    }

    /// Gather one complex value per lane.
    #[inline(always)]
    pub fn gather(f: impl FnMut(usize) -> Complex<R>) -> Self {
        let mut f = f;
        let mut out = Self::zero();
        for l in 0..LANES {
            let c = f(l);
            out.re[l] = c.re;
            out.im[l] = c.im;
        }
        out
    }

    /// Extract lane `l`.
    #[inline(always)]
    pub fn lane(&self, l: usize) -> Complex<R> {
        Complex::new(self.re[l], self.im[l])
    }

    /// Mirrors `Complex::conj`.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: R::l4_neg(self.im),
        }
    }

    /// Mirrors `Complex::scale` with a lane-uniform real factor.
    #[inline(always)]
    pub fn scale(self, s: R) -> Self {
        let sv = [s; LANES];
        Self {
            re: R::l4_mul(self.re, sv),
            im: R::l4_mul(self.im, sv),
        }
    }

    /// Mirrors `Complex::add_mul`: `self + a·b` with the scalar method's
    /// association `(self + a.re·b.re) − a.im·b.im` on the real part and
    /// `(self + a.re·b.im) + a.im·b.re` on the imaginary part.
    #[inline(always)]
    pub fn add_mul(self, a: Self, b: Self) -> Self {
        Self {
            re: R::l4_sub(
                R::l4_add(self.re, R::l4_mul(a.re, b.re)),
                R::l4_mul(a.im, b.im),
            ),
            im: R::l4_add(
                R::l4_add(self.im, R::l4_mul(a.re, b.im)),
                R::l4_mul(a.im, b.re),
            ),
        }
    }
}

impl<R: LaneReal> Add for CVec<R> {
    type Output = Self;
    /// Mirrors `Complex + Complex`: `re + re, im + im`.
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: R::l4_add(self.re, rhs.re),
            im: R::l4_add(self.im, rhs.im),
        }
    }
}

impl<R: LaneReal> Sub for CVec<R> {
    type Output = Self;
    /// Mirrors `Complex - Complex`.
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: R::l4_sub(self.re, rhs.re),
            im: R::l4_sub(self.im, rhs.im),
        }
    }
}

impl<R: LaneReal> Neg for CVec<R> {
    type Output = Self;
    /// Mirrors `-Complex`.
    #[inline(always)]
    fn neg(self) -> Self {
        Self {
            re: R::l4_neg(self.re),
            im: R::l4_neg(self.im),
        }
    }
}

impl<R: LaneReal> Mul for CVec<R> {
    type Output = Self;
    /// Mirrors `Complex * Complex`:
    /// `(re·re − im·im, re·im + im·re)` with identical association.
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: R::l4_sub(R::l4_mul(self.re, rhs.re), R::l4_mul(self.im, rhs.im)),
            im: R::l4_add(R::l4_mul(self.re, rhs.im), R::l4_mul(self.im, rhs.re)),
        }
    }
}

/// [`LANES`] color 3-vectors in SoA form. Methods mirror
/// [`crate::su3::ColorVec`].
#[derive(Clone, Copy, Debug)]
pub struct CvColor<R> {
    /// Color components, each [`LANES`] wide.
    pub c: [CVec<R>; 3],
}

impl<R: LaneReal> CvColor<R> {
    /// All-zero lanes.
    #[inline(always)]
    pub fn zero() -> Self {
        Self {
            c: [CVec::zero(); 3],
        }
    }

    /// Mirrors `ColorVec::scale_c` (`c[i] * s`, a full complex multiply).
    #[inline(always)]
    pub fn scale_c(self, s: CVec<R>) -> Self {
        Self {
            c: [self.c[0] * s, self.c[1] * s, self.c[2] * s],
        }
    }

    /// Mirrors `ColorVec::scale` (real factor).
    #[inline(always)]
    pub fn scale(self, s: R) -> Self {
        Self {
            c: [self.c[0].scale(s), self.c[1].scale(s), self.c[2].scale(s)],
        }
    }
}

impl<R: LaneReal> Add for CvColor<R> {
    type Output = Self;
    /// Mirrors `ColorVec + ColorVec`.
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self {
            c: [
                self.c[0] + rhs.c[0],
                self.c[1] + rhs.c[1],
                self.c[2] + rhs.c[2],
            ],
        }
    }
}

impl<R: LaneReal> Sub for CvColor<R> {
    type Output = Self;
    /// Mirrors `ColorVec - ColorVec`.
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self {
            c: [
                self.c[0] - rhs.c[0],
                self.c[1] - rhs.c[1],
                self.c[2] - rhs.c[2],
            ],
        }
    }
}

impl<R: LaneReal> Neg for CvColor<R> {
    type Output = Self;
    /// Mirrors `-ColorVec`.
    #[inline(always)]
    fn neg(self) -> Self {
        Self {
            c: [-self.c[0], -self.c[1], -self.c[2]],
        }
    }
}

/// [`LANES`] SU(3) matrices in SoA form. Products mirror [`crate::su3::Su3`].
#[derive(Clone, Copy, Debug)]
pub struct CvSu3<R> {
    /// Row-major entries, each [`LANES`] wide.
    pub m: [[CVec<R>; 3]; 3],
}

impl<R: LaneReal> CvSu3<R> {
    /// All-zero lanes.
    #[inline(always)]
    pub fn zero() -> Self {
        Self {
            m: [[CVec::zero(); 3]; 3],
        }
    }

    /// Mirrors `Su3::mul_vec`: per row, fold `acc = acc.add_mul(u, v_j)`
    /// from zero in column order.
    #[inline(always)]
    pub fn mul_vec(&self, v: &CvColor<R>) -> CvColor<R> {
        let mut out = CvColor::zero();
        for (i, row) in self.m.iter().enumerate() {
            let mut acc = CVec::zero();
            for (j, &u) in row.iter().enumerate() {
                acc = acc.add_mul(u, v.c[j]);
            }
            out.c[i] = acc;
        }
        out
    }

    /// Mirrors `Su3::dagger_mul_vec`: `acc += conj(m[j][i]) * v_j` — note
    /// the scalar path multiplies first and then adds (`acc + (u*v)`), which
    /// associates differently from `add_mul`; this mirrors that exactly.
    #[inline(always)]
    pub fn dagger_mul_vec(&self, v: &CvColor<R>) -> CvColor<R> {
        let mut out = CvColor::zero();
        for i in 0..3 {
            let mut acc = CVec::zero();
            for j in 0..3 {
                acc = acc + self.m[j][i].conj() * v.c[j];
            }
            out.c[i] = acc;
        }
        out
    }

    /// The same SU(3) matrix in every lane — the link-broadcast used when
    /// one gauge link feeds [`LANES`] fifth-dimension slices at once.
    #[inline(always)]
    pub fn splat(u: &Su3<R>) -> Self {
        Self {
            m: std::array::from_fn(|i| std::array::from_fn(|j| CVec::splat(u.m[i][j]))),
        }
    }
}

/// [`LANES`] Wilson spinors in SoA form. Operations mirror
/// [`crate::spinor::Spinor`].
#[derive(Clone, Copy, Debug)]
pub struct CvSpinor<R> {
    /// Spin components, each a lane-wide color vector.
    pub s: [CvColor<R>; 4],
}

impl<R: LaneReal> CvSpinor<R> {
    /// All-zero lanes.
    #[inline(always)]
    pub fn zero() -> Self {
        Self {
            s: [CvColor::zero(); 4],
        }
    }

    /// Mirrors `Spinor::scale`.
    #[inline(always)]
    pub fn scale(self, f: R) -> Self {
        Self {
            s: [
                self.s[0].scale(f),
                self.s[1].scale(f),
                self.s[2].scale(f),
                self.s[3].scale(f),
            ],
        }
    }

    /// Gather one spinor per lane (AoS → lane-SoA transpose).
    #[inline(always)]
    pub fn gather(mut f: impl FnMut(usize) -> Spinor<R>) -> Self {
        let ps: [Spinor<R>; LANES] = std::array::from_fn(&mut f);
        Self {
            s: std::array::from_fn(|sp| CvColor {
                c: std::array::from_fn(|c| CVec {
                    re: std::array::from_fn(|l| ps[l].s[sp].c[c].re),
                    im: std::array::from_fn(|l| ps[l].s[sp].c[c].im),
                }),
            }),
        }
    }

    /// Extract lane `l` as a scalar spinor.
    #[inline(always)]
    pub fn lane(&self, l: usize) -> Spinor<R> {
        Spinor {
            s: std::array::from_fn(|sp| ColorVec {
                c: std::array::from_fn(|c| self.s[sp].c[c].lane(l)),
            }),
        }
    }
}

impl<R: LaneReal> Sub for CvSpinor<R> {
    type Output = Self;
    /// Mirrors `Spinor - Spinor`.
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self {
            s: [
                self.s[0] - rhs.s[0],
                self.s[1] - rhs.s[1],
                self.s[2] - rhs.s[2],
                self.s[3] - rhs.s[3],
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::su3::{ColorVec, Su3};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rnd_c(rng: &mut SmallRng) -> Complex<f64> {
        Complex::from_f64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5)
    }

    fn rnd_cvec(rng: &mut SmallRng) -> (CVec<f64>, [Complex<f64>; LANES]) {
        let scalars: [Complex<f64>; LANES] = std::array::from_fn(|_| rnd_c(rng));
        (CVec::gather(|l| scalars[l]), scalars)
    }

    #[test]
    fn lane_ops_are_bit_identical_to_scalar_complex() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..50 {
            let (a, sa) = rnd_cvec(&mut rng);
            let (b, sb) = rnd_cvec(&mut rng);
            let (acc, sacc) = rnd_cvec(&mut rng);
            let s = rng.gen::<f64>() - 0.5;
            for l in 0..LANES {
                assert_eq!((a + b).lane(l), sa[l] + sb[l]);
                assert_eq!((a - b).lane(l), sa[l] - sb[l]);
                assert_eq!((a * b).lane(l), sa[l] * sb[l]);
                assert_eq!((-a).lane(l), -sa[l]);
                assert_eq!(a.conj().lane(l), sa[l].conj());
                assert_eq!(a.scale(s).lane(l), sa[l].scale(s));
                assert_eq!(acc.add_mul(a, b).lane(l), sacc[l].add_mul(sa[l], sb[l]));
            }
        }
    }

    #[test]
    fn lane_su3_products_are_bit_identical_to_scalar() {
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..20 {
            let us: [Su3<f64>; LANES] = std::array::from_fn(|_| Su3::random(&mut rng));
            let vs: [ColorVec<f64>; LANES] = std::array::from_fn(|_| ColorVec {
                c: [rnd_c(&mut rng), rnd_c(&mut rng), rnd_c(&mut rng)],
            });
            let u = CvSu3 {
                m: std::array::from_fn(|i| {
                    std::array::from_fn(|j| CVec::gather(|l| us[l].m[i][j]))
                }),
            };
            let v = CvColor {
                c: std::array::from_fn(|i| CVec::gather(|l| vs[l].c[i])),
            };
            let fwd = u.mul_vec(&v);
            let bwd = u.dagger_mul_vec(&v);
            for l in 0..LANES {
                let sf = us[l].mul_vec(&vs[l]);
                let sb = us[l].dagger_mul_vec(&vs[l]);
                for i in 0..3 {
                    assert_eq!(fwd.c[i].lane(l), sf.c[i], "mul_vec lane {l} color {i}");
                    assert_eq!(bwd.c[i].lane(l), sb.c[i], "dagger lane {l} color {i}");
                }
            }
        }
    }
}
