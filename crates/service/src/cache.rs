//! Content-addressed result cache: LRU in memory, CRC-gated spill to the
//! container format on disk, and in-flight deduplication so two requests
//! racing the same cold key trigger exactly one solve.
//!
//! The concurrency protocol of [`ResultCache::get_or_compute`] (miss →
//! claim in-flight → compute unlocked → publish → wake waiters; waiters
//! loop on the condvar and re-check) is modeled and exhaustively schedule-
//! checked in `checkmate::protocols::cache`; the implementation here keeps
//! the same state machine shape deliberately.

use crate::backend::SolveResult;
use crate::error::ServiceError;
use crate::request::CacheKey;
use lqcd_core::field::FermionField;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// How a request was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from memory.
    Hit,
    /// Served from a spilled entry on disk (CRC verified, key verified).
    SpillHit,
    /// Arrived while another caller was computing the same key and waited
    /// for that solve instead of duplicating it.
    Coalesced,
    /// Cold miss: this caller ran the solve.
    Computed,
}

/// Monotone counters describing cache behaviour so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub spill_hits: u64,
    pub coalesced: u64,
    pub misses: u64,
    pub evictions: u64,
    pub spills: u64,
    /// Spill files rejected on load (CRC failure, shape mismatch, or
    /// metadata that does not match the requested key bit-for-bit). Each
    /// rejection degrades to a recompute, never to wrong data.
    pub spill_rejects: u64,
}

enum Slot {
    /// Value present; `stamp` indexes into the recency map.
    Ready { stamp: u64, value: Arc<SolveResult> },
    /// A caller is computing this key; waiters sleep on the condvar.
    InFlight,
}

struct Inner {
    map: HashMap<CacheKey, Slot>,
    /// recency stamp → key, oldest first; evictions pop the first entry.
    recency: BTreeMap<u64, CacheKey>,
    next_stamp: u64,
    ready: usize,
    stats: CacheStats,
}

/// The cache. Clone-free; share it by reference (or `Arc`) across the
/// pool.
pub struct ResultCache {
    inner: Mutex<Inner>,
    cv: Condvar,
    capacity: usize,
    spill_dir: Option<PathBuf>,
}

fn relock<T>(r: Result<T, PoisonError<T>>) -> T {
    // A poisoned lock means a *test* thread panicked mid-critical-section;
    // the state itself is a plain map and stays structurally sound.
    r.unwrap_or_else(PoisonError::into_inner)
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries in memory.
    /// Evicted entries spill to `spill_dir` when one is given.
    pub fn new(capacity: usize, spill_dir: Option<PathBuf>) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                recency: BTreeMap::new(),
                next_stamp: 0,
                ready: 0,
                stats: CacheStats::default(),
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            spill_dir,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        relock(self.inner.lock()).stats
    }

    /// Ready entries currently held in memory.
    pub fn len(&self) -> usize {
        relock(self.inner.lock()).ready
    }

    /// Whether no ready entries are held in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memory lookup + spill probe, bumping recency on a hit. Does not
    /// wait on in-flight computations (the gateway tracks those itself
    /// against its virtual clock). The `bool` is true when the value was
    /// revived from disk.
    pub fn lookup(&self, key: &CacheKey) -> Option<(Arc<SolveResult>, bool)> {
        let mut inner = relock(self.inner.lock());
        if let Some(v) = touch_ready(&mut inner, key) {
            inner.stats.hits += 1;
            return Some((v, false));
        }
        if matches!(inner.map.get(key), Some(Slot::InFlight)) {
            return None;
        }
        let revived = self.try_revive(&mut inner, key)?;
        inner.stats.spill_hits += 1;
        Some((revived, true))
    }

    /// Publish a computed value (gateway path — the solve already ran).
    pub fn insert(&self, key: CacheKey, value: Arc<SolveResult>) {
        let mut inner = relock(self.inner.lock());
        self.insert_ready(&mut inner, key, value);
        self.cv.notify_all();
    }

    /// Get `key`, running `compute` exactly once per cold key even under
    /// concurrent callers: the first caller claims the key and computes
    /// with the lock released; latecomers sleep on the condvar and receive
    /// the published `Arc`. If the computing caller fails, its claim is
    /// withdrawn and exactly one waiter retries.
    pub fn get_or_compute<F>(
        &self,
        key: CacheKey,
        compute: F,
    ) -> Result<(Arc<SolveResult>, CacheOutcome), ServiceError>
    where
        F: FnOnce() -> Result<SolveResult, ServiceError>,
    {
        let mut waited = false;
        let mut inner = relock(self.inner.lock());
        loop {
            if let Some(v) = touch_ready(&mut inner, &key) {
                if waited {
                    inner.stats.coalesced += 1;
                    return Ok((v, CacheOutcome::Coalesced));
                }
                inner.stats.hits += 1;
                return Ok((v, CacheOutcome::Hit));
            }
            if matches!(inner.map.get(&key), Some(Slot::InFlight)) {
                waited = true;
                inner = relock(self.cv.wait(inner));
                continue;
            }
            if let Some(revived) = self.try_revive(&mut inner, &key) {
                inner.stats.spill_hits += 1;
                return Ok((revived, CacheOutcome::SpillHit));
            }
            break;
        }
        // Claim the key and solve with the lock released.
        inner.map.insert(key, Slot::InFlight);
        drop(inner);
        let computed = compute();
        let mut inner = relock(self.inner.lock());
        // Withdraw the claim whatever happened; on success it is replaced
        // by the published value below.
        inner.map.remove(&key);
        match computed {
            Ok(v) => {
                let v = Arc::new(v);
                self.insert_ready(&mut inner, key, v.clone());
                inner.stats.misses += 1;
                self.cv.notify_all();
                Ok((v, CacheOutcome::Computed))
            }
            Err(e) => {
                // Wake everyone: one of the waiters will find the key
                // absent and become the new computer.
                self.cv.notify_all();
                Err(e)
            }
        }
    }

    fn insert_ready(&self, inner: &mut Inner, key: CacheKey, value: Arc<SolveResult>) {
        if let Some(Slot::Ready { stamp, .. }) = inner.map.get(&key) {
            let stamp = *stamp;
            inner.recency.remove(&stamp);
            inner.ready -= 1;
        }
        while inner.ready >= self.capacity {
            let Some((&oldest, &victim)) = inner.recency.iter().next() else {
                break;
            };
            inner.recency.remove(&oldest);
            if let Some(Slot::Ready { value, .. }) = inner.map.remove(&victim) {
                inner.ready -= 1;
                inner.stats.evictions += 1;
                if self.spill(&victim, &value).is_some() {
                    inner.stats.spills += 1;
                }
            }
        }
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        inner.recency.insert(stamp, key);
        inner.map.insert(key, Slot::Ready { stamp, value });
        inner.ready += 1;
    }

    fn spill_path(&self, key: &CacheKey) -> Option<PathBuf> {
        self.spill_dir
            .as_ref()
            .map(|d| d.join(format!("{}.lqio", key.file_stem())))
    }

    /// Best-effort spill of an evicted entry. IO errors degrade the entry
    /// to recompute-on-next-miss rather than failing the insert.
    fn spill(&self, key: &CacheKey, value: &SolveResult) -> Option<()> {
        let path = self.spill_path(key)?;
        let field = FermionField {
            data: value.solution.clone(),
        };
        let meta = spill_metadata(key, value);
        lattice_io::write_fermion(&path, &field, meta).ok()
    }

    /// Try to revive `key` from its spill file. The container layer gates
    /// the payload on CRC-32C; on top of that every key field recorded in
    /// the metadata must match the requested key exactly, so a corrupted
    /// or foreign file can only ever degrade to a miss.
    fn try_revive(&self, inner: &mut Inner, key: &CacheKey) -> Option<Arc<SolveResult>> {
        let path = self.spill_path(key)?;
        if !path.exists() {
            return None;
        }
        match load_spill(&path, key) {
            Some(v) => {
                let v = Arc::new(v);
                self.insert_ready(inner, *key, v.clone());
                Some(v)
            }
            None => {
                inner.stats.spill_rejects += 1;
                None
            }
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        relock(self.inner.lock())
    }

    /// Keys of the ready entries, oldest first (tests and diagnostics).
    pub fn resident_keys(&self) -> Vec<CacheKey> {
        let inner = self.lock();
        inner.recency.values().copied().collect()
    }
}

fn touch_ready(inner: &mut Inner, key: &CacheKey) -> Option<Arc<SolveResult>> {
    let Some(Slot::Ready { stamp, value }) = inner.map.get(key) else {
        return None;
    };
    let (old, value) = (*stamp, value.clone());
    inner.recency.remove(&old);
    let stamp = inner.next_stamp;
    inner.next_stamp += 1;
    inner.recency.insert(stamp, *key);
    inner.map.insert(
        *key,
        Slot::Ready {
            stamp,
            value: value.clone(),
        },
    );
    Some(value)
}

fn spill_metadata(key: &CacheKey, value: &SolveResult) -> BTreeMap<String, String> {
    let mut m = BTreeMap::new();
    m.insert(
        "service.config_hash".into(),
        format!("{:016x}", key.config_hash),
    );
    m.insert(
        "service.source_seed".into(),
        format!("{:016x}", key.source_seed),
    );
    m.insert(
        "service.mass_bits".into(),
        format!("{:016x}", key.mass_bits),
    );
    m.insert("service.precision".into(), key.precision.to_string());
    m.insert("service.policy".into(), key.policy.to_string());
    m.insert("service.iterations".into(), value.iterations.to_string());
    m.insert(
        "service.residual_bits".into(),
        format!("{:016x}", value.final_rel_residual.to_bits()),
    );
    m.insert("service.converged".into(), value.converged.to_string());
    m.insert("service.recovered".into(), value.recovered.to_string());
    m
}

fn load_spill(path: &Path, key: &CacheKey) -> Option<SolveResult> {
    let (field, meta) = lattice_io::read_fermion_with_meta(path).ok()?;
    let get = |k: &str| meta.get(k).map(String::as_str);
    if get("service.config_hash") != Some(format!("{:016x}", key.config_hash).as_str())
        || get("service.source_seed") != Some(format!("{:016x}", key.source_seed).as_str())
        || get("service.mass_bits") != Some(format!("{:016x}", key.mass_bits).as_str())
        || get("service.precision") != Some(key.precision.to_string().as_str())
        || get("service.policy") != Some(key.policy.to_string().as_str())
    {
        return None;
    }
    let iterations: usize = get("service.iterations")?.parse().ok()?;
    let residual_bits = u64::from_str_radix(get("service.residual_bits")?, 16).ok()?;
    let converged: bool = get("service.converged")?.parse().ok()?;
    let recovered: bool = get("service.recovered")?.parse().ok()?;
    Some(SolveResult {
        solution: field.data,
        iterations,
        final_rel_residual: f64::from_bits(residual_bits),
        converged,
        recovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_core::spinor::Spinor;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn key(seed: u64) -> CacheKey {
        CacheKey {
            config_hash: 0xabcd,
            source_seed: seed,
            mass_bits: 0.2f64.to_bits(),
            precision: 1,
            policy: 0,
        }
    }

    fn result(tag: f64) -> SolveResult {
        let mut sp = Spinor::zero();
        sp.s[0].c[0] = lqcd_core::complex::Complex::new(tag, -tag);
        SolveResult {
            solution: vec![sp; 4],
            iterations: 7,
            final_rel_residual: 1e-6,
            converged: true,
            recovered: false,
        }
    }

    #[test]
    fn lru_evicts_oldest_and_hits_refresh_recency() {
        let cache = ResultCache::new(2, None);
        cache.insert(key(1), Arc::new(result(1.0)));
        cache.insert(key(2), Arc::new(result(2.0)));
        // Touch key 1 so key 2 is now the LRU victim.
        assert!(cache.lookup(&key(1)).is_some());
        cache.insert(key(3), Arc::new(result(3.0)));
        assert_eq!(cache.resident_keys(), vec![key(1), key(3)]);
        assert!(cache.lookup(&key(2)).is_none());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn racing_misses_run_exactly_one_compute() {
        let cache = ResultCache::new(8, None);
        let computes = AtomicUsize::new(0);
        let outcomes: Vec<CacheOutcome> = {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(4)
                .build()
                .expect("pool");
            pool.install(|| {
                use rayon::prelude::*;
                (0..8usize)
                    .into_par_iter()
                    .map(|_| {
                        let (v, outcome) = cache
                            .get_or_compute(key(9), || {
                                computes.fetch_add(1, Ordering::SeqCst);
                                Ok(result(9.0))
                            })
                            .expect("get_or_compute");
                        assert_eq!(v.solution, result(9.0).solution);
                        outcome
                    })
                    .collect()
            })
        };
        assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one solve");
        assert_eq!(
            outcomes
                .iter()
                .filter(|o| **o == CacheOutcome::Computed)
                .count(),
            1
        );
    }

    #[test]
    fn failed_compute_releases_the_claim() {
        let cache = ResultCache::new(8, None);
        let r = cache.get_or_compute(key(5), || Err(ServiceError::Config("injected".into())));
        assert!(r.is_err());
        // The key is free again: a retry computes.
        let (_, outcome) = cache
            .get_or_compute(key(5), || Ok(result(5.0)))
            .expect("retry");
        assert_eq!(outcome, CacheOutcome::Computed);
    }

    #[test]
    fn spill_round_trips_and_rejects_foreign_metadata() {
        let dir = std::env::temp_dir().join(format!("svc-spill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("spill dir");
        let cache = ResultCache::new(1, Some(dir.clone()));
        cache.insert(key(1), Arc::new(result(1.0)));
        cache.insert(key(2), Arc::new(result(2.0))); // evicts + spills key 1
        assert_eq!(cache.stats().spills, 1);
        let (revived, from_disk) = cache.lookup(&key(1)).expect("revive from spill");
        assert!(from_disk);
        assert_eq!(revived.solution, result(1.0).solution);
        assert_eq!(revived.iterations, 7);
        assert_eq!(cache.stats().spill_hits, 1);

        // A file whose metadata names a different key must be rejected
        // even when it sits at the probed path.
        let k_a = key(100);
        let k_b = key(101);
        let pa = dir.join(format!("{}.lqio", k_a.file_stem()));
        let field = FermionField {
            data: result(7.0).solution,
        };
        lattice_io::write_fermion(&pa, &field, spill_metadata(&k_b, &result(7.0)))
            .expect("write foreign spill");
        assert!(
            cache.lookup(&k_a).is_none(),
            "foreign metadata must not serve"
        );
        assert_eq!(cache.stats().spill_rejects, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
