//! CRC-protected checkpoint storage over the LQIO container format.
//!
//! Solver checkpoint-restart (the fault-tolerant CG in `lqcd-core`) needs a
//! durable place to park recurrence snapshots so a rank loss mid-solve does
//! not cost the whole Krylov history. This module stores an opaque `f64`
//! payload — the solver serializes its own state, keeping this crate free of
//! any dependency on field types — inside the same chunked, CRC-32C-framed
//! container used for propagators, so corruption of any byte of a snapshot
//! is detected on read rather than silently resumed from.
//!
//! [`CheckpointStore`] adds the durability policy on top: snapshots rotate
//! between two slot files, so the previous snapshot is never overwritten
//! while the new one is being written. If the newest slot fails its CRC on
//! restore (torn write, bit rot, deliberate fault injection), the store
//! falls back to the surviving older slot instead of failing the restart.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::container::{read_container, write_container, Container};
use crate::IoError;

/// Metadata key under which the checkpoint sequence number is stored.
const SEQ_KEY: &str = "checkpoint_seq";

/// Write one checkpoint payload to `path`.
///
/// `label` names the dataset in the container header; `seq` is a caller
/// counter (monotone per store) recorded in the metadata and returned by
/// [`read_checkpoint`], letting a restore pick the newer of two candidates.
pub fn write_checkpoint(path: &Path, label: &str, seq: u64, data: &[f64]) -> Result<(), IoError> {
    let mut metadata = BTreeMap::new();
    metadata.insert(SEQ_KEY.to_string(), seq.to_string());
    let container = Container::from_f64(label, vec![data.len()], data, metadata);
    write_container(path, &container)
}

/// Read one checkpoint payload from `path`, returning `(seq, data)`.
///
/// Any CRC-32C mismatch in the container surfaces as
/// [`IoError::ChecksumMismatch`]; a missing or malformed sequence number is
/// a [`IoError::Format`] error.
pub fn read_checkpoint(path: &Path) -> Result<(u64, Vec<f64>), IoError> {
    let container = read_container(path)?;
    let seq = container
        .header
        .metadata
        .get(SEQ_KEY)
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| IoError::Format(format!("missing or bad {SEQ_KEY} metadata")))?;
    Ok((seq, container.to_f64()?))
}

/// Two-slot rotating checkpoint store.
///
/// Writes alternate between `<stem>.a.lqio` and `<stem>.b.lqio`; the slot
/// holding the older snapshot is always the one overwritten, so the most
/// recent *intact* snapshot survives a failure at any point during a write.
/// [`CheckpointStore::load_latest`] returns the newest slot whose CRC
/// verifies, falling back to the other slot before giving up.
#[derive(Debug)]
pub struct CheckpointStore {
    slots: [PathBuf; 2],
    label: String,
    /// Sequence number the next `save` will stamp.
    next_seq: u64,
    /// Slot index the next `save` will write.
    next_slot: usize,
}

impl CheckpointStore {
    /// Create a store writing `<stem>.a.lqio` / `<stem>.b.lqio`.
    ///
    /// The store starts fresh (sequence 0, slot A first); it does not scan
    /// for existing slot files — use [`CheckpointStore::load_latest`] to
    /// recover state from a previous run before saving over it.
    pub fn new(stem: &Path, label: &str) -> Self {
        let slot = |suffix: &str| {
            let mut name = stem.file_name().map_or_else(
                || "checkpoint".to_string(),
                |n| n.to_string_lossy().into_owned(),
            );
            name.push_str(suffix);
            stem.with_file_name(name)
        };
        Self {
            slots: [slot(".a.lqio"), slot(".b.lqio")],
            label: label.to_string(),
            next_seq: 0,
            next_slot: 0,
        }
    }

    /// The two slot paths (for tests and cleanup).
    pub fn slot_paths(&self) -> [&Path; 2] {
        [&self.slots[0], &self.slots[1]]
    }

    /// Persist one snapshot, rotating slots.
    pub fn save(&mut self, data: &[f64]) -> Result<(), IoError> {
        write_checkpoint(
            &self.slots[self.next_slot],
            &self.label,
            self.next_seq,
            data,
        )?;
        self.next_seq += 1;
        self.next_slot ^= 1;
        Ok(())
    }

    /// Load the newest snapshot that passes its CRC.
    ///
    /// Returns `(seq, data)` of the winning slot. If both slots are
    /// unreadable, returns the error from the *newer* candidate (the one a
    /// caller most wants diagnosed).
    pub fn load_latest(&self) -> Result<(u64, Vec<f64>), IoError> {
        let mut best: Option<(u64, Vec<f64>)> = None;
        let mut first_err: Option<IoError> = None;
        for path in &self.slots {
            match read_checkpoint(path) {
                Ok((seq, data)) => {
                    if best.as_ref().is_none_or(|(s, _)| seq > *s) {
                        best = Some((seq, data));
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match best {
            Some(hit) => Ok(hit),
            None => Err(first_err
                .unwrap_or_else(|| IoError::Format("checkpoint store has no slots".into()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lqio-ckpt-{tag}-{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn checkpoint_roundtrip_preserves_bits() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("cg.lqio");
        let data: Vec<f64> = (0..513).map(|i| (i as f64).sin() * 1e3).collect();
        write_checkpoint(&path, "cg-state", 7, &data).unwrap();
        let (seq, back) = read_checkpoint(&path).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(back.len(), data.len());
        for (a, b) in back.iter().zip(&data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_checkpoint_is_rejected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("cg.lqio");
        let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
        write_checkpoint(&path, "cg-state", 0, &data).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() - 17; // inside the payload chunk
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        match read_checkpoint(&path) {
            Err(IoError::ChecksumMismatch { .. }) => {}
            other => panic!("corruption must fail the CRC, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_rotates_and_falls_back_on_corruption() {
        let dir = tmpdir("rotate");
        let mut store = CheckpointStore::new(&dir.join("cg"), "cg-state");
        store.save(&[1.0, 2.0]).unwrap(); // seq 0 → slot a
        store.save(&[3.0, 4.0]).unwrap(); // seq 1 → slot b
        store.save(&[5.0, 6.0]).unwrap(); // seq 2 → slot a (rotated)

        let (seq, data) = store.load_latest().unwrap();
        assert_eq!((seq, data.as_slice()), (2, &[5.0, 6.0][..]));

        // Corrupt the newest slot: the store must restore the previous one.
        let newest = store.slot_paths()[0].to_path_buf();
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        let (seq, data) = store.load_latest().unwrap();
        assert_eq!((seq, data.as_slice()), (1, &[3.0, 4.0][..]));

        // Corrupt both: the restore fails loudly instead of resuming garbage.
        let older = store.slot_paths()[1].to_path_buf();
        let mut bytes = fs::read(&older).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&older, &bytes).unwrap();
        assert!(store.load_latest().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_reports_missing_slots() {
        let dir = tmpdir("empty");
        let store = CheckpointStore::new(&dir.join("cg"), "cg-state");
        assert!(store.load_latest().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
