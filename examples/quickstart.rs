//! Quickstart: solve the Möbius domain-wall Dirac equation on a small
//! quenched lattice and measure the pion correlator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lqcd::core::prelude::*;

fn main() {
    // A 4³×8 lattice with a quenched ensemble at β = 6.0.
    let lat = Lattice::new([4, 4, 4, 8]);
    let mut ensemble =
        QuenchedEnsemble::cold_start(&lat, HeatbathParams { beta: 6.0, n_or: 2 }, 42);
    let configs = ensemble.generate(8, 1, 2);
    let gauge = &configs[0];
    println!(
        "generated config: plaquette = {:.4}",
        average_plaquette(&lat, gauge)
    );

    // Red–black preconditioned, double/single mixed-precision Möbius solve —
    // the paper's production solver path.
    let params = MobiusParams::standard(4, 0.3);
    let solver = PropagatorSolver::new(&lat, gauge, SolverKind::MobiusMixed { params });
    let (prop, stats) = solver.point_propagator(0);
    let iters: usize = stats.iter().map(|s| s.iterations).sum();
    let flops: f64 = stats.iter().map(|s| s.flops).sum();
    println!("12 propagator columns solved: {iters} CG iterations, {flops:.2e} flops");
    println!(
        "worst column residual: {:.2e}",
        stats
            .iter()
            .map(|s| s.final_rel_residual)
            .fold(0.0, f64::max)
    );

    // The pion two-point function and its effective mass.
    let pion = pion_correlator(&lat, &prop);
    println!("\n t   C_pi(t)        m_eff");
    for t in 0..lat.nt() {
        let meff = if t + 1 < lat.nt() && pion[t + 1] > 0.0 {
            format!("{:+.4}", (pion[t] / pion[t + 1]).ln())
        } else {
            "      ".into()
        };
        println!("{t:2}   {:<12.5e} {meff}", pion[t]);
    }
}
