//! Quark propagators — the computation that consumes ~97% of the paper's
//! machine time.
//!
//! A propagator is the Dirac-operator inverse against 12 point-source columns
//! (4 spins × 3 colors). For the Möbius discretization the 4D quark field is
//! built from the walls of the 5th dimension:
//!
//! - source injection: `B_s(y) = δ_{s,L5−1} P₋ b(y) + δ_{s,0} P₊ b(y)`
//! - sink extraction: `q(x) = P₋ ψ_0(x) + P₊ ψ_{L5−1}(x)`
//!
//! Every solve goes through the red–black preconditioned system (prepare →
//! CGNE (optionally mixed-precision) → reconstruct), exactly the production
//! path of the paper.

use crate::blas;
use crate::complex::C64;
use crate::dirac::{LinearOp, MobiusParams, NormalOp, PrecMobius, WilsonDirac};
use crate::field::{FermionField, GaugeField};
use crate::lattice::Lattice;
use crate::solver::{bicgstab, cgne, mixed_cg, CgParams, MixedParams, SolveStats};
use crate::spinor::Spinor;

/// Which action / solver pipeline produces the propagator.
#[derive(Clone, Copy, Debug)]
pub enum SolverKind {
    /// 4D Wilson quarks, direct BiCGStab solve (fast path for examples).
    WilsonBicgstab {
        /// Bare Wilson quark mass.
        mass: f64,
    },
    /// 4D Wilson quarks through the red-black preconditioned CGNE path
    /// (same prepare/solve/reconstruct structure as the Möbius pipeline).
    WilsonPrecCgne {
        /// Bare Wilson quark mass.
        mass: f64,
    },
    /// Möbius domain-wall quarks, red–black preconditioned CGNE in double.
    MobiusCgne {
        /// Operator parameters.
        params: MobiusParams,
    },
    /// Möbius domain-wall quarks, double/single mixed-precision
    /// reliable-update CGNE over the red–black system.
    MobiusMixed {
        /// Operator parameters.
        params: MobiusParams,
    },
}

/// A point source: 1 in the given (spin, color) slot at `site`.
pub fn point_source(
    lattice: &Lattice,
    site: usize,
    spin: usize,
    color: usize,
) -> FermionField<f64> {
    let mut b = FermionField::zeros(lattice.volume());
    b.data[site] = Spinor::unit(spin, color);
    b
}

/// A wall source: 1 in the given (spin, color) slot on every spatial site of
/// time slice `t0` — a zero-momentum projection at the source.
pub fn wall_source(lattice: &Lattice, t0: usize, spin: usize, color: usize) -> FermionField<f64> {
    let mut b = FermionField::zeros(lattice.volume());
    for x in 0..lattice.volume() {
        if lattice.time_of(x) == t0 {
            b.data[x] = Spinor::unit(spin, color);
        }
    }
    b
}

/// A Z₂×Z₂ noise source on time slice `t0` (all spins and colors populated
/// with ±1±i), used for stochastic estimation; reproducible from `seed`.
pub fn z2_noise_source(lattice: &Lattice, t0: usize, seed: u64) -> FermionField<f64> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut b = FermionField::zeros(lattice.volume());
    for x in 0..lattice.volume() {
        if lattice.time_of(x) != t0 {
            continue;
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ (x as u64).wrapping_mul(0x2545F4914F6CDD1D));
        for s in 0..4 {
            for c in 0..3 {
                let re = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                let im = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                b.data[x].s[s].c[c] = C64::new(re, im);
            }
        }
    }
    b
}

/// All 12 columns of a propagator from one source site, plus solve metadata.
#[derive(Clone)]
pub struct Propagator {
    /// `columns[spin_src * 3 + color_src]` = 4D solution field.
    pub columns: Vec<FermionField<f64>>,
    /// Source site (lexicographic).
    pub source_site: usize,
    /// Source time slice.
    pub source_time: usize,
}

impl Propagator {
    /// Matrix element `S(x)_{(s_snk, c_snk), (s_src, c_src)}`.
    #[inline]
    pub fn entry(&self, x: usize, s_snk: usize, c_snk: usize, s_src: usize, c_src: usize) -> C64 {
        self.columns[s_src * 3 + c_src].data[x].s[s_snk].c[c_snk]
    }

    /// The full 12×12 site matrix, indexed `[s_snk*3+c_snk][s_src*3+c_src]`.
    pub fn site_matrix(&self, x: usize) -> [[C64; 12]; 12] {
        let mut m = [[C64::zero(); 12]; 12];
        for sc_src in 0..12 {
            let sp = &self.columns[sc_src].data[x];
            for s in 0..4 {
                for c in 0..3 {
                    m[s * 3 + c][sc_src] = sp.s[s].c[c];
                }
            }
        }
        m
    }
}

/// Propagator factory bound to a gauge configuration.
pub struct PropagatorSolver<'a> {
    lattice: &'a Lattice,
    gauge: &'a GaugeField<f64>,
    /// Single-precision copy of the gauge field for the mixed solver.
    gauge32: GaugeField<f32>,
    kind: SolverKind,
    /// Stopping criteria.
    pub solve_params: CgParams,
}

impl<'a> PropagatorSolver<'a> {
    /// Bind to a configuration.
    pub fn new(lattice: &'a Lattice, gauge: &'a GaugeField<f64>, kind: SolverKind) -> Self {
        Self {
            lattice,
            gauge,
            gauge32: gauge.cast(),
            kind,
            solve_params: CgParams {
                tol: 1e-8,
                max_iter: 20_000,
            },
        }
    }

    /// The lattice.
    pub fn lattice(&self) -> &Lattice {
        self.lattice
    }

    /// Solve `D q = b` for one 4D source column, returning the 4D solution.
    pub fn solve(&self, source: &FermionField<f64>) -> (FermionField<f64>, SolveStats) {
        assert_eq!(source.len(), self.lattice.volume());
        match self.kind {
            SolverKind::WilsonBicgstab { mass } => {
                let d = WilsonDirac::new(self.lattice, self.gauge, mass, true);
                let mut x = vec![Spinor::zero(); self.lattice.volume()];
                let stats = bicgstab(&d, &mut x, &source.data, self.solve_params);
                (FermionField { data: x }, stats)
            }
            SolverKind::WilsonPrecCgne { mass } => {
                let prec = crate::dirac::PrecWilson::new(self.lattice, self.gauge, mass, true);
                let (b_e, b_o) = prec.split(&source.data);
                let rhs = prec.prepare_source(&b_e, &b_o);
                let mut x_o = vec![Spinor::zero(); prec.vec_len()];
                let stats = cgne(&prec, &mut x_o, &rhs, self.solve_params);
                let x_e = prec.reconstruct_even(&b_e, &x_o);
                (
                    FermionField {
                        data: prec.merge(&x_e, &x_o),
                    },
                    stats,
                )
            }
            SolverKind::MobiusCgne { params } => self.solve_mobius(source, params, false),
            SolverKind::MobiusMixed { params } => self.solve_mobius(source, params, true),
        }
    }

    /// Red–black preconditioned Möbius solve with wall injection/extraction.
    fn solve_mobius(
        &self,
        source: &FermionField<f64>,
        params: MobiusParams,
        mixed: bool,
    ) -> (FermionField<f64>, SolveStats) {
        let v = self.lattice.volume();
        let l5 = params.l5;

        // Wall injection of the 4D source.
        let mut b5 = vec![Spinor::zero(); l5 * v];
        for (x, s) in source.data.iter().enumerate() {
            b5[(l5 - 1) * v + x] = s.chiral_project(false);
            b5[x] += s.chiral_project(true);
        }

        let prec = PrecMobius::new(self.lattice, self.gauge, params);
        let (b_e, b_o) = prec.split(&b5);
        let rhs = prec.prepare_source(&b_e, &b_o);
        let mut x_o = vec![Spinor::zero(); prec.vec_len()];

        let stats = if mixed {
            let prec32 = PrecMobius::new(self.lattice, &self.gauge32, params);
            let n64 = NormalOp::new(&prec);
            let n32 = NormalOp::new(&prec32);
            // CGNE source: apply M̂† to rhs, then run mixed CG on M̂†M̂.
            let mut ne_rhs = vec![Spinor::zero(); prec.vec_len()];
            use crate::dirac::DiracOp;
            prec.apply_dagger(&mut ne_rhs, &rhs);
            let mut stats = mixed_cg(
                &n64,
                &n32,
                &mut x_o,
                &ne_rhs,
                MixedParams {
                    outer: self.solve_params,
                    ..MixedParams::default()
                },
            );
            // Report the residual of the first-order system.
            let mut mx = vec![Spinor::zero(); prec.vec_len()];
            prec.apply(&mut mx, &x_o);
            let diff = blas::sub(&rhs, &mx);
            let b2 = blas::norm_sqr(&rhs);
            if b2 > 0.0 {
                stats.final_rel_residual = (blas::norm_sqr(&diff) / b2).sqrt();
            }
            stats
        } else {
            cgne(&prec, &mut x_o, &rhs, self.solve_params)
        };

        let x_e = prec.reconstruct_even(&b_e, &x_o);
        let full = prec.merge(&x_e, &x_o);

        // Wall extraction of the 4D quark field.
        let mut q = FermionField::zeros(v);
        for x in 0..v {
            q.data[x] = full[x].chiral_project(false) + full[(l5 - 1) * v + x].chiral_project(true);
        }
        (q, stats)
    }

    /// All 12 columns from a point source at `site`.
    pub fn point_propagator(&self, site: usize) -> (Propagator, Vec<SolveStats>) {
        let mut columns = Vec::with_capacity(12);
        let mut stats = Vec::with_capacity(12);
        for spin in 0..4 {
            for color in 0..3 {
                let b = point_source(self.lattice, site, spin, color);
                let (q, s) = self.solve(&b);
                assert!(
                    s.converged,
                    "propagator column (spin {spin}, color {color}) did not converge: {s:?}"
                );
                columns.push(q);
                stats.push(s);
            }
        }
        (
            Propagator {
                columns,
                source_site: site,
                source_time: self.lattice.time_of(site),
            },
            stats,
        )
    }

    /// Propagator whose columns are `D⁻¹ (Γ_ins S_col)` — the sequential
    /// ("Feynman–Hellmann") inversion through a current insertion summed over
    /// all spacetime. `insertion` is a dense spin matrix (e.g. `γ3 γ5`).
    pub fn sequential_propagator(
        &self,
        base: &Propagator,
        insertion: &crate::gamma::SpinMatrix<f64>,
    ) -> (Propagator, Vec<SolveStats>) {
        let mut columns = Vec::with_capacity(12);
        let mut stats = Vec::with_capacity(12);
        for col in &base.columns {
            let src = FermionField {
                data: col
                    .data
                    .iter()
                    .map(|s| s.apply_spin_matrix(insertion))
                    .collect(),
            };
            let (q, s) = self.solve(&src);
            assert!(s.converged, "sequential solve failed: {s:?}");
            columns.push(q);
            stats.push(s);
        }
        (
            Propagator {
                columns,
                source_site: base.source_site,
                source_time: base.source_time,
            },
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::gamma5_dense;

    fn small_setup() -> (Lattice, GaugeField<f64>) {
        let lat = Lattice::new([4, 4, 4, 8]);
        let mut ens = crate::gauge::QuenchedEnsemble::cold_start(
            &lat,
            crate::gauge::HeatbathParams { beta: 6.0, n_or: 1 },
            3,
        );
        for _ in 0..5 {
            ens.update();
        }
        (lat.clone(), ens.current().clone())
    }

    #[test]
    fn wilson_point_propagator_satisfies_dirac_equation() {
        let (lat, gauge) = small_setup();
        let solver = PropagatorSolver::new(&lat, &gauge, SolverKind::WilsonBicgstab { mass: 0.3 });
        let b = point_source(&lat, 0, 2, 1);
        let (q, stats) = solver.solve(&b);
        assert!(stats.converged);
        // D q = b.
        let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
        let mut dq = vec![Spinor::zero(); lat.volume()];
        d.apply(&mut dq, &q.data);
        let diff = blas::sub(&dq, &b.data);
        assert!(blas::norm_sqr(&diff) < 1e-14);
    }

    #[test]
    fn wall_source_populates_one_time_slice() {
        let lat = Lattice::new([4, 4, 4, 8]);
        let b = wall_source(&lat, 3, 2, 1);
        let expect = lat.spatial_volume() as f64;
        assert_eq!(blas::norm_sqr(&b.data), expect);
        for x in 0..lat.volume() {
            let occupied = b.data[x].norm_sqr() > 0.0;
            assert_eq!(occupied, lat.time_of(x) == 3);
        }
    }

    #[test]
    fn z2_source_has_unit_magnitude_entries() {
        let lat = Lattice::new([4, 4, 4, 8]);
        let b = z2_noise_source(&lat, 0, 9);
        let b2 = z2_noise_source(&lat, 0, 9);
        assert_eq!(b.data, b2.data, "seeded reproducibility");
        for x in 0..lat.volume() {
            if lat.time_of(x) == 0 {
                for s in 0..4 {
                    for c in 0..3 {
                        let v = b.data[x].s[s].c[c];
                        assert_eq!(v.re.abs(), 1.0);
                        assert_eq!(v.im.abs(), 1.0);
                    }
                }
            }
        }
    }

    #[test]
    fn prec_wilson_path_matches_direct_solve() {
        let (lat, gauge) = small_setup();
        let direct = PropagatorSolver::new(&lat, &gauge, SolverKind::WilsonBicgstab { mass: 0.4 });
        let prec = PropagatorSolver::new(&lat, &gauge, SolverKind::WilsonPrecCgne { mass: 0.4 });
        let b = point_source(&lat, 7, 1, 0);
        let (q1, s1) = direct.solve(&b);
        let (q2, s2) = prec.solve(&b);
        assert!(s1.converged && s2.converged);
        let diff = blas::sub(&q1.data, &q2.data);
        let rel = blas::norm_sqr(&diff) / blas::norm_sqr(&q1.data);
        assert!(rel < 1e-12, "paths disagree: {rel}");
    }

    #[test]
    fn mobius_solve_produces_nonzero_quark_field() {
        let (lat, gauge) = small_setup();
        let params = MobiusParams::standard(4, 0.1);
        let solver = PropagatorSolver::new(&lat, &gauge, SolverKind::MobiusCgne { params });
        let b = point_source(&lat, 5, 0, 0);
        let (q, stats) = solver.solve(&b);
        assert!(stats.converged);
        assert!(blas::norm_sqr(&q.data) > 0.0);
    }

    #[test]
    fn mixed_and_double_mobius_solves_agree() {
        let (lat, gauge) = small_setup();
        let params = MobiusParams::standard(4, 0.2);
        let double = PropagatorSolver::new(&lat, &gauge, SolverKind::MobiusCgne { params });
        let mixed = PropagatorSolver::new(&lat, &gauge, SolverKind::MobiusMixed { params });
        let b = point_source(&lat, 3, 1, 2);
        let (q1, s1) = double.solve(&b);
        let (q2, s2) = mixed.solve(&b);
        assert!(s1.converged && s2.converged);
        assert!(s2.reliable_updates > 0, "mixed path must reliable-update");
        let diff = blas::sub(&q1.data, &q2.data);
        let rel = blas::norm_sqr(&diff) / blas::norm_sqr(&q1.data);
        assert!(rel < 1e-12, "precision paths disagree: {rel}");
    }

    #[test]
    fn propagator_gamma5_hermiticity_at_the_source() {
        // γ5 S(x,0) γ5 = S†(0,x): check the source-site block is hermitian
        // under γ5-conjugation (a nontrivial consistency of all 12 columns).
        let (lat, gauge) = small_setup();
        let solver = PropagatorSolver::new(&lat, &gauge, SolverKind::WilsonBicgstab { mass: 0.4 });
        let (prop, _) = solver.point_propagator(0);
        let g5 = gamma5_dense();
        let m = prop.site_matrix(0);
        // Build γ5 M γ5 and compare with M†.
        for sc1 in 0..12 {
            for sc2 in 0..12 {
                let (s1, s2) = (sc1 / 3, sc2 / 3);
                let phase = g5.m[s1][s1] * g5.m[s2][s2];
                let lhs = m[sc1][sc2] * phase.to_c64();
                let rhs = m[sc2][sc1].conj();
                assert!(
                    (lhs - rhs).abs() < 1e-6,
                    "γ5-hermiticity of the source block fails at ({sc1},{sc2})"
                );
            }
        }
    }

    #[test]
    fn sequential_propagator_solves_through_insertion() {
        let (lat, gauge) = small_setup();
        let solver = PropagatorSolver::new(&lat, &gauge, SolverKind::WilsonBicgstab { mass: 0.4 });
        let (prop, _) = solver.point_propagator(0);
        let ins = crate::gamma::gamma3_gamma5().cast::<f64>();
        let (seq, _) = solver.sequential_propagator(&prop, &ins);
        // D S_seq = Γ S: verify for one column.
        let d = WilsonDirac::new(&lat, &gauge, 0.4, true);
        let mut dq = vec![Spinor::zero(); lat.volume()];
        d.apply(&mut dq, &seq.columns[0].data);
        let expect: Vec<Spinor<f64>> = prop.columns[0]
            .data
            .iter()
            .map(|s| s.apply_spin_matrix(&ins))
            .collect();
        let diff = blas::sub(&dq, &expect);
        let rel = blas::norm_sqr(&diff) / blas::norm_sqr(&expect);
        assert!(rel < 1e-12);
    }
}
