//! Krylov solvers for the Dirac linear systems.
//!
//! The paper's production solver is conjugate gradient on the normal
//! equations ([`cgne`]) over the red–black preconditioned Möbius operator,
//! run double/half mixed-precision with reliable updates ([`mixed`]). A
//! BiCGStab variant covers non-Hermitian 4D Wilson solves; multi-shift CG
//! solves a family of masses in one Krylov sequence; shift-invert Lanczos
//! plus deflated CG accelerate ill-conditioned light-quark systems.

mod bicgstab;
mod eig;
mod cg;
mod mixed;
mod multishift;

pub use bicgstab::bicgstab;
pub use eig::{deflated_cg, lanczos_lowest, EigenPair};
pub use cg::{cg, cgne, CgParams};
pub use mixed::{mixed_cg, MixedParams};
pub use multishift::multishift_cg;

/// Outcome of a linear solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveStats {
    /// Matrix applications (of the solver's main operator) performed.
    pub iterations: usize,
    /// `‖b − A x‖ / ‖b‖` at exit, measured in the working precision of the
    /// final true-residual evaluation.
    pub final_rel_residual: f64,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
    /// Reliable updates performed (mixed-precision solver only).
    pub reliable_updates: usize,
    /// Total floating-point operations attributed to the solve.
    pub flops: f64,
}

impl SolveStats {
    pub(crate) fn new() -> Self {
        Self {
            iterations: 0,
            final_rel_residual: f64::INFINITY,
            converged: false,
            reliable_updates: 0,
            flops: 0.0,
        }
    }
}
