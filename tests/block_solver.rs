//! Bit-exactness suite for the batched multi-RHS solver path.
//!
//! [`cg_block`] promises that column `j` of a block solve — solution bits,
//! final residual, per-RHS iteration count, flop ledger — is *identical* to
//! running [`cg`] on that column alone, at every block size, in both
//! precisions, at any thread-pool width, and over the sharded halo-exchange
//! operator under any communication policy. These tests pin that contract;
//! a single flipped bit anywhere in the blocked dslash, the column BLAS, or
//! the batched halo frames fails them.

use lqcd::core::comms::{policy_from_index, ShardedNormal};
use lqcd::core::prelude::*;

fn at_width<R: Send>(w: usize, op: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(w)
        .build()
        .expect("width handle")
        .install(op)
}

/// Gaussian sources with per-column seeds so every block size slices the
/// same underlying set.
fn sources(n: usize, nrhs: usize, seed0: u64) -> Vec<Vec<Spinor<f64>>> {
    (0..nrhs)
        .map(|j| FermionField::<f64>::gaussian(n, seed0 + j as u64).data)
        .collect()
}

/// Run `cg_block` at block size `nrhs` over the leading columns and compare
/// every column against its sequential solve, bit for bit.
fn assert_block_matches_sequential<R: Real>(
    normal: &NormalOp<'_, R, impl BlockDiracOp<R>>,
    cols: &[Vec<Spinor<R>>],
    params: CgParams,
) {
    let bb = BlockSpinor::from_columns(cols);
    let mut xb = BlockSpinor::zeros(cols[0].len(), cols.len());
    let mut rb = ReliableBlock::new(normal);
    let block_stats = cg_block(&mut rb, &mut xb, &bb, params);

    for (j, c) in cols.iter().enumerate() {
        let mut xs = vec![Spinor::zero(); c.len()];
        let seq = cg(normal, &mut xs, c, params);
        assert!(seq.converged, "sequential baseline must converge");
        assert_eq!(
            block_stats[j],
            seq,
            "nrhs={}: stats of column {j} diverge",
            cols.len()
        );
        assert_eq!(
            block_stats[j].final_rel_residual.to_bits(),
            seq.final_rel_residual.to_bits(),
            "nrhs={}: residual of column {j} is not bit-identical",
            cols.len()
        );
        assert_eq!(
            xb.col(j),
            xs,
            "nrhs={}: solution of column {j} is not bit-identical",
            cols.len()
        );
    }
}

#[test]
fn every_block_size_matches_sequential_cg_f64() {
    let lat = Lattice::new([4, 4, 4, 8]);
    let gauge = GaugeField::<f64>::hot(&lat, 31);
    let d = WilsonDirac::new(&lat, &gauge, 0.25, true);
    let normal = NormalOp::new(&d);
    let cols = sources(lat.volume(), 12, 300);
    for nrhs in [1usize, 2, 4, 12] {
        assert_block_matches_sequential(&normal, &cols[..nrhs], CgParams::default());
    }
}

#[test]
fn every_block_size_matches_sequential_cg_f32() {
    let lat = Lattice::new([4, 4, 2, 4]);
    let gauge = GaugeField::<f64>::hot(&lat, 33).cast::<f32>();
    let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
    let normal = NormalOp::new(&d);
    let cols: Vec<Vec<Spinor<f32>>> = (0..4)
        .map(|j| FermionField::<f32>::gaussian(lat.volume(), 310 + j as u64).data)
        .collect();
    // Single precision stalls near its epsilon; stop well above it.
    let params = CgParams {
        tol: 1e-4,
        max_iter: 5_000,
    };
    for nrhs in [1usize, 2, 4] {
        let mut xb = BlockSpinor::zeros(lat.volume(), nrhs);
        let sub = BlockSpinor::from_columns(&cols[..nrhs]);
        let mut rb = ReliableBlock::new(&normal);
        let block_stats = cg_block(&mut rb, &mut xb, &sub, params);
        for j in 0..nrhs {
            let mut xs = vec![Spinor::zero(); lat.volume()];
            let seq = cg(&normal, &mut xs, &cols[j], params);
            assert!(seq.converged);
            assert_eq!(block_stats[j], seq, "f32 nrhs={nrhs}: stats of column {j}");
            assert_eq!(xb.col(j), xs, "f32 nrhs={nrhs}: solution of column {j}");
        }
    }
}

#[test]
fn thread_width_does_not_change_block_bits() {
    let lat = Lattice::new([4, 4, 2, 4]);
    let gauge = GaugeField::<f64>::hot(&lat, 35);
    let cols = sources(lat.volume(), 4, 350);
    let bb = BlockSpinor::from_columns(&cols);

    let solve = |w: usize| {
        at_width(w, || {
            let d = WilsonDirac::new(&lat, &gauge, 0.2, true);
            let normal = NormalOp::new(&d);
            let mut xb = BlockSpinor::zeros(lat.volume(), cols.len());
            let mut rb = ReliableBlock::new(&normal);
            let stats = cg_block(&mut rb, &mut xb, &bb, CgParams::default());
            (stats, xb)
        })
    };
    let (stats1, x1) = solve(1);
    let (stats4, x4) = solve(4);
    assert_eq!(
        stats1, stats4,
        "per-RHS stats must not depend on pool width"
    );
    assert_eq!(
        x1.data(),
        x4.data(),
        "block solutions must not depend on pool width"
    );
    assert!(stats1.iter().all(|s| s.converged));
}

/// The batched halo exchange carries all columns in one frame per face; the
/// solve over the sharded Möbius normal operator must be bit-identical
/// across communication policies *and* to the single-domain sequential
/// baseline, at both tested pool widths.
#[test]
fn comm_policies_and_widths_agree_with_single_domain_sequential() {
    let lat = Lattice::new([4, 4, 4, 8]);
    let gauge = GaugeField::<f64>::hot(&lat, 37);
    let params = MobiusParams::standard(4, 0.1);
    let nrhs = 3;
    let n = params.l5 * lat.volume();
    let cols: Vec<Vec<Spinor<f64>>> = (0..nrhs)
        .map(|j| FermionField::<f64>::gaussian(n, 370 + j as u64).data)
        .collect();
    let bb = BlockSpinor::from_columns(&cols);
    let cg_params = CgParams {
        tol: 1e-8,
        max_iter: 2_000,
    };

    // Sequential single-domain baseline.
    let d = MobiusDirac::new(&lat, &gauge, params);
    let normal = NormalOp::new(&d);
    let mut baseline_stats = Vec::new();
    let mut baseline_x = Vec::new();
    for c in &cols {
        let mut x = vec![Spinor::zero(); n];
        let seq = cg(&normal, &mut x, c, cg_params);
        assert!(seq.converged, "Möbius baseline must converge");
        baseline_stats.push(seq);
        baseline_x.push(x);
    }

    for policy_idx in [0usize, 3] {
        for width in [1usize, 4] {
            let (stats, xb) = at_width(width, || {
                let mut op = ShardedNormal::new(
                    &lat,
                    &gauge,
                    params,
                    [2, 2, 1, 1],
                    4,
                    policy_from_index(policy_idx),
                )
                .expect("grid divides the lattice");
                let mut xb = BlockSpinor::zeros(n, nrhs);
                let stats = cg_block(&mut op, &mut xb, &bb, cg_params);
                (stats, xb)
            });
            for j in 0..nrhs {
                assert_eq!(
                    stats[j], baseline_stats[j],
                    "policy {policy_idx} width {width}: stats of column {j}"
                );
                assert_eq!(
                    xb.col(j),
                    baseline_x[j],
                    "policy {policy_idx} width {width}: solution of column {j}"
                );
            }
        }
    }
}
