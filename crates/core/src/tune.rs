//! Autotuning of the stencil kernels.
//!
//! QUDA tunes each kernel's CUDA launch geometry at first encounter and
//! caches the optimum. The analogous knob for our rayon kernels is the
//! parallel grain size (sites per task). This module adapts any of the
//! Dirac operators to the [`autotune::Tunable`] interface so a shared
//! [`autotune::Tuner`] can sweep and cache per (kernel, volume, precision).

use crate::dirac::{BlockLinearOp, LinearOp};
use crate::field::FermionField;
use crate::lattice::volume_string;
use crate::real::Real;
use crate::spinor::Spinor;
use autotune::{ParamSpace, TimingHarness, Tunable, TuneKey, TuneParam, Tuner};

/// Trait for operators whose parallel grain can be set post-construction.
pub trait GrainTunable<R: Real>: LinearOp<R> {
    /// Set the parallel chunk size used by the stencil loops.
    fn set_grain(&mut self, grain: usize);
    /// Stable kernel name for the tune cache.
    fn kernel_name(&self) -> &'static str;
    /// Volume component of the tune key (includes L5 for 5D operators).
    fn volume_key(&self) -> String;
}

macro_rules! impl_grain_tunable_4d {
    ($ty:ident, $name:literal) => {
        impl<'a, R: Real, G: crate::field::GaugeLinks<R>> GrainTunable<R>
            for crate::dirac::$ty<'a, R, G>
        {
            fn set_grain(&mut self, grain: usize) {
                self.grain = grain;
            }
            fn kernel_name(&self) -> &'static str {
                $name
            }
            fn volume_key(&self) -> String {
                volume_string(self.lattice().dims())
            }
        }
    };
}

macro_rules! impl_grain_tunable_5d {
    ($ty:ident, $name:literal) => {
        impl<'a, R: Real, G: crate::field::GaugeLinks<R>> GrainTunable<R>
            for crate::dirac::$ty<'a, R, G>
        {
            fn set_grain(&mut self, grain: usize) {
                self.grain = grain;
            }
            fn kernel_name(&self) -> &'static str {
                $name
            }
            fn volume_key(&self) -> String {
                format!(
                    "{}x{}",
                    volume_string(self.lattice().dims()),
                    self.params().l5
                )
            }
        }
    };
}

impl_grain_tunable_4d!(WilsonDirac, "dslash_wilson");
impl_grain_tunable_4d!(PrecWilson, "dslash_wilson_prec");
impl_grain_tunable_5d!(MobiusDirac, "dslash_mobius");
impl_grain_tunable_5d!(PrecMobius, "dslash_mobius_prec");

/// Adapter that times one operator application at a candidate grain size.
struct OpTunable<'t, R: Real, Op: GrainTunable<R>> {
    op: &'t mut Op,
    input: Vec<Spinor<R>>,
    output: Vec<Spinor<R>>,
}

impl<'t, R: Real, Op: GrainTunable<R>> OpTunable<'t, R, Op> {
    fn new(op: &'t mut Op) -> Self {
        let n = op.vec_len();
        Self {
            input: FermionField::<R>::gaussian(n, 0xC0FFEE).data,
            output: vec![Spinor::zero(); n],
            op,
        }
    }
}

impl<'t, R: Real, Op: GrainTunable<R>> Tunable for OpTunable<'t, R, Op> {
    fn key(&self) -> TuneKey {
        TuneKey::new(
            self.op.kernel_name(),
            self.op.volume_key(),
            format!("prec={}", R::NAME),
        )
    }

    fn param_space(&self) -> ParamSpace {
        ParamSpace::grain_ladder(self.op.vec_len())
    }

    fn run(&mut self, param: TuneParam) {
        self.op.set_grain(param.grain);
        self.op.apply(&mut self.output, &self.input);
    }

    fn harness(&self) -> TimingHarness {
        TimingHarness::WallClock { reps: 2 }
    }

    fn flops(&self) -> f64 {
        self.op.flops_per_apply()
    }
}

/// Tune `op`'s grain size through `tuner` (sweeping on first encounter) and
/// leave the operator configured with the optimum. Returns the chosen grain.
pub fn tune_operator<R: Real, Op: GrainTunable<R>>(tuner: &Tuner, op: &mut Op) -> usize {
    let param = {
        let mut adapter = OpTunable::new(op);
        tuner.tune(&mut adapter)
    };
    op.set_grain(param.grain);
    param.grain
}

/// Adapter that times one *batched* operator application at a candidate
/// grain size. Same sweep as [`OpTunable`], but over the interleaved
/// `nrhs`-column block and under a key carrying the block-size axis — the
/// optimum grain genuinely shifts with how many columns each site row
/// holds, so block sizes must not share cache entries.
struct BlockOpTunable<'t, R: Real, Op: GrainTunable<R> + BlockLinearOp<R>> {
    op: &'t mut Op,
    nrhs: usize,
    input: Vec<Spinor<R>>,
    output: Vec<Spinor<R>>,
}

impl<'t, R: Real, Op: GrainTunable<R> + BlockLinearOp<R>> BlockOpTunable<'t, R, Op> {
    fn new(op: &'t mut Op, nrhs: usize) -> Self {
        assert!(nrhs > 0, "a block needs at least one column");
        let n = op.vec_len() * nrhs;
        Self {
            input: FermionField::<R>::gaussian(n, 0xC0FFEE).data,
            output: vec![Spinor::zero(); n],
            op,
            nrhs,
        }
    }
}

impl<'t, R: Real, Op: GrainTunable<R> + BlockLinearOp<R>> Tunable for BlockOpTunable<'t, R, Op> {
    fn key(&self) -> TuneKey {
        TuneKey::new(
            self.op.kernel_name(),
            self.op.volume_key(),
            format!("prec={}", R::NAME),
        )
        .with_nrhs(self.nrhs)
    }

    fn param_space(&self) -> ParamSpace {
        ParamSpace::grain_ladder(self.op.vec_len())
    }

    fn run(&mut self, param: TuneParam) {
        self.op.set_grain(param.grain);
        self.op
            .apply_block(&mut self.output, &self.input, self.nrhs);
    }

    fn harness(&self) -> TimingHarness {
        TimingHarness::WallClock { reps: 2 }
    }

    fn flops(&self) -> f64 {
        self.op.flops_per_apply() * self.nrhs as f64
    }
}

/// Tune `op`'s grain size for batched applies at block size `nrhs` and
/// leave the operator configured with the optimum. Cached independently of
/// the single-RHS entry (and of other block sizes) via the key's `nrhs`
/// axis. Returns the chosen grain.
pub fn tune_block_operator<R: Real, Op: GrainTunable<R> + BlockLinearOp<R>>(
    tuner: &Tuner,
    op: &mut Op,
    nrhs: usize,
) -> usize {
    let param = {
        let mut adapter = BlockOpTunable::new(op, nrhs);
        tuner.tune(&mut adapter)
    };
    op.set_grain(param.grain);
    param.grain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirac::WilsonDirac;
    use crate::field::GaugeField;
    use crate::lattice::Lattice;

    #[test]
    fn tuning_sets_grain_and_caches() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 3);
        let mut d = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let tuner = Tuner::new();

        let g1 = tune_operator(&tuner, &mut d);
        assert_eq!(d.grain, g1);
        assert_eq!(tuner.stats().misses, 1);

        // Second operator with the same key: pure cache hit.
        let mut d2 = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let g2 = tune_operator(&tuner, &mut d2);
        assert_eq!(g1, g2);
        assert_eq!(tuner.stats().hits, 1);
    }

    #[test]
    fn different_precisions_tune_separately() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge64 = GaugeField::<f64>::hot(&lat, 5);
        let gauge32 = gauge64.cast::<f32>();
        let mut d64 = WilsonDirac::new(&lat, &gauge64, 0.1, true);
        let mut d32 = WilsonDirac::new(&lat, &gauge32, 0.1, true);
        let tuner = Tuner::new();
        tune_operator(&tuner, &mut d64);
        tune_operator(&tuner, &mut d32);
        assert_eq!(tuner.len(), 2, "f32 and f64 keys must be distinct");
    }

    #[test]
    fn block_sizes_tune_separately_and_preserve_bits() {
        use crate::dirac::BlockLinearOp;
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 11);
        let mut d = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let tuner = Tuner::new();
        let nrhs = 3;
        let x = crate::field::FermionField::<f64>::gaussian(lat.volume() * nrhs, 2).data;
        let mut before = vec![crate::spinor::Spinor::zero(); lat.volume() * nrhs];
        d.apply_block(&mut before, &x, nrhs);

        tune_operator(&tuner, &mut d);
        tune_block_operator(&tuner, &mut d, nrhs);
        assert_eq!(
            tuner.len(),
            2,
            "nrhs=1 and nrhs={nrhs} keys must be distinct"
        );

        let mut after = vec![crate::spinor::Spinor::zero(); lat.volume() * nrhs];
        d.apply_block(&mut after, &x, nrhs);
        assert_eq!(before, after, "tuning must not change blocked results");
    }

    #[test]
    fn tuned_result_is_unchanged_by_grain() {
        use crate::dirac::LinearOp;
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 7);
        let mut d = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let x = crate::field::FermionField::<f64>::gaussian(lat.volume(), 1).data;
        let mut before = vec![crate::spinor::Spinor::zero(); lat.volume()];
        d.apply(&mut before, &x);
        let tuner = Tuner::new();
        tune_operator(&tuner, &mut d);
        let mut after = vec![crate::spinor::Spinor::zero(); lat.volume()];
        d.apply(&mut after, &x);
        assert_eq!(before, after);
    }
}
