//! Multi-shift conjugate gradient: solve `(A + σ_k) x_k = b` for a family
//! of shifts in a single Krylov sequence.
//!
//! Production campaigns invert the same configuration at several valence
//! quark masses; because the mass enters the normal-equation operator as a
//! diagonal shift, the shifted systems share one Krylov space and cost one
//! matrix application per iteration regardless of how many masses are
//! solved (the classic multi-mass trick the USQCD stack relies on).

use super::{CgParams, SolveStats};
use crate::blas;
use crate::dirac::LinearOp;
use crate::real::Real;
use crate::spinor::Spinor;

/// Solve `(A + σ_k) x_k = b` for every shift `σ_k ≥ 0` (A Hermitian
/// positive definite), all `x_k` starting at zero. Returns per-shift
/// solutions and aggregate stats. Shifts must be sorted ascending; the
/// smallest shift (hardest system) drives convergence.
pub fn multishift_cg<R: Real, A: LinearOp<R> + ?Sized>(
    op: &A,
    shifts: &[f64],
    b: &[Spinor<R>],
    params: CgParams,
) -> (Vec<Vec<Spinor<R>>>, SolveStats) {
    let n = op.vec_len();
    assert_eq!(b.len(), n);
    assert!(!shifts.is_empty());
    assert!(
        shifts.windows(2).all(|w| w[0] <= w[1]),
        "shifts must be ascending"
    );
    assert!(
        shifts[0] >= 0.0,
        "shifts must keep A + sigma positive definite"
    );
    let ns = shifts.len();
    let mut stats = SolveStats::new();

    let b_norm2 = blas::norm_sqr(b);
    let mut xs = vec![vec![Spinor::<R>::zero(); n]; ns];
    if b_norm2 == 0.0 {
        stats.converged = true;
        stats.final_rel_residual = 0.0;
        return (xs, stats);
    }
    let target = params.tol * params.tol * b_norm2;

    // Base system: the smallest shift. Shifted recurrences track the rest.
    let sigma0 = shifts[0];
    let mut r = b.to_vec();
    let mut p = b.to_vec();
    let mut ap = vec![Spinor::<R>::zero(); n];
    let mut r2 = b_norm2;

    // Shifted-CG coefficients (Jegerlehner's recurrence).
    let mut zeta_prev = vec![1.0f64; ns];
    let mut zeta = vec![1.0f64; ns];
    let mut ps: Vec<Vec<Spinor<R>>> = (0..ns).map(|_| b.to_vec()).collect();
    let mut alpha_prev = 1.0f64;
    let mut beta_prev = 0.0f64;

    while stats.iterations < params.max_iter && r2 > target {
        op.apply(&mut ap, &p);
        // (A + σ0) p.
        blas::axpy(sigma0, &p, &mut ap);
        stats.iterations += 1;
        stats.flops += op.flops_per_apply();

        let pap = blas::dot(&p, &ap).re;
        if pap <= 0.0 {
            break;
        }
        let alpha = r2 / pap;

        // Shifted updates.
        for k in 0..ns {
            let ds = shifts[k] - sigma0;
            let denom = zeta_prev[k] * alpha_prev
                + alpha * beta_prev * (zeta_prev[k] - zeta[k])
                + zeta_prev[k] * alpha_prev * alpha * ds;
            // ζ_{k}^{new} = ζ_k ζ_k^{prev} α_prev / denom.
            let zeta_new = if denom.abs() > 1e-300 {
                zeta[k] * zeta_prev[k] * alpha_prev / denom
            } else {
                0.0
            };
            let alpha_k = if zeta[k].abs() > 1e-300 {
                alpha * zeta_new / zeta[k]
            } else {
                0.0
            };
            blas::axpy(alpha_k, &ps[k], &mut xs[k]);
            zeta_prev[k] = zeta[k];
            zeta[k] = zeta_new;
        }

        blas::axpy(-alpha, &ap, &mut r);
        let r2_new = blas::norm_sqr(&r);
        let beta = r2_new / r2;

        // Base direction and shifted directions.
        blas::xpby(&r, beta, &mut p);
        for k in 0..ns {
            // p_k = ζ_k r + β_k p_k with β_k = β (ζ_k / ζ_k^{prev})².
            let ratio = if zeta_prev[k].abs() > 1e-300 {
                zeta[k] / zeta_prev[k]
            } else {
                0.0
            };
            let beta_k = beta * ratio * ratio;
            let zk = R::from_f64(zeta[k]);
            for (pk, ri) in ps[k].iter_mut().zip(r.iter()) {
                *pk = ri.scale(zk) + pk.scale(R::from_f64(beta_k));
            }
        }

        alpha_prev = alpha;
        beta_prev = beta;
        r2 = r2_new;
        stats.flops += (3 + 2 * ns) as f64 * 24.0 * n as f64;
    }

    stats.final_rel_residual = (r2 / b_norm2).sqrt();
    stats.converged = r2 <= target;
    (xs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirac::{NormalOp, WilsonDirac};
    use crate::field::{FermionField, GaugeField};
    use crate::lattice::Lattice;
    use crate::solver::cg;

    #[test]
    fn multishift_matches_individual_solves() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 31);
        let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
        let a = NormalOp::new(&d);
        let b = FermionField::<f64>::gaussian(lat.volume(), 3).data;
        let shifts = [0.0, 0.05, 0.2, 1.0];
        let params = CgParams {
            tol: 1e-10,
            max_iter: 10_000,
        };

        let (xs, stats) = multishift_cg(&a, &shifts, &b, params);
        assert!(stats.converged, "{stats:?}");

        // Each shifted solution must solve its own system to tolerance
        // (looser for the larger shifts, whose recurrences accumulate more
        // rounding than a direct solve would).
        for (k, &sigma) in shifts.iter().enumerate() {
            let shifted = ShiftedOp { inner: &a, sigma };
            let mut direct = vec![crate::spinor::Spinor::zero(); lat.volume()];
            let s = cg(&shifted, &mut direct, &b, params);
            assert!(s.converged);
            let diff = blas::sub(&xs[k], &direct);
            let rel = blas::norm_sqr(&diff) / blas::norm_sqr(&direct);
            assert!(rel < 1e-14, "shift {sigma}: solutions differ, rel {rel}");
        }
    }

    #[test]
    fn one_matrix_apply_per_iteration_regardless_of_shift_count() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 37);
        let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
        let a = NormalOp::new(&d);
        let b = FermionField::<f64>::gaussian(lat.volume(), 5).data;
        let params = CgParams {
            tol: 1e-9,
            max_iter: 10_000,
        };
        let (_, s1) = multishift_cg(&a, &[0.0], &b, params);
        let (_, s4) = multishift_cg(&a, &[0.0, 0.1, 0.5, 2.0], &b, params);
        assert_eq!(
            s1.iterations, s4.iterations,
            "shift count must not change the Krylov sequence"
        );
    }

    #[test]
    fn larger_shifts_give_smaller_solutions() {
        // (A + σ)⁻¹ shrinks monotonically with σ.
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 41);
        let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
        let a = NormalOp::new(&d);
        let b = FermionField::<f64>::gaussian(lat.volume(), 7).data;
        let (xs, stats) = multishift_cg(
            &a,
            &[0.0, 0.5, 2.0],
            &b,
            CgParams {
                tol: 1e-9,
                max_iter: 10_000,
            },
        );
        assert!(stats.converged);
        let n0 = blas::norm_sqr(&xs[0]);
        let n1 = blas::norm_sqr(&xs[1]);
        let n2 = blas::norm_sqr(&xs[2]);
        assert!(n0 > n1 && n1 > n2, "{n0} > {n1} > {n2}");
    }

    /// `A + σ` helper for the cross-check.
    struct ShiftedOp<'a, A: LinearOp<f64>> {
        inner: &'a A,
        sigma: f64,
    }
    impl<'a, A: LinearOp<f64>> LinearOp<f64> for ShiftedOp<'a, A> {
        fn vec_len(&self) -> usize {
            self.inner.vec_len()
        }
        fn apply(
            &self,
            out: &mut [crate::spinor::Spinor<f64>],
            inp: &[crate::spinor::Spinor<f64>],
        ) {
            self.inner.apply(out, inp);
            blas::axpy(self.sigma, inp, out);
        }
        fn flops_per_apply(&self) -> f64 {
            self.inner.flops_per_apply()
        }
    }
}
