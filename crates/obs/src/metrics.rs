//! Metric primitives: lock-free counters, gauges, and fixed-bucket
//! histograms. All types are `Send + Sync` and updated with atomics so the
//! hot paths (solver inner loops, DES event handlers) pay one atomic op
//! per update and never block.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing integer counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Accumulating floating-point counter (flops, bytes-seconds, …).
/// Stored as f64 bits in an `AtomicU64`, added with a CAS loop.
#[derive(Debug)]
pub struct FloatCounter {
    bits: AtomicU64,
}

impl Default for FloatCounter {
    fn default() -> Self {
        FloatCounter {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl FloatCounter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Last-write-wins instantaneous value (queue depth, nodes busy, …).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn add(&self, dv: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + dv).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Raise the gauge to `v` if it is below (high-water mark).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= v {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram.
///
/// `bounds` are the inclusive upper edges of the first `bounds.len()`
/// buckets; a final overflow bucket catches everything above the last
/// bound (so there are `bounds.len() + 1` buckets). Recording is one
/// branchless-ish scan plus three atomic ops; bucket placement is a pure
/// function of the value, so per-bucket counts are deterministic even
/// under concurrent recording.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: FloatCounter,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Point-in-time copy of a histogram, for export and assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Histogram {
    /// `bounds` must be strictly increasing and non-empty.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: FloatCounter::new(),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Geometric bucket edges: `start, start*factor, …` (n edges).
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && n >= 1);
        let mut bounds = Vec::with_capacity(n);
        let mut edge = start;
        for _ in 0..n {
            bounds.push(edge);
            edge *= factor;
        }
        Histogram::new(&bounds)
    }

    /// Uniform bucket edges: `start, start+width, …` (n edges).
    pub fn linear(start: f64, width: f64, n: usize) -> Self {
        assert!(width > 0.0 && n >= 1);
        let bounds: Vec<f64> = (0..n).map(|i| start + width * i as f64).collect();
        Histogram::new(&bounds)
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    fn bucket_index(&self, v: f64) -> usize {
        // partition_point gives the first edge >= v; NaN lands in overflow.
        self.bounds.partition_point(|&edge| edge < v)
    }

    pub fn record(&self, v: f64) {
        self.buckets[self.bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.add(v);
        update_extreme(&self.min_bits, v, |cur, v| v < cur);
        update_extreme(&self.max_bits, v, |cur, v| v > cur);
    }

    pub fn record_n(&self, v: f64, times: u64) {
        if times == 0 {
            return;
        }
        self.buckets[self.bucket_index(v)].fetch_add(times, Ordering::Relaxed);
        self.count.fetch_add(times, Ordering::Relaxed);
        self.sum.add(v * times as f64);
        update_extreme(&self.min_bits, v, |cur, v| v < cur);
        update_extreme(&self.max_bits, v, |cur, v| v > cur);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        self.sum.get()
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            f64::NAN
        } else {
            self.sum() / n as f64
        }
    }

    /// Merge another histogram's counts into this one. Panics if bucket
    /// bounds differ — merging histograms of different shape is a bug.
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge: mismatched bounds"
        );
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.add(other.sum());
        let omin = f64::from_bits(other.min_bits.load(Ordering::Relaxed));
        let omax = f64::from_bits(other.max_bits.load(Ordering::Relaxed));
        update_extreme(&self.min_bits, omin, |cur, v| v < cur);
        update_extreme(&self.max_bits, omax, |cur, v| v > cur);
    }

    /// Quantile estimate, `q` in [0, 1]: the upper edge of the bucket
    /// holding the ceil(q·count)-th sample (the true min/max for the
    /// extreme buckets). Returns NaN on an empty histogram. Because the
    /// answer is always a bucket edge (or min/max), it is exactly
    /// monotonic in `q` and stable under merge.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.snapshot_min();
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i < self.bounds.len() {
                    // Clip to the observed max so q=1.0 reports a real value.
                    self.bounds[i].min(self.snapshot_max())
                } else {
                    self.snapshot_max()
                };
            }
        }
        self.snapshot_max()
    }

    fn snapshot_min(&self) -> f64 {
        f64::from_bits(self.min_bits.load(Ordering::Relaxed))
    }

    fn snapshot_max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
            min: self.snapshot_min(),
            max: self.snapshot_max(),
        }
    }
}

fn update_extreme(bits: &AtomicU64, v: f64, better: impl Fn(f64, f64) -> bool) {
    if v.is_nan() {
        return;
    }
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        if !better(f64::from_bits(cur), v) {
            return;
        }
        match bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_float_counter_accumulate() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let f = FloatCounter::new();
        f.add(1.5);
        f.add(2.25);
        assert_eq!(f.get(), 3.75);
    }

    #[test]
    fn gauge_tracks_last_value_and_high_water() {
        let g = Gauge::new();
        g.set(3.0);
        g.add(-1.0);
        assert_eq!(g.get(), 2.0);
        g.set_max(10.0);
        g.set_max(5.0);
        assert_eq!(g.get(), 10.0);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 50.0, 500.0, 5000.0] {
            h.record(v);
        }
        let s = h.snapshot();
        // Edges are inclusive: 1.0 lands in the first bucket.
        assert_eq!(s.buckets, vec![2, 1, 1, 2]);
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 5000.0);
        assert_eq!(s.sum, 0.5 + 1.0 + 5.0 + 50.0 + 500.0 + 5000.0);
    }

    #[test]
    fn quantiles_walk_bucket_edges() {
        let h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 1.5, 3.0, 3.5, 7.0, 20.0] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0.5);
        assert_eq!(h.quantile(0.5), 4.0);
        assert_eq!(h.quantile(1.0), 20.0);
        assert!(Histogram::new(&[1.0]).quantile(0.5).is_nan());
    }

    #[test]
    fn merge_adds_counts_and_extremes() {
        let a = Histogram::new(&[1.0, 2.0]);
        let b = Histogram::new(&[1.0, 2.0]);
        a.record(0.5);
        b.record(1.5);
        b.record(9.0);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.buckets, vec![1, 1, 1]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    #[should_panic(expected = "mismatched bounds")]
    fn merge_rejects_different_shapes() {
        Histogram::new(&[1.0]).merge(&Histogram::new(&[2.0]));
    }
}
