//! Delete-one jackknife resampling.

/// A jackknife mean ± error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JackknifeEstimate {
    /// Estimate of the statistic on the full sample.
    pub mean: f64,
    /// Jackknife standard error.
    pub error: f64,
}

/// Jackknife a scalar statistic over per-configuration samples.
///
/// `statistic` maps a set of samples to a number (e.g. "fit gA to the mean
/// correlator"); it is evaluated on the full set and on each delete-one
/// subset.
///
/// ```
/// let samples = vec![1.0, 2.0, 3.0, 4.0];
/// let est = lqcd_analysis::jackknife(&samples, |s| {
///     s.iter().sum::<f64>() / s.len() as f64
/// });
/// assert_eq!(est.mean, 2.5);
/// assert!(est.error > 0.0);
/// ```
pub fn jackknife<T, F>(samples: &[T], statistic: F) -> JackknifeEstimate
where
    T: Clone,
    F: Fn(&[T]) -> f64,
{
    let n = samples.len();
    assert!(n >= 2, "jackknife needs at least 2 samples");
    let full = statistic(samples);
    let mut deleted = Vec::with_capacity(n);
    let mut buf: Vec<T> = Vec::with_capacity(n - 1);
    for i in 0..n {
        buf.clear();
        buf.extend_from_slice(&samples[..i]);
        buf.extend_from_slice(&samples[i + 1..]);
        deleted.push(statistic(&buf));
    }
    let mean_del: f64 = deleted.iter().sum::<f64>() / n as f64;
    let var: f64 = deleted
        .iter()
        .map(|d| (d - mean_del) * (d - mean_del))
        .sum::<f64>()
        * (n as f64 - 1.0)
        / n as f64;
    JackknifeEstimate {
        mean: full,
        error: var.sqrt(),
    }
}

/// Jackknife a vector statistic (e.g. an effective-coupling curve),
/// returning per-component mean ± error.
pub fn jackknife_vector<T, F>(samples: &[T], statistic: F) -> Vec<JackknifeEstimate>
where
    T: Clone,
    F: Fn(&[T]) -> Vec<f64>,
{
    let n = samples.len();
    assert!(n >= 2);
    let full = statistic(samples);
    let m = full.len();
    let mut deleted = vec![Vec::with_capacity(n); m];
    let mut buf: Vec<T> = Vec::with_capacity(n - 1);
    for i in 0..n {
        buf.clear();
        buf.extend_from_slice(&samples[..i]);
        buf.extend_from_slice(&samples[i + 1..]);
        let d = statistic(&buf);
        assert_eq!(d.len(), m, "statistic must have fixed length");
        for (k, v) in d.into_iter().enumerate() {
            deleted[k].push(v);
        }
    }
    (0..m)
        .map(|k| {
            let mean_del: f64 = deleted[k].iter().sum::<f64>() / n as f64;
            let var: f64 = deleted[k]
                .iter()
                .map(|d| (d - mean_del) * (d - mean_del))
                .sum::<f64>()
                * (n as f64 - 1.0)
                / n as f64;
            JackknifeEstimate {
                mean: full[k],
                error: var.sqrt(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn jackknife_of_mean_matches_standard_error() {
        let mut rng = SmallRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..400).map(|_| rng.gen::<f64>()).collect();
        let est = jackknife(&samples, |s| s.iter().sum::<f64>() / s.len() as f64);
        let mean: f64 = samples.iter().sum::<f64>() / 400.0;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (400.0 - 1.0);
        let sem = (var / 400.0).sqrt();
        assert!((est.mean - mean).abs() < 1e-14);
        assert!(
            (est.error - sem).abs() < 1e-3 * sem,
            "{} vs {}",
            est.error,
            sem
        );
    }

    #[test]
    fn error_shrinks_with_sample_size() {
        let mut rng = SmallRng::seed_from_u64(5);
        let big: Vec<f64> = (0..1600).map(|_| rng.gen::<f64>()).collect();
        let small = &big[..100];
        let stat = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
        let e_small = jackknife(small, stat).error;
        let e_big = jackknife(&big, stat).error;
        // √16 = 4× reduction, modulo sampling noise.
        assert!(e_big < e_small / 2.5, "{e_big} vs {e_small}");
    }

    #[test]
    fn vector_jackknife_matches_scalar_per_component() {
        let samples: Vec<[f64; 2]> = (0..50).map(|i| [i as f64, (i * i) as f64]).collect();
        let v = jackknife_vector(&samples, |s| {
            let n = s.len() as f64;
            vec![
                s.iter().map(|x| x[0]).sum::<f64>() / n,
                s.iter().map(|x| x[1]).sum::<f64>() / n,
            ]
        });
        let s0 = jackknife(&samples, |s| {
            s.iter().map(|x| x[0]).sum::<f64>() / s.len() as f64
        });
        assert!((v[0].mean - s0.mean).abs() < 1e-14);
        assert!((v[0].error - s0.error).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_sample_panics() {
        jackknife(&[1.0], |s| s[0]);
    }
}
