//! Fixture crate carrying exactly one violation of every file-scoped rule
//! (R1, R2, R3, R5, R6) plus a justified `unsafe` and a test module that
//! must both stay clean. Never compiled — the lint lexes it as text.

pub use fixio::read_all;

/// R1: `unsafe` without a SAFETY comment.
pub fn raw_read(p: *const u8) -> u8 {
    unsafe { *p }
}

/// Justified `unsafe`: must NOT be flagged.
pub fn checked_read(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

/// R2: raw wall-clock time outside the sanctioned clock module.
pub fn stamp() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}

/// R3: lexical panic site in library code.
pub fn head(v: &[u8]) -> u8 {
    *v.first().unwrap()
}

/// R5: direct float reduction on a parallel chain — the closure's internal
/// statement must not hide the chain from the checker.
pub fn norm2(v: &[f64]) -> f64 {
    v.par_iter()
        .map(|x| {
            let y = x * x;
            y
        })
        .sum::<f64>()
}

/// R6: relaxed atomic outside the audited allowlist.
pub fn bump(c: &std::sync::atomic::AtomicU64) {
    c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    // Violations inside a test module are exempt from R2/R3/R5.
    #[test]
    fn exempt() {
        let t = std::time::Instant::now();
        let _ = t.elapsed().as_secs_f64();
        let v: Vec<f64> = vec![1.0];
        let _ = v.first().unwrap();
    }
}
