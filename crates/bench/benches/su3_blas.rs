//! Micro-kernels: SU(3) algebra and the bandwidth-bound BLAS-1 operations
//! of the CG solver.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lqcd_core::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_su3(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let a = Su3::<f64>::random(&mut rng);
    let b = Su3::<f64>::random(&mut rng);
    let v = ColorVec {
        c: [
            Complex::from_f64(0.3, -1.0),
            Complex::from_f64(2.0, 0.7),
            Complex::from_f64(-0.5, 0.1),
        ],
    };

    let mut group = c.benchmark_group("su3");
    group.bench_function("mat_mul", |bch| bch.iter(|| std::hint::black_box(a) * b));
    group.bench_function("mat_vec", |bch| {
        bch.iter(|| a.mul_vec(std::hint::black_box(&v)))
    });
    group.bench_function("dagger_vec", |bch| {
        bch.iter(|| a.dagger_mul_vec(std::hint::black_box(&v)))
    });
    group.bench_function("reunitarize", |bch| {
        bch.iter(|| std::hint::black_box(a).reunitarize())
    });
    group.finish();
}

fn bench_blas(c: &mut Criterion) {
    let n = 1 << 16;
    let x = FermionField::<f64>::gaussian(n, 1).data;
    let mut y = FermionField::<f64>::gaussian(n, 2).data;

    let mut group = c.benchmark_group("blas1");
    group.throughput(Throughput::Bytes((n * 24 * 8) as u64));
    group.bench_function("axpy", |bch| bch.iter(|| blas::axpy(0.5, &x, &mut y)));
    group.bench_function("dot", |bch| bch.iter(|| blas::dot(&x, &y)));
    group.bench_function("norm_sqr", |bch| bch.iter(|| blas::norm_sqr(&x)));
    group.bench_function("xpby", |bch| bch.iter(|| blas::xpby(&x, 0.3, &mut y)));
    group.finish();
}

fn bench_halfprec_codec(c: &mut Criterion) {
    let n = 1 << 14;
    let v: Vec<Spinor<f32>> = FermionField::<f64>::gaussian(n, 5).cast::<f32>().data;
    let encoded = HalfFermionField::encode(&v);

    let mut group = c.benchmark_group("halfprec");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("encode", |bch| bch.iter(|| HalfFermionField::encode(&v)));
    group.bench_function("decode", |bch| bch.iter(|| encoded.decode()));
    group.finish();
}

criterion_group!(benches, bench_su3, bench_blas, bench_halfprec_codec);
criterion_main!(benches);
