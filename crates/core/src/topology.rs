//! Field-strength and topological observables: the clover-leaf `F_{μν}`,
//! the topological charge density, and the action density used by
//! gradient-flow-style smoothing diagnostics.

use crate::complex::Complex;
use crate::field::{GaugeField, GaugeLinks};
use crate::lattice::Lattice;
use crate::su3::{Su3, NC};

/// The four plaquette "leaves" around `x` in the `(μ,ν)` plane, summed.
fn clover_leaves(lat: &Lattice, g: &GaugeField<f64>, x: usize, mu: usize, nu: usize) -> Su3<f64> {
    let nb = lat.neighbors(x);
    let xp_mu = nb.fwd[mu] as usize;
    let xp_nu = nb.fwd[nu] as usize;
    let xm_mu = nb.bwd[mu] as usize;
    let xm_nu = nb.bwd[nu] as usize;
    let xp_mu_m_nu = lat.neighbors(xp_mu).bwd[nu] as usize;
    let xm_mu_p_nu = lat.neighbors(xm_mu).fwd[nu] as usize;
    let xm_mu_m_nu = lat.neighbors(xm_mu).bwd[nu] as usize;

    // Leaf 1: x -> +μ -> +ν -> −μ -> −ν.
    let l1 =
        g.link(x, mu) * g.link(xp_mu, nu) * g.link(xp_nu, mu).dagger() * g.link(x, nu).dagger();
    // Leaf 2: x -> +ν -> −μ -> −ν -> +μ.
    let l2 = g.link(x, nu)
        * g.link(xm_mu_p_nu, mu).dagger()
        * g.link(xm_mu, nu).dagger()
        * g.link(xm_mu, mu);
    // Leaf 3: x -> −μ -> −ν -> +μ -> +ν.
    let l3 = g.link(xm_mu, mu).dagger()
        * g.link(xm_mu_m_nu, nu).dagger()
        * g.link(xm_mu_m_nu, mu)
        * g.link(xm_nu, nu);
    // Leaf 4: x -> −ν -> +μ -> +ν -> −μ.
    let l4 = g.link(xm_nu, nu).dagger()
        * g.link(xm_nu, mu)
        * g.link(xp_mu_m_nu, nu)
        * g.link(x, mu).dagger();
    l1 + l2 + l3 + l4
}

/// The clover (anti-hermitian traceless) field strength `F_{μν}(x)`:
/// `F = (Q − Q†)/8 − trace part`, `Q` the four-leaf sum.
pub fn clover_field_strength(
    lat: &Lattice,
    g: &GaugeField<f64>,
    x: usize,
    mu: usize,
    nu: usize,
) -> Su3<f64> {
    let q = clover_leaves(lat, g, x, mu, nu);
    let qdag = q.dagger();
    let mut f = Su3::zero();
    for i in 0..NC {
        for j in 0..NC {
            f.m[i][j] = (q.m[i][j] - qdag.m[i][j]).scale(1.0 / 8.0);
        }
    }
    // Remove the trace to land in su(3).
    let tr = f.trace();
    let third = Complex::new(tr.re / 3.0, tr.im / 3.0);
    for i in 0..NC {
        f.m[i][i] -= third;
    }
    f
}

/// Topological charge density at `x`:
/// `q(x) = (1/32π²) ε_{μνρσ} Tr[F_{μν} F_{ρσ}]`, clover discretization.
pub fn topological_charge_density(lat: &Lattice, g: &GaugeField<f64>, x: usize) -> f64 {
    // ε with (0123) = +1; the three independent pairings.
    let pairs = [((0, 1), (2, 3)), ((0, 2), (3, 1)), ((0, 3), (1, 2))];
    let mut q = 0.0;
    for &((mu, nu), (rho, sigma)) in &pairs {
        let f1 = clover_field_strength(lat, g, x, mu, nu);
        let f2 = clover_field_strength(lat, g, x, rho, sigma);
        q += (f1 * f2).re_trace();
    }
    // Each pairing appears 8 times in the ε sum (2 per antisymmetric slot);
    // absorbing that multiplicity: q_total = 8 Σ_pairs / (32 π²).
    q * 8.0 / (32.0 * std::f64::consts::PI * std::f64::consts::PI)
}

/// Total topological charge `Q = Σ_x q(x)`; near-integer on smooth fields.
pub fn topological_charge(lat: &Lattice, g: &GaugeField<f64>) -> f64 {
    crate::reduce::sum_sites(lat.volume(), |x| topological_charge_density(lat, g, x))
}

/// Clover action density `Σ_{μ<ν} −½ Tr[F_{μν}²] / V` — positive, vanishing
/// on a pure gauge.
pub fn action_density(lat: &Lattice, g: &GaugeField<f64>) -> f64 {
    let total = crate::reduce::sum_sites(lat.volume(), |x| {
        let mut acc = 0.0;
        for mu in 0..4 {
            for nu in (mu + 1)..4 {
                let f = clover_field_strength(lat, g, x, mu, nu);
                acc -= (f * f).re_trace() * 0.5;
            }
        }
        acc
    });
    total / lat.volume() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smear::ape_smear_spatial;

    #[test]
    fn unit_gauge_has_zero_field_strength() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let g = GaugeField::<f64>::cold(&lat);
        let f = clover_field_strength(&lat, &g, 0, 0, 1);
        assert!(f.distance(&Su3::zero()) < 1e-14);
        assert!(topological_charge(&lat, &g).abs() < 1e-10);
        assert!(action_density(&lat, &g).abs() < 1e-14);
    }

    #[test]
    fn field_strength_is_antihermitian_traceless() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let g = GaugeField::<f64>::hot(&lat, 5);
        for &(mu, nu) in &[(0usize, 1usize), (1, 3), (2, 3)] {
            let f = clover_field_strength(&lat, &g, 7, mu, nu);
            // F† = −F.
            let fdag = f.dagger();
            let mut neg = Su3::zero();
            for i in 0..3 {
                for j in 0..3 {
                    neg.m[i][j] = -f.m[i][j];
                }
            }
            assert!(fdag.distance(&neg) < 1e-12, "anti-hermitian ({mu},{nu})");
            assert!(f.trace().abs() < 1e-12, "traceless");
        }
    }

    #[test]
    fn field_strength_is_antisymmetric_in_indices() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let g = GaugeField::<f64>::hot(&lat, 7);
        let f01 = clover_field_strength(&lat, &g, 3, 0, 1);
        let f10 = clover_field_strength(&lat, &g, 3, 1, 0);
        let mut neg = Su3::zero();
        for i in 0..3 {
            for j in 0..3 {
                neg.m[i][j] = -f01.m[i][j];
            }
        }
        assert!(f10.distance(&neg) < 1e-12, "F_{{10}} = −F_{{01}}");
    }

    #[test]
    fn action_density_positive_on_rough_fields_and_drops_under_smearing() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let mut ens = crate::gauge::QuenchedEnsemble::cold_start(
            &lat,
            crate::gauge::HeatbathParams { beta: 5.7, n_or: 1 },
            9,
        );
        for _ in 0..8 {
            ens.update();
        }
        let rough = ens.current().clone();
        let e_rough = action_density(&lat, &rough);
        assert!(e_rough > 0.0);
        let mut smooth = rough.clone();
        for _ in 0..3 {
            smooth = ape_smear_spatial(&lat, &smooth, 0.5);
        }
        let e_smooth = action_density(&lat, &smooth);
        assert!(
            e_smooth < e_rough,
            "smearing lowers the action density: {e_smooth} < {e_rough}"
        );
    }

    #[test]
    fn topological_charge_is_real_and_bounded_on_thermalized_fields() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let mut ens = crate::gauge::QuenchedEnsemble::cold_start(
            &lat,
            crate::gauge::HeatbathParams { beta: 6.2, n_or: 2 },
            11,
        );
        for _ in 0..10 {
            ens.update();
        }
        let q = topological_charge(&lat, ens.current());
        assert!(q.is_finite());
        // A tiny smooth box at weak coupling sits in the Q ≈ 0 sector with
        // lattice-artifact spread well below one unit.
        assert!(q.abs() < 1.5, "Q = {q} out of range for a 4^4 box");
    }
}
