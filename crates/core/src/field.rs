//! Lattice fields: gauge links and fermion vectors.
//!
//! Gauge links are stored site-major (`site*4 + mu`), which is the access
//! order of the stencil. Fermion fields are flat `Vec<Spinor<R>>`; the 5D
//! domain-wall field stacks `L5` four-dimensional slices (`s` outermost) so
//! the 4D hopping kernel can run unchanged on each slice.

use crate::lattice::{Lattice, ND};
use crate::real::Real;
use crate::spinor::Spinor;
use crate::su3::Su3;
use rand::distributions::Distribution;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Read access to gauge links, abstracting over storage precision.
///
/// The mixed-precision solver runs its bulk iterations against links stored
/// in 16-bit fixed point ([`crate::halfprec::HalfGaugeField`]); this trait
/// lets the stencil kernels accept either representation.
pub trait GaugeLinks<R: Real>: Sync {
    /// The link `U_mu(site)`.
    fn link(&self, site: usize, mu: usize) -> Su3<R>;
    /// Number of sites.
    fn volume(&self) -> usize;
    /// Short storage/reconstruction label ("full", "r12", "r8", "half", …)
    /// used as an autotune-key axis and in bench reporting.
    fn recon_name(&self) -> &'static str {
        "full"
    }
}

/// Full-precision gauge field: 4 links per site.
#[derive(Clone)]
pub struct GaugeField<R> {
    lattice: Lattice,
    links: Vec<Su3<R>>,
}

impl<R: Real> GaugeField<R> {
    /// Unit ("cold") configuration — the free field.
    pub fn cold(lattice: &Lattice) -> Self {
        Self {
            lattice: lattice.clone(),
            links: vec![Su3::identity(); lattice.volume() * ND],
        }
    }

    /// Random ("hot") configuration, reproducible from a seed.
    pub fn hot(lattice: &Lattice, seed: u64) -> Self {
        let volume = lattice.volume();
        let mut links = vec![Su3::identity(); volume * ND];
        links
            .par_chunks_mut(ND)
            .enumerate()
            .for_each(|(site, chunk)| {
                let mut rng =
                    SmallRng::seed_from_u64(seed ^ (site as u64).wrapping_mul(0x9E3779B97F4A7C15));
                for link in chunk.iter_mut() {
                    *link = Su3::random(&mut rng);
                }
            });
        Self {
            lattice: lattice.clone(),
            links,
        }
    }

    /// The lattice this field lives on.
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// Mutable link access (gauge evolution).
    #[inline(always)]
    pub fn link_mut(&mut self, site: usize, mu: usize) -> &mut Su3<R> {
        &mut self.links[site * ND + mu]
    }

    /// Raw link storage.
    pub fn links(&self) -> &[Su3<R>] {
        &self.links
    }

    /// Mutable raw link storage.
    pub fn links_mut(&mut self) -> &mut [Su3<R>] {
        &mut self.links
    }

    /// Convert every link to another precision.
    pub fn cast<S: Real>(&self) -> GaugeField<S> {
        GaugeField {
            lattice: self.lattice.clone(),
            links: self.links.par_iter().map(|u| u.cast()).collect(),
        }
    }

    /// Largest unitarity violation across all links (drift monitor).
    pub fn max_unitarity_error(&self) -> f64 {
        crate::reduce::max_sites(self.links.len(), |l| self.links[l].unitarity_error())
    }

    /// Project every link back onto SU(3).
    pub fn reunitarize(&mut self) {
        self.links.par_iter_mut().for_each(|u| *u = u.reunitarize());
    }
}

impl<R: Real> GaugeLinks<R> for GaugeField<R> {
    #[inline(always)]
    fn link(&self, site: usize, mu: usize) -> Su3<R> {
        self.links[site * ND + mu]
    }
    fn volume(&self) -> usize {
        self.lattice.volume()
    }
}

/// A fermion vector: `len` spinors (4D: volume; 5D: volume × L5; red-black:
/// half of either).
#[derive(Clone, Debug, PartialEq)]
pub struct FermionField<R> {
    /// Flat spinor storage.
    pub data: Vec<Spinor<R>>,
}

impl<R: Real> FermionField<R> {
    /// Zero vector of the given length.
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![Spinor::zero(); len],
        }
    }

    /// Gaussian random vector (unit variance per real component),
    /// reproducible from a seed. Used for stochastic sources and tests.
    pub fn gaussian(len: usize, seed: u64) -> Self {
        let mut data = vec![Spinor::zero(); len];
        data.par_iter_mut().enumerate().for_each(|(i, sp)| {
            let mut rng =
                SmallRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0xD1B54A32D192ED03));
            let normal = GaussPair;
            for s in 0..4 {
                for c in 0..3 {
                    let (re, im) = normal.sample(&mut rng);
                    sp.s[s].c[c] = crate::complex::Complex::from_f64(re, im);
                }
            }
        });
        Self { data }
    }

    /// Number of spinors.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert precision.
    pub fn cast<S: Real>(&self) -> FermionField<S> {
        FermionField {
            data: self.data.par_iter().map(|s| s.cast()).collect(),
        }
    }
}

/// Box–Muller pair sampler used by `FermionField::gaussian`.
struct GaussPair;

impl Distribution<(f64, f64)> for GaussPair {
    fn sample<G: rand::Rng + ?Sized>(&self, rng: &mut G) -> (f64, f64) {
        let u1: f64 = rng.gen::<f64>().max(1e-300);
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let th = 2.0 * std::f64::consts::PI * u2;
        (r * th.cos(), r * th.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas;

    #[test]
    fn cold_field_is_exactly_unit() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let g = GaugeField::<f64>::cold(&lat);
        assert_eq!(g.links().len(), lat.volume() * 4);
        assert!(g.max_unitarity_error() < 1e-15);
    }

    #[test]
    fn hot_field_is_unitary_and_reproducible() {
        let lat = Lattice::new([4, 4, 2, 2]);
        let a = GaugeField::<f64>::hot(&lat, 42);
        let b = GaugeField::<f64>::hot(&lat, 42);
        let c = GaugeField::<f64>::hot(&lat, 43);
        assert!(a.max_unitarity_error() < 1e-12);
        assert_eq!(a.links()[5], b.links()[5], "same seed, same field");
        assert_ne!(a.links()[5], c.links()[5], "different seed differs");
    }

    #[test]
    fn gaussian_vector_has_unit_variance() {
        let v = FermionField::<f64>::gaussian(4096, 7);
        let n2 = blas::norm_sqr(&v.data);
        let dof = (v.len() * 24) as f64;
        let var = n2 / dof;
        assert!((var - 1.0).abs() < 0.05, "variance {var} should be ~1");
    }

    #[test]
    fn cast_round_trip_is_close() {
        let v = FermionField::<f64>::gaussian(64, 3);
        let w: FermionField<f64> = v.cast::<f32>().cast();
        let mut diff = v.clone();
        blas::axpy(-1.0, &w.data, &mut diff.data);
        let rel = blas::norm_sqr(&diff.data) / blas::norm_sqr(&v.data);
        assert!(rel < 1e-12, "f32 round-trip relative error {rel}");
    }

    #[test]
    fn reunitarize_restores_scaled_links() {
        let lat = Lattice::new([2, 2, 2, 2]);
        let mut g = GaugeField::<f64>::hot(&lat, 1);
        for u in g.links_mut() {
            *u = u.scale(1.01);
        }
        assert!(g.max_unitarity_error() > 1e-3);
        g.reunitarize();
        assert!(g.max_unitarity_error() < 1e-12);
    }
}
