//! CRC-32C (Castagnoli), table-driven, implemented from the polynomial —
//! the per-chunk integrity check of the container format.

/// Reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

/// 256-entry lookup table built at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *e = crc;
        }
        t
    })
}

/// CRC-32C of a byte slice.
pub fn crc32c(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_test_vectors() {
        // RFC 3720 / common CRC-32C vectors.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"a"), 0xC1D0_4330);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = vec![0x5Au8; 1024];
        let base = crc32c(&data);
        for bit in [0usize, 13, 8000] {
            let mut corrupt = data.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&corrupt), base, "bit {bit} undetected");
        }
    }
}
