//! Clean fixture crate: the lint must report nothing here.

/// Placeholder the other fixture crates reference.
pub fn read_all(bytes: &[u8]) -> Vec<u8> {
    bytes.to_vec()
}
