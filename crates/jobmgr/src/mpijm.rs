//! `mpi_jm`: a library-level job manager with tight hardware binding.
//!
//! The design points implemented from §V of the paper:
//!
//! - The allocation is organized into **lumps** (e.g. 32–128 nodes), each
//!   started by its own `mpirun`; lumps that fail to start (bad node,
//!   filesystem trouble) are simply ignored, so one sick node costs a lump,
//!   not the job — the reason "relatively small lump sizes" are used on new
//!   systems.
//! - Lumps are subdivided into **blocks** whose size is a multiple of the
//!   largest job; jobs never straddle a block boundary, so allocations stay
//!   contiguous and "block boundaries prevent fragmentation and keep high
//!   bandwidth communications local".
//! - Jobs start via `MPI_Comm_spawn_multiple` inside their block — cheap and
//!   parallel across blocks, unlike METAQ's serialized `mpirun`s.
//! - **CPU/GPU co-scheduling**: CPU-only contractions overlay nodes whose
//!   GPUs run propagators, making their cost "effectively free".
//!
//! Mid-run faults extend the lump discipline into steady state: a node crash
//! kills only the jobs bound to that node, the surviving nodes of the block
//! re-spawn workers at the block boundary, and the victims are requeued into
//! other blocks with backoff. The blast radius is one job and the relaunch
//! is a cheap parallel `MPI_Comm_spawn`, which is why `mpi_jm` retains most
//! of its throughput in the `repro faults` sweep while naive bundling
//! collapses.

use crate::cluster::Cluster;
use crate::fault::{
    AttemptFate, FaultConfig, FaultInjector, FaultStats, RecoveryState, RetryPolicy,
};
use crate::instrument::SchedObs;
use crate::report::{SimReport, TaskRecord};
use crate::task::{TaskKind, Workload};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total-order wrapper for event times.
#[derive(PartialEq)]
struct Ord64(f64);
impl Eq for Ord64 {}
impl PartialOrd for Ord64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ord64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A DES event; `TaskEnd` carries the attempt epoch for tombstoning.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    TaskEnd { id: usize, epoch: u64 },
    NodeCrash { node: usize },
    TaskReady { id: usize },
}

/// `mpi_jm` configuration.
#[derive(Clone, Copy, Debug)]
pub struct MpiJmConfig {
    /// Nodes per lump (one `mpirun` each).
    pub lump_nodes: usize,
    /// Nodes per block (must divide the lump and be ≥ the largest job).
    pub block_nodes: usize,
    /// `MPI_Comm_spawn_multiple` cost per job start, seconds (parallel
    /// across blocks).
    pub spawn_seconds: f64,
    /// Overlay CPU-only tasks on GPU-busy nodes.
    pub co_schedule: bool,
    /// Solve-rate multiplier of the MPI stack (e.g. untuned MVAPICH2 < 1).
    pub mpi_efficiency: f64,
}

impl Default for MpiJmConfig {
    fn default() -> Self {
        Self {
            lump_nodes: 32,
            block_nodes: 4,
            spawn_seconds: 0.5,
            co_schedule: true,
            mpi_efficiency: 1.0,
        }
    }
}

/// One block's bookkeeping: a contiguous node range inside a healthy lump.
#[derive(Clone, Debug)]
struct Block {
    nodes: Vec<usize>,
    /// Free whole-node slots (vector of node indices not in use by GPU jobs).
    free: Vec<usize>,
}

/// An in-flight attempt.
struct RunInfo {
    alloc: Vec<usize>,
    cpu_pin: Option<usize>,
    start: f64,
    speed: f64,
    attempt: usize,
    epoch: u64,
    /// The scheduled `TaskEnd` is a transient death, not a completion.
    fails: bool,
}

/// The `mpi_jm` scheduler.
pub struct MpiJmScheduler {
    config: MpiJmConfig,
}

impl MpiJmScheduler {
    /// Build with a config.
    pub fn new(config: MpiJmConfig) -> Self {
        assert!(
            config.lump_nodes.is_multiple_of(config.block_nodes),
            "blocks tile lumps"
        );
        Self { config }
    }

    /// Number of healthy lumps and the blocks they contribute.
    fn build_blocks(&self, cluster: &Cluster) -> (usize, usize, Vec<Block>) {
        let ln = self.config.lump_nodes;
        let mut blocks = Vec::new();
        let mut lumps_total = 0;
        let mut lumps_failed = 0;
        let mut start = 0;
        // Allocations smaller than (or not divisible by) the lump size get
        // a trailing partial lump: mpi_jm shrinks its last mpirun to the
        // nodes that exist rather than leaving them idle. Only full blocks
        // are formed inside it — jobs never straddle a block boundary.
        while start + self.config.block_nodes <= cluster.nodes.len() {
            let end = (start + ln).min(cluster.nodes.len());
            lumps_total += 1;
            let lump: Vec<usize> = (start..end).collect();
            let healthy = lump.iter().all(|&i| !cluster.nodes[i].failed);
            if healthy {
                for chunk in lump.chunks(self.config.block_nodes) {
                    if chunk.len() == self.config.block_nodes {
                        blocks.push(Block {
                            nodes: chunk.to_vec(),
                            free: chunk.to_vec(),
                        });
                    }
                }
            } else {
                lumps_failed += 1;
            }
            start += ln;
        }
        (lumps_total, lumps_failed, blocks)
    }

    /// Run `workload` on `cluster` on a pristine machine (no mid-run
    /// faults).
    ///
    /// # Panics
    /// If any GPU task needs more nodes than a block holds (jobs must not
    /// straddle blocks) or the workload cannot fit at all.
    pub fn run(&self, cluster: &mut Cluster, workload: &Workload) -> SimReport {
        self.run_with_faults(
            cluster,
            workload,
            &FaultConfig::default(),
            &RetryPolicy::default(),
        )
    }

    /// Run `workload` on `cluster` under the given mid-run fault model.
    ///
    /// Recovery policy: a node crash kills only the jobs bound to that
    /// node; the block re-spawns with its surviving nodes, and each victim
    /// is requeued with capped exponential backoff up to the retry budget.
    /// Nodes crossing the blacklist threshold of attributed transient
    /// faults are quarantined out of their block.
    pub fn run_with_faults(
        &self,
        cluster: &mut Cluster,
        workload: &Workload,
        faults: &FaultConfig,
        policy: &RetryPolicy,
    ) -> SimReport {
        let n = workload.len();
        let n_nodes = cluster.nodes.len();
        let (_lumps, lumps_failed, mut blocks) = self.build_blocks(cluster);
        assert!(
            !blocks.is_empty(),
            "no healthy lumps: {lumps_failed} lumps failed"
        );
        for t in &workload.tasks {
            if let TaskKind::PropagatorSolve { nodes } = t.kind {
                assert!(
                    nodes <= self.config.block_nodes,
                    "job of {nodes} nodes exceeds block size {}",
                    self.config.block_nodes
                );
            }
        }

        let sobs = SchedObs::new("mpi_jm");
        let injector = FaultInjector::new(*faults, n_nodes);
        let mut recovery = RecoveryState::new(n, n_nodes);
        let mut stats = FaultStats {
            nic_degraded_nodes: (0..n_nodes).filter(|&i| injector.nic_degraded(i)).count(),
            ..FaultStats::default()
        };
        let mut node_dead: Vec<bool> = cluster.nodes.iter().map(|nd| nd.failed).collect();

        let mut dep_count: Vec<usize> = workload.tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for t in &workload.tasks {
            for &d in &t.deps {
                dependents[d].push(t.id);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| dep_count[i] == 0).collect();
        let mut records: Vec<Option<TaskRecord>> = vec![None; n];
        let mut wasted_records: Vec<TaskRecord> = Vec::new();
        let mut running: Vec<Option<RunInfo>> = (0..n).map(|_| None).collect();
        let mut epoch: Vec<u64> = vec![0; n];
        let mut events: BinaryHeap<Reverse<(Ord64, Event)>> = BinaryHeap::new();
        for node in 0..n_nodes {
            let ct = injector.crash_time(node);
            if ct.is_finite() {
                events.push(Reverse((Ord64(ct), Event::NodeCrash { node })));
            }
        }
        let mut time = 0.0f64;
        let mut busy_node_seconds = 0.0;
        let mut completed_flops = 0.0;
        let mut done = vec![false; n];
        let mut settled = 0usize; // done + permanently failed

        // CPU availability per node (contractions pin one node's CPUs).
        let mut cpu_free: Vec<bool> = cluster.nodes.iter().map(|_| true).collect();

        fn cascade_fail(
            id: usize,
            time: f64,
            sobs: &SchedObs,
            recovery: &mut RecoveryState,
            dependents: &[Vec<usize>],
            stats: &mut FaultStats,
            settled: &mut usize,
        ) {
            let mut stack = vec![id];
            while let Some(i) = stack.pop() {
                for &dep in &dependents[i] {
                    if !recovery.failed[dep] {
                        recovery.failed[dep] = true;
                        stats.abandoned_tasks += 1;
                        sobs.task_abandoned(time, dep);
                        *settled += 1;
                        stack.push(dep);
                    }
                }
            }
        }

        // Return an allocation to its block, skipping retired nodes.
        let release_to_block = |blocks: &mut Vec<Block>, alloc: &[usize], node_dead: &[bool]| {
            if alloc.is_empty() {
                return;
            }
            for b in blocks.iter_mut() {
                if alloc.iter().all(|i| b.nodes.contains(i)) {
                    b.free
                        .extend(alloc.iter().copied().filter(|&i| !node_dead[i]));
                    b.free.sort_unstable();
                    break;
                }
            }
        };

        // Retire a node from its block: the block re-spawns at the boundary
        // with its surviving nodes.
        let retire_node = |blocks: &mut Vec<Block>, node: usize| {
            for b in blocks.iter_mut() {
                b.free.retain(|&x| x != node);
                b.nodes.retain(|&x| x != node);
            }
        };

        while settled < n {
            let mut started_any = true;
            while started_any {
                started_any = false;
                let mut next_ready = Vec::new();
                for &id in &ready {
                    if recovery.failed[id] {
                        continue; // abandoned while queued
                    }
                    let t = &workload.tasks[id];
                    // (allocated GPU nodes, pinned CPU host) for this start.
                    let placement: Option<(Vec<usize>, Option<usize>)> = match t.kind {
                        TaskKind::PropagatorSolve { nodes } => blocks
                            .iter_mut()
                            .find(|b| b.free.len() >= nodes)
                            .map(|block| (block.free.drain(..nodes).collect(), None)),
                        TaskKind::Contraction => {
                            let host = if self.config.co_schedule {
                                cpu_free
                                    .iter()
                                    .enumerate()
                                    .position(|(i, &f)| f && !node_dead[i])
                            } else {
                                // Without co-scheduling a contraction needs a
                                // whole free node inside some block.
                                blocks
                                    .iter()
                                    .flat_map(|b| b.free.iter())
                                    .find(|&&i| cpu_free[i])
                                    .copied()
                            };
                            host.map(|host| {
                                cpu_free[host] = false;
                                if !self.config.co_schedule {
                                    // Occupies the node exclusively.
                                    for b in blocks.iter_mut() {
                                        b.free.retain(|&x| x != host);
                                    }
                                    (vec![host], Some(host))
                                } else {
                                    (Vec::new(), Some(host))
                                }
                            })
                        }
                        TaskKind::Io => Some((Vec::new(), None)),
                    };
                    let Some((alloc, cpu_pin)) = placement else {
                        next_ready.push(id);
                        continue;
                    };
                    let attempt = recovery.start_attempt(id, &mut stats);
                    let fate = injector.attempt_fate(id, attempt);
                    let mut speed = match t.kind {
                        TaskKind::PropagatorSolve { .. } => {
                            cluster.group_speed(&alloc)
                                * self.config.mpi_efficiency
                                * injector.nic_speed(&alloc)
                        }
                        TaskKind::Contraction => {
                            // Launch sites pin every contraction to a CPU
                            // host before queuing it.
                            let Some(host) = cpu_pin else {
                                unreachable!("contraction launched without a cpu pin")
                            };
                            cluster.nodes[host].speed
                        }
                        TaskKind::Io => 1.0,
                    };
                    if let AttemptFate::Straggler { slowdown } = fate {
                        speed *= slowdown;
                        stats.stragglers += 1;
                    }
                    let start = if matches!(t.kind, TaskKind::Io) {
                        time
                    } else {
                        time + self.config.spawn_seconds
                    };
                    let dur = t.base_seconds / speed;
                    let (end, fails) = match fate {
                        AttemptFate::TransientFailure { at_fraction } => {
                            (start + dur * at_fraction, true)
                        }
                        _ => (start + dur, false),
                    };
                    epoch[id] += 1;
                    sobs.task_start(
                        start,
                        id,
                        attempt,
                        alloc.len().max(usize::from(cpu_pin.is_some())),
                    );
                    running[id] = Some(RunInfo {
                        alloc,
                        cpu_pin,
                        start,
                        speed,
                        attempt,
                        epoch: epoch[id],
                        fails,
                    });
                    events.push(Reverse((
                        Ord64(end),
                        Event::TaskEnd {
                            id,
                            epoch: epoch[id],
                        },
                    )));
                    started_any = true;
                }
                ready = next_ready;
            }
            sobs.queue_depth(ready.len());
            sobs.nodes_busy(
                running
                    .iter()
                    .flatten()
                    .map(|ri| ri.alloc.len().max(usize::from(ri.cpu_pin.is_some())))
                    .sum(),
            );

            let any_running = running.iter().any(|r| r.is_some());
            if !any_running && events.is_empty() {
                if !ready.is_empty() && faults.enabled() {
                    // Capacity shrank below the stranded tasks' footprints:
                    // abandon them gracefully instead of panicking.
                    for id in ready.drain(..) {
                        if !recovery.failed[id] {
                            recovery.failed[id] = true;
                            stats.abandoned_tasks += 1;
                            sobs.task_abandoned(time, id);
                            settled += 1;
                            cascade_fail(
                                id,
                                time,
                                &sobs,
                                &mut recovery,
                                &dependents,
                                &mut stats,
                                &mut settled,
                            );
                        }
                    }
                    continue;
                }
                assert!(
                    ready.is_empty(),
                    "tasks pending but nothing running: workload too big for blocks"
                );
                break;
            }

            let Some(Reverse((Ord64(t_ev), ev))) = events.pop() else {
                break;
            };
            time = time.max(t_ev);
            match ev {
                Event::TaskEnd { id, epoch: ep } => {
                    let Some(ri) = running[id].take_if(|ri| ri.epoch == ep) else {
                        continue; // tombstone of a killed attempt
                    };
                    release_to_block(&mut blocks, &ri.alloc, &node_dead);
                    if let Some(host) = ri.cpu_pin {
                        cpu_free[host] = true;
                    }
                    let t = &workload.tasks[id];
                    if ri.fails {
                        stats.transient_failures += 1;
                        sobs.task_killed(time, id, ri.attempt, "transient");
                        stats.wasted_node_seconds +=
                            (time - ri.start).max(0.0) * ri.alloc.len() as f64;
                        wasted_records.push(TaskRecord {
                            id,
                            start: ri.start,
                            end: time,
                            nodes: ri.alloc.clone(),
                            speed: ri.speed,
                            attempts: ri.attempt,
                        });
                        let culprit = ri.alloc.first().copied().or(ri.cpu_pin);
                        if let Some(node) = culprit {
                            if recovery.attribute_node_fault(node, policy) && !node_dead[node] {
                                node_dead[node] = true;
                                cluster.mark_crashed(node);
                                retire_node(&mut blocks, node);
                                stats.blacklisted_nodes += 1;
                                sobs.blacklist(time, node);
                            }
                        }
                        if recovery.requeue_or_fail(id, time, policy, &mut stats) {
                            sobs.requeue(time, id, recovery.ready_at[id]);
                            events.push(Reverse((
                                Ord64(recovery.ready_at[id]),
                                Event::TaskReady { id },
                            )));
                        } else {
                            settled += 1;
                            sobs.task_failed(time, id);
                            cascade_fail(
                                id,
                                time,
                                &sobs,
                                &mut recovery,
                                &dependents,
                                &mut stats,
                                &mut settled,
                            );
                        }
                    } else {
                        if matches!(t.kind, TaskKind::PropagatorSolve { .. }) {
                            busy_node_seconds += (time - ri.start) * ri.alloc.len() as f64;
                        }
                        completed_flops += t.flops;
                        records[id] = Some(TaskRecord {
                            id,
                            start: ri.start,
                            end: time,
                            nodes: if ri.alloc.is_empty() {
                                ri.cpu_pin.map(|h| vec![h]).unwrap_or_default()
                            } else {
                                ri.alloc
                            },
                            speed: ri.speed,
                            attempts: ri.attempt,
                        });
                        done[id] = true;
                        settled += 1;
                        sobs.task_end(time, id, ri.attempt);
                        for &dep in &dependents[id] {
                            dep_count[dep] -= 1;
                            if dep_count[dep] == 0 && !recovery.failed[dep] {
                                ready.push(dep);
                            }
                        }
                    }
                }
                Event::NodeCrash { node } => {
                    if node_dead[node] {
                        continue; // startup-failed or already blacklisted
                    }
                    node_dead[node] = true;
                    stats.node_crashes += 1;
                    sobs.node_crash(time, node);
                    // Kill only the jobs bound to this node; the block
                    // re-spawns at the boundary with its survivors.
                    for id in 0..n {
                        let Some(ri) = running[id]
                            .take_if(|ri| ri.alloc.contains(&node) || ri.cpu_pin == Some(node))
                        else {
                            continue;
                        };
                        release_to_block(&mut blocks, &ri.alloc, &node_dead);
                        if let Some(host) = ri.cpu_pin {
                            cpu_free[host] = true;
                        }
                        sobs.task_killed(time, id, ri.attempt, "node_crash");
                        stats.wasted_node_seconds +=
                            (time - ri.start).max(0.0) * ri.alloc.len().max(1) as f64;
                        wasted_records.push(TaskRecord {
                            id,
                            start: ri.start,
                            end: time,
                            nodes: if ri.alloc.is_empty() {
                                vec![node]
                            } else {
                                ri.alloc
                            },
                            speed: ri.speed,
                            attempts: ri.attempt,
                        });
                        if recovery.requeue_or_fail(id, time, policy, &mut stats) {
                            sobs.requeue(time, id, recovery.ready_at[id]);
                            events.push(Reverse((
                                Ord64(recovery.ready_at[id]),
                                Event::TaskReady { id },
                            )));
                        } else {
                            settled += 1;
                            sobs.task_failed(time, id);
                            cascade_fail(
                                id,
                                time,
                                &sobs,
                                &mut recovery,
                                &dependents,
                                &mut stats,
                                &mut settled,
                            );
                        }
                    }
                    retire_node(&mut blocks, node);
                    cluster.mark_crashed(node);
                }
                Event::TaskReady { id } => {
                    if !done[id] && !recovery.failed[id] && running[id].is_none() {
                        ready.push(id);
                    }
                }
            }
        }

        let completed_tasks = done.iter().filter(|&&d| d).count();
        let failed_tasks = recovery.failed.iter().filter(|&&f| f).count();
        let avail_nodes = blocks.iter().map(|b| b.nodes.len()).sum::<usize>() as f64;
        let report = SimReport {
            makespan: time,
            startup: 0.0,
            busy_node_seconds,
            total_node_seconds: avail_nodes * time,
            records: records.into_iter().flatten().collect(),
            total_flops: workload.total_flops(),
            completed_flops,
            completed_tasks,
            failed_tasks,
            task_attempts: recovery.attempts,
            wasted_records,
            faults: stats,
        };
        sobs.finish(&report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use coral_machine::sierra;

    fn cluster(nodes: usize, jitter: f64, fail: f64, seed: u64) -> Cluster {
        Cluster::new(
            sierra(),
            &ClusterConfig {
                nodes,
                jitter_sigma: jitter,
                startup_failure_prob: fail,
                seed,
            },
        )
    }

    #[test]
    fn jobs_never_straddle_blocks() {
        let sched = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 16,
            block_nodes: 4,
            ..MpiJmConfig::default()
        });
        let w = Workload::heterogeneous_solves(40, 4, 300.0, 0.3, 1e15, 3);
        let mut c = cluster(32, 0.05, 0.0, 5);
        let r = sched.run(&mut c, &w);
        for rec in &r.records {
            if rec.nodes.len() == 4 {
                assert!(
                    Cluster::is_contiguous(&rec.nodes),
                    "block allocations stay contiguous"
                );
                // All four nodes in the same block of 4.
                let block = rec.nodes[0] / 4;
                assert!(rec.nodes.iter().all(|&i| i / 4 == block));
            }
        }
    }

    #[test]
    fn failed_lumps_are_dropped_not_fatal() {
        let sched = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 8,
            block_nodes: 4,
            ..MpiJmConfig::default()
        });
        // High failure rate: some lumps must drop, the run must still finish.
        let mut c = cluster(64, 0.0, 0.05, 7);
        let w = Workload::uniform_solves(20, 4, 100.0, 1e15);
        let r = sched.run(&mut c, &w);
        assert_eq!(r.records.len(), 20);
        assert!(r.total_node_seconds < 64.0 * r.makespan, "capacity shrank");
    }

    #[test]
    fn co_scheduling_makes_contractions_free() {
        // Workload: solves + contractions heavy enough to contend for nodes
        // (a backlog of contractions from earlier configurations, as in the
        // production workflow). With co-scheduling the makespan stays near
        // the solves-only value; without it, contractions steal GPU nodes.
        let mut w = Workload::figure2_workflow(4, 8, 4, 400.0, 1e15);
        for t in w.tasks.iter_mut() {
            if matches!(t.kind, TaskKind::Contraction) {
                t.base_seconds *= 10.0;
            }
        }
        let solves_only = Workload::uniform_solves(32, 4, 400.0, 1e15);

        let co = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 16,
            block_nodes: 4,
            co_schedule: true,
            ..MpiJmConfig::default()
        });
        let no_co = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 16,
            block_nodes: 4,
            co_schedule: false,
            ..MpiJmConfig::default()
        });

        let m_solves = co.run(&mut cluster(16, 0.0, 0.0, 9), &solves_only).makespan;
        let m_co = co.run(&mut cluster(16, 0.0, 0.0, 9), &w).makespan;
        let m_noco = no_co.run(&mut cluster(16, 0.0, 0.0, 9), &w).makespan;

        assert!(
            m_co < m_solves * 1.15,
            "co-scheduled contractions nearly free: {m_co} vs {m_solves}"
        );
        assert!(
            m_noco > m_co * 1.03,
            "dropping co-scheduling must cost time: {m_noco} vs {m_co}"
        );
    }

    #[test]
    fn mpi_efficiency_scales_run_time() {
        let w = Workload::uniform_solves(8, 4, 100.0, 1e15);
        let fast = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 8,
            block_nodes: 4,
            mpi_efficiency: 1.0,
            ..MpiJmConfig::default()
        });
        let slow = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 8,
            block_nodes: 4,
            mpi_efficiency: 0.8,
            ..MpiJmConfig::default()
        });
        let m1 = fast.run(&mut cluster(8, 0.0, 0.0, 11), &w).makespan;
        let m2 = slow.run(&mut cluster(8, 0.0, 0.0, 11), &w).makespan;
        assert!(m2 > m1 * 1.2, "{m2} vs {m1}");
    }

    #[test]
    fn dependencies_are_honored() {
        let sched = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 8,
            block_nodes: 4,
            ..MpiJmConfig::default()
        });
        let w = Workload::figure2_workflow(1, 3, 2, 50.0, 1e14);
        let r = sched.run(&mut cluster(8, 0.0, 0.0, 13), &w);
        for t in &w.tasks {
            for &d in &t.deps {
                assert!(r.records[d].end <= r.records[t.id].start + 1e-9);
            }
        }
    }

    #[test]
    fn crash_blast_radius_is_one_job_not_the_machine() {
        // 8 two-node jobs on 16 nodes; a mid-run crash must kill only the
        // job(s) on the crashed node, requeue them, and still finish the
        // rest on first attempt.
        let sched = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 8,
            block_nodes: 4,
            ..MpiJmConfig::default()
        });
        let w = Workload::uniform_solves(8, 2, 5_000.0, 1e15);
        let faults = FaultConfig {
            node_mtbf_seconds: 40_000.0,
            seed: 3,
            ..FaultConfig::default()
        };
        let r = sched.run_with_faults(
            &mut cluster(16, 0.0, 0.0, 7),
            &w,
            &faults,
            &RetryPolicy::default(),
        );
        assert!(r.faults.node_crashes >= 1, "{:?}", r.faults);
        assert_eq!(r.completed_tasks + r.failed_tasks, 8);
        let retried = r.records.iter().filter(|rec| rec.attempts > 1).count() + r.failed_tasks;
        assert!(
            retried <= 2 * r.faults.node_crashes + r.faults.transient_failures,
            "blast radius must be per-job: {retried} retried for {:?}",
            r.faults
        );
    }

    #[test]
    fn degrades_gracefully_as_nodes_die() {
        // Aggressive MTBF: nodes keep dying, yet the scheduler must neither
        // panic nor lose accounting — every task completes or fails.
        let sched = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 8,
            block_nodes: 4,
            ..MpiJmConfig::default()
        });
        let w = Workload::heterogeneous_solves(64, 4, 800.0, 0.4, 1e15, 19);
        let faults = FaultConfig {
            node_mtbf_seconds: 20_000.0,
            transient_fail_prob: 0.1,
            seed: 29,
            ..FaultConfig::default()
        };
        let r = sched.run_with_faults(
            &mut cluster(32, 0.05, 0.0, 11),
            &w,
            &faults,
            &RetryPolicy::default(),
        );
        assert_eq!(r.completed_tasks + r.failed_tasks, 64);
        let mut seen = std::collections::HashSet::new();
        for rec in &r.records {
            assert!(seen.insert(rec.id), "task {} completed twice", rec.id);
        }
        // Every failure is accounted for as a deliberate recovery decision,
        // not silently dropped.
        assert_eq!(
            r.faults.permanent_failures + r.faults.abandoned_tasks,
            r.failed_tasks
        );
        // Graceful degradation: even while most of the machine dies, the
        // early-run capacity completes a meaningful slice of the work. (The
        // exact fraction depends on the crash schedule; >0.25 is robust.)
        assert!(
            r.completed_work_fraction() > 0.25,
            "too little work finished: {}",
            r.completed_work_fraction()
        );
    }
}
