//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--results DIR]
//!
//! experiments:
//!   table1    performance attributes (Table I)
//!   table2    machine specifications (Table II)
//!   fig1      FH vs traditional effective gA (a09m310 model)
//!   fig3      strong scaling, 48^3x64, Titan/Ray/Sierra
//!   fig4      strong scaling, 96^3x144, Summit
//!   fig5      Sierra weak scaling under three MPI deployments
//!   fig6      Summit weak scaling under METAQ
//!   fig7      per-solve performance histogram at 13488 GPUs
//!   backfill  naive vs METAQ vs mpi_jm utilization
//!   faults    mid-run failure sweep: blast radius and recovery per scheduler
//!   startup   mpi_jm partitioned startup model
//!   budget    application time budget (Fig. 2 fractions)
//!   speedup   machine-to-machine speedup over Titan
//!   memory    solver memory footprints and minimum-GPU floors
//!   ablation  design-choice ablations (policy tuning, delta, precision, placement)
//!   pipeline  real end-to-end physics run on a small lattice
//!   metrics   deterministic observability snapshot (results/metrics.json golden)
//!   bench     threaded kernel benchmarks at 1 and N pool threads
//!             (--quick for CI smoke, --check-schema FILE to diff a
//!             committed BENCH_kernels.json against this build's schema)
//!   comms     execute the halo-exchange policies on the sharded dslash
//!             and write measured-vs-analytic columns to comms.csv
//!             (--quick for CI smoke, --check-schema FILE to verify a
//!             committed comms.csv still has this build's columns)
//!   chaos     fault-injection sweep: wire-fault intensity x comm policy
//!             x {checkpointing on, off} through the fault-tolerant CG
//!             (--quick for CI smoke, --check-schema FILE to verify a
//!             committed chaos.csv still has this build's columns)
//!   deflation batched multi-RHS solves vs the 1-RHS baseline, with and
//!             without the Lanczos low-mode deflation guess; asserts the
//!             block path bit-identical to sequential CG
//!             (--quick for CI smoke, --check-schema FILE to verify a
//!             committed deflation.csv still has this build's columns)
//!   serve     solve-service gateway under deterministic Zipf load:
//!             batching, content-addressed cache with LRU spill, admission
//!             control, fault injection under the service; writes
//!             serve.{json,md} (--quick for CI smoke, --check-schema FILE
//!             to verify a committed serve.json against this build)
//!   lint      workspace static analysis (determinism/safety/layering
//!             rules R1-R6; --check gates on the committed
//!             lint-baseline.json, --update-baseline regenerates it)
//!   verify    concurrency verification: exhaustive schedule exploration
//!             of the bounded protocol models (mailbox dedup, NACK
//!             retransmit, checkpoint rotation, cache get-or-compute)
//!             plus seeded-defect twins;
//!             --check gates on results/verify.{json,md} and the
//!             committed traces, --trace FILE replays one schedule
//!   all       everything above except bench, comms, chaos, and deflation
//!             (timings are machine-specific)
//! ```

use bench::experiments::{
    ablation, chaos, comms, deflation, faults, fig1, fig3, fig5, jobs, kernels, lint, metrics,
    pipeline, serve, tables, verify,
};
use bench::output::ExperimentOutput;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `lint` has its own flags and exit-code contract; handle it before the
    // generic experiment machinery.
    if args.first().map(String::as_str) == Some("lint") {
        std::process::exit(lint::run_lint(&args[1..]));
    }
    // So does `verify`: its exit code is the verification verdict.
    if args.first().map(String::as_str) == Some("verify") {
        std::process::exit(verify::run_verify(&args[1..]));
    }
    let mut experiment = None;
    let mut results_dir = "results".to_string();
    let mut quick = false;
    let mut check_schema: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--results" => {
                i += 1;
                results_dir = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--results needs a directory");
                    std::process::exit(2);
                });
            }
            "--quick" => quick = true,
            "--check-schema" => {
                i += 1;
                check_schema = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--check-schema needs a file");
                    std::process::exit(2);
                }));
            }
            name if experiment.is_none() => experiment = Some(name.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(experiment) = experiment else {
        eprintln!(
            "usage: repro <table1|table2|fig1|fig3|fig4|fig5|fig6|fig7|backfill|faults|startup|budget|speedup|memory|ablation|pipeline|metrics|bench|comms|chaos|deflation|serve|all> [--results DIR] [--quick] [--check-schema FILE]"
        );
        std::process::exit(2);
    };

    let out = ExperimentOutput::new(&results_dir).unwrap_or_else(|e| {
        eprintln!("repro: cannot create results directory {results_dir}: {e}");
        std::process::exit(1);
    });
    if let Err(e) = out.ensure_writable() {
        eprintln!("repro: results directory {results_dir} is not writable: {e}");
        std::process::exit(1);
    }

    let run_one = |name: &str, out: &ExperimentOutput| match name {
        "table1" => tables::table1(),
        "table2" => tables::table2(),
        "fig1" => {
            fig1::run(out, 800, 8000, 20180101);
        }
        "fig3" => {
            fig3::run_fig3(out);
        }
        "fig4" => {
            fig3::run_fig4(out);
        }
        "fig5" => {
            fig5::run_fig5(out);
        }
        "fig6" => {
            fig5::run_fig6(out);
        }
        "fig7" => {
            fig5::run_fig7(out);
        }
        "backfill" => {
            jobs::run_backfill(out);
        }
        "faults" => {
            faults::run_faults(out);
        }
        "startup" => jobs::run_startup(out),
        "budget" => {
            jobs::run_budget(out);
        }
        "speedup" => jobs::run_speedup(out),
        "memory" => jobs::run_memory(out),
        "pipeline" => {
            pipeline::run(out, [4, 4, 4, 8], 3, 2018);
        }
        "ablation" => {
            ablation::run_policy_ablation(out);
            ablation::run_solver_ablation(out);
            ablation::run_placement(out);
        }
        "metrics" => {
            metrics::run_metrics(out);
        }
        "bench" => {
            if let Err(e) = kernels::run_bench(out, &kernels::BenchOpts { quick }) {
                eprintln!("repro bench: cannot write results: {e}");
                std::process::exit(1);
            }
            if let Some(file) = &check_schema {
                kernels::check_schema(out, file);
            }
        }
        "comms" => {
            if let Err(e) = comms::run_comms(out, &comms::CommsOpts { quick }) {
                eprintln!("repro comms: cannot write results: {e}");
                std::process::exit(1);
            }
            if let Some(file) = &check_schema {
                comms::check_schema(file);
            }
        }
        "chaos" => {
            if let Err(e) = chaos::run_chaos(out, &chaos::ChaosOpts { quick }) {
                eprintln!("repro chaos: cannot write results: {e}");
                std::process::exit(1);
            }
            if let Some(file) = &check_schema {
                chaos::check_schema(file);
            }
        }
        "deflation" => {
            if let Err(e) = deflation::run_deflation(out, &deflation::DeflationOpts { quick }) {
                eprintln!("repro deflation: cannot write results: {e}");
                std::process::exit(1);
            }
            if let Some(file) = &check_schema {
                deflation::check_schema(file);
            }
        }
        "serve" => {
            if let Err(e) = serve::run_serve(out, &serve::ServeOpts { quick }) {
                eprintln!("repro serve: cannot write results: {e}");
                std::process::exit(1);
            }
            if let Some(file) = &check_schema {
                serve::check_schema(out, file);
            }
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    };

    if experiment == "all" {
        for name in [
            "table1", "table2", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "backfill",
            "faults", "startup", "budget", "speedup", "memory", "ablation", "pipeline", "metrics",
        ] {
            run_one(name, &out);
        }
    } else {
        run_one(&experiment, &out);
    }
    println!("\nresults written to {results_dir}/");
}
