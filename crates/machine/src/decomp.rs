//! Domain decomposition of the 4D lattice across GPUs and the resulting
//! halo traffic of the radius-one stencil.
//!
//! Following QUDA's practice the 4D volume is block-decomposed over a
//! process grid; the fifth dimension is never split. The decomposition
//! search minimizes local surface area subject to divisibility, and then
//! greedily assigns partitioned directions to intra-node GPU pairs (largest
//! halo first) so NVLink carries as much of the exchange as possible — the
//! paper's "NVLink connections between GPUs in the node can be used
//! optimally" point.

use serde::{Deserialize, Serialize};

/// Bytes per halo site: a spin-projected half-spinor (6 complex) in 16-bit
/// fixed point, plus its scale amortized away.
pub const HALO_BYTES_PER_SITE: f64 = 24.0;

/// One direction's share of the halo exchange.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HaloTraffic {
    /// Direction index (0..4).
    pub dir: usize,
    /// Halo sites per exchange per GPU (both faces, one operator apply).
    pub sites: f64,
    /// Whether this direction's partner GPUs share a node.
    pub intra_node: bool,
}

/// A decomposition of the lattice over `n_gpus` GPUs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Decomposition {
    /// Process grid `[gx, gy, gz, gt]`.
    pub grid: [usize; 4],
    /// Local 4D extents per GPU.
    pub local_dims: [usize; 4],
    /// Fifth-dimension extent (not decomposed).
    pub l5: usize,
    /// Halo traffic per partitioned direction.
    pub halos: Vec<HaloTraffic>,
}

impl Decomposition {
    /// Find the surface-minimizing decomposition of `dims` over `n_gpus`,
    /// assigning directions to intra-node links greedily.
    ///
    /// Returns `None` when `n_gpus` cannot be factored into the lattice (no
    /// grid with every local extent ≥ 2 divides the volume evenly).
    pub fn best(dims: [usize; 4], l5: usize, n_gpus: usize, gpus_per_node: usize) -> Option<Self> {
        let mut best: Option<([usize; 4], f64)> = None;
        let mut grid = [1usize; 4];
        search(dims, n_gpus, 0, &mut grid, &mut best);
        let (grid, _) = best?;
        // The search only emits divisible grids; `with_grid` re-validates so
        // an uneven slicing can never be constructed silently.
        Self::with_grid(dims, l5, grid, gpus_per_node)
    }

    /// Build the decomposition for an explicit rank grid.
    ///
    /// Returns `None` (never a silently uneven slicing) when any extent is
    /// not divisible by its rank-grid factor, when a partitioned direction
    /// would leave a local extent below the stencil radius requirement
    /// (≥ 2), or when a grid factor is zero.
    pub fn with_grid(
        dims: [usize; 4],
        l5: usize,
        grid: [usize; 4],
        gpus_per_node: usize,
    ) -> Option<Self> {
        for mu in 0..4 {
            if grid[mu] == 0 || !dims[mu].is_multiple_of(grid[mu]) {
                return None;
            }
            if grid[mu] > 1 && dims[mu] / grid[mu] < 2 {
                return None;
            }
        }
        let n_gpus: usize = grid.iter().product();
        let local = [
            dims[0] / grid[0],
            dims[1] / grid[1],
            dims[2] / grid[2],
            dims[3] / grid[3],
        ];
        let local_vol: usize = local.iter().product();

        // Halo sites per face = local volume / local extent; both faces.
        let mut dirs: Vec<(usize, f64)> = (0..4)
            .filter(|&mu| grid[mu] > 1)
            .map(|mu| (mu, 2.0 * (local_vol / local[mu]) as f64 * l5 as f64))
            .collect();
        // Largest halo first gets the intra-node slots.
        dirs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));

        let mut node_budget = gpus_per_node.max(1);
        let mut halos = Vec::new();
        for (mu, sites) in dirs {
            let g = grid[mu];
            let intra = g <= node_budget && node_budget.is_multiple_of(g) && n_gpus > 1;
            if intra {
                node_budget /= g;
            }
            halos.push(HaloTraffic {
                dir: mu,
                sites,
                intra_node: intra,
            });
        }

        let d = Self {
            grid,
            local_dims: local,
            l5,
            halos,
        };
        d.assert_consistent();
        Some(d)
    }

    /// Structural invariants every constructed decomposition must satisfy:
    /// the halo list covers exactly the partitioned directions (so
    /// `messages_per_apply` — two faces per halo — agrees with the number of
    /// non-self neighbor exchanges), each direction appears once, and each
    /// halo's site count matches the face geometry.
    pub fn assert_consistent(&self) {
        let partitioned: Vec<usize> = (0..4).filter(|&mu| self.grid[mu] > 1).collect();
        assert_eq!(
            self.messages_per_apply(),
            2 * partitioned.len(),
            "messages_per_apply must be two faces per non-self halo"
        );
        let mut dirs: Vec<usize> = self.halos.iter().map(|h| h.dir).collect();
        dirs.sort_unstable();
        assert_eq!(
            dirs, partitioned,
            "halo list must cover exactly the partitioned directions"
        );
        let local_vol: usize = self.local_dims.iter().product();
        for h in &self.halos {
            let expect = 2.0 * (local_vol / self.local_dims[h.dir]) as f64 * self.l5 as f64;
            assert_eq!(
                h.sites, expect,
                "halo sites in direction {} must match the face geometry",
                h.dir
            );
        }
    }

    /// Local 4D volume per GPU.
    pub fn local_volume(&self) -> usize {
        self.local_dims.iter().product()
    }

    /// Local 5D sites per GPU.
    pub fn local_sites_5d(&self) -> f64 {
        self.local_volume() as f64 * self.l5 as f64
    }

    /// Fraction of local sites that sit on a communicated surface.
    pub fn surface_fraction(&self) -> f64 {
        let vol = self.local_volume() as f64;
        let mut surface = 0.0;
        for h in &self.halos {
            surface += h.sites / self.l5 as f64;
        }
        (surface / vol).min(1.0)
    }

    /// Total halo bytes per operator application per GPU, split into
    /// (intra-node, inter-node).
    pub fn halo_bytes(&self) -> (f64, f64) {
        let mut intra = 0.0;
        let mut inter = 0.0;
        for h in &self.halos {
            let bytes = h.sites * HALO_BYTES_PER_SITE;
            if h.intra_node {
                intra += bytes;
            } else {
                inter += bytes;
            }
        }
        (intra, inter)
    }

    /// Number of distinct neighbor messages per operator application.
    pub fn messages_per_apply(&self) -> usize {
        2 * self.halos.len()
    }
}

/// Exhaustive search over grids dividing the lattice (4 directions, each
/// factor must divide the extent and leave a local extent ≥ 2).
fn search(
    dims: [usize; 4],
    remaining: usize,
    mu: usize,
    grid: &mut [usize; 4],
    best: &mut Option<([usize; 4], f64)>,
) {
    if mu == 4 {
        if remaining != 1 {
            return;
        }
        let local: Vec<f64> = (0..4).map(|i| (dims[i] / grid[i]) as f64).collect();
        let vol: f64 = local.iter().product();
        let mut surface = 0.0;
        for i in 0..4 {
            if grid[i] > 1 {
                surface += 2.0 * vol / local[i];
            }
        }
        if best.as_ref().is_none_or(|(_, s)| surface < *s) {
            *best = Some((*grid, surface));
        }
        return;
    }
    let mut f = 1;
    while f <= remaining {
        if remaining.is_multiple_of(f) && dims[mu].is_multiple_of(f) && dims[mu] / f >= 2 {
            grid[mu] = f;
            search(dims, remaining / f, mu + 1, grid, best);
        }
        f += 1;
    }
    grid[mu] = 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_gpu_has_no_halos() {
        let d = Decomposition::best([48, 48, 48, 64], 12, 1, 4).expect("fits");
        assert_eq!(d.grid, [1, 1, 1, 1]);
        assert!(d.halos.is_empty());
        assert_eq!(d.local_volume(), 48 * 48 * 48 * 64);
        assert_eq!(d.halo_bytes(), (0.0, 0.0));
    }

    #[test]
    fn grid_covers_all_gpus_and_divides_lattice() {
        for &g in &[2usize, 4, 8, 16, 32, 64, 128] {
            let d = Decomposition::best([48, 48, 48, 64], 12, g, 4).expect("fits");
            assert_eq!(d.grid.iter().product::<usize>(), g);
            for mu in 0..4 {
                assert_eq!(d.local_dims[mu] * d.grid[mu], [48, 48, 48, 64][mu]);
                assert!(d.local_dims[mu] >= 2);
            }
        }
    }

    #[test]
    fn surface_fraction_grows_with_gpu_count() {
        let f4 = Decomposition::best([48, 48, 48, 64], 12, 4, 4)
            .unwrap()
            .surface_fraction();
        let f64_ = Decomposition::best([48, 48, 48, 64], 12, 64, 4)
            .unwrap()
            .surface_fraction();
        assert!(f64_ > f4, "strong scaling raises surface-to-volume");
    }

    #[test]
    fn intra_node_assignment_respects_budget() {
        let d = Decomposition::best([48, 48, 48, 64], 12, 16, 4).expect("fits");
        // With 4 GPUs/node, at most a product of 4 worth of grid factors can
        // be intra-node.
        let intra_product: usize = d
            .halos
            .iter()
            .filter(|h| h.intra_node)
            .map(|h| d.grid[h.dir])
            .product();
        assert!(intra_product <= 4);
    }

    #[test]
    fn impossible_decomposition_returns_none() {
        // 7 GPUs cannot divide a 48³×64 lattice evenly in any direction.
        assert!(Decomposition::best([48, 48, 48, 64], 12, 7, 4).is_none());
    }

    #[test]
    fn with_grid_rejects_indivisible_dims() {
        // 48 is not divisible by 5; 64/32 = 2 is fine but 48/32 is not.
        assert!(Decomposition::with_grid([48, 48, 48, 64], 12, [5, 1, 1, 1], 4).is_none());
        assert!(Decomposition::with_grid([48, 48, 48, 64], 12, [32, 1, 1, 1], 4).is_none());
        // Divisible but local extent would drop below the stencil radius.
        assert!(Decomposition::with_grid([4, 4, 4, 8], 12, [4, 1, 1, 1], 4).is_none());
        // Zero factors can never slice anything.
        assert!(Decomposition::with_grid([48, 48, 48, 64], 12, [0, 1, 1, 1], 4).is_none());
    }

    #[test]
    fn with_grid_matches_best_for_its_grid() {
        let b = Decomposition::best([48, 48, 48, 64], 12, 16, 4).expect("fits");
        let w = Decomposition::with_grid([48, 48, 48, 64], 12, b.grid, 4).expect("same grid fits");
        assert_eq!(b.local_dims, w.local_dims);
        assert_eq!(b.halo_bytes(), w.halo_bytes());
        assert_eq!(b.messages_per_apply(), w.messages_per_apply());
    }

    proptest::proptest! {
        /// Random dims × grids: `with_grid` either refuses or produces a
        /// decomposition whose invariants all hold and whose message count
        /// agrees with its non-self halo list.
        #[test]
        fn with_grid_is_total_and_consistent(
            d0 in 1usize..=32, d1 in 1usize..=32, d2 in 1usize..=32, d3 in 1usize..=32,
            g0 in 0usize..=8, g1 in 0usize..=8, g2 in 0usize..=8, g3 in 0usize..=8,
            l5 in 1usize..=16,
            gpn in 1usize..=8,
        ) {
            let dims = [d0, d1, d2, d3];
            let grid = [g0, g1, g2, g3];
            let divisible = (0..4).all(|mu| {
                grid[mu] >= 1
                    && dims[mu].is_multiple_of(grid[mu])
                    && (grid[mu] == 1 || dims[mu] / grid[mu] >= 2)
            });
            match Decomposition::with_grid(dims, l5, grid, gpn) {
                None => proptest::prop_assert!(!divisible),
                Some(d) => {
                    proptest::prop_assert!(divisible);
                    d.assert_consistent();
                    let partitioned = (0..4).filter(|&mu| grid[mu] > 1).count();
                    proptest::prop_assert_eq!(d.messages_per_apply(), 2 * partitioned);
                    proptest::prop_assert_eq!(d.messages_per_apply(), 2 * d.halos.len());
                    for mu in 0..4 {
                        proptest::prop_assert_eq!(d.local_dims[mu] * grid[mu], dims[mu]);
                    }
                    // halo_bytes splits, never invents, traffic.
                    let (intra, inter) = d.halo_bytes();
                    let total: f64 = d
                        .halos
                        .iter()
                        .map(|h| h.sites * HALO_BYTES_PER_SITE)
                        .sum();
                    proptest::prop_assert!((intra + inter - total).abs() < 1e-9);
                }
            }
        }

        /// `best` never emits an uneven slicing for any GPU count.
        #[test]
        fn best_is_always_divisible(
            n_gpus in 1usize..=64,
            gpn in 1usize..=8,
        ) {
            if let Some(d) = Decomposition::best([48, 48, 48, 64], 12, n_gpus, gpn) {
                d.assert_consistent();
                proptest::prop_assert_eq!(d.grid.iter().product::<usize>(), n_gpus);
                for mu in 0..4 {
                    proptest::prop_assert_eq!(d.local_dims[mu] * d.grid[mu], [48, 48, 48, 64][mu]);
                    proptest::prop_assert!(d.local_dims[mu] >= 2);
                }
            }
        }
    }

    #[test]
    fn halo_bytes_match_hand_count() {
        // 2 GPUs split the largest dim (t=64): faces are 48³ each, two
        // faces, L5=12, 24 B/site.
        let d = Decomposition::best([48, 48, 48, 64], 12, 2, 4).expect("fits");
        assert_eq!(d.grid[3], 2);
        let (intra, inter) = d.halo_bytes();
        let expect = 2.0 * 48.0f64.powi(3) * 12.0 * 24.0;
        assert!((intra + inter - expect).abs() < 1.0);
    }
}
