//! Offline shim for the `proptest 1.x` surface this workspace uses — but
//! a *real* property-testing runner, not a typecheck stub: strategies
//! generate values from a deterministic splitmix64 stream seeded by the
//! test name, `proptest!` runs the configured number of cases, and a
//! failing case panics with its index and message so it reproduces
//! exactly on re-run. No shrinking (failures report the raw case).

/// Deterministic RNG driving all value generation (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [0, n) without allocating; modulo bias is irrelevant at
    /// property-test sample counts.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A source of values of one type. `generate` must be deterministic in
/// the RNG stream.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map(self, f)
    }
}

pub struct Map<S, F>(S, F);

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.1)(self.0.generate(rng))
    }
}

/// Types sampleable uniformly from a half-open or inclusive range.
pub trait SampleUniform: Sized {
    fn sample_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "empty range in strategy");
                (lo_w + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut TestRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(hi > lo, "empty range in strategy");
                let f = rng.next_f64() as $t;
                lo + f * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform + Copy> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait ArbitraryValue {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        sample::Index(rng.next_u64())
    }
}

pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: ArbitraryValue> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

pub fn any<A: ArbitraryValue>() -> Any<A> {
    Any(std::marker::PhantomData)
}

pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod test_runner {
    use super::TestRng;

    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Runs one property `cases` times with per-case RNGs derived from
    /// the test name, so a given property always sees the same inputs.
    pub struct TestRunner {
        config: Config,
        name_seed: u64,
    }

    impl TestRunner {
        pub fn new(config: Config, name: &str) -> TestRunner {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                config,
                name_seed: h,
            }
        }

        pub fn run(&mut self, mut property: impl FnMut(&mut TestRng) -> TestCaseResult) {
            for case in 0..self.config.cases {
                let mut rng =
                    TestRng::new(self.name_seed ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15));
                if let Err(e) = property(&mut rng) {
                    panic!(
                        "property failed at case {}/{}: {}",
                        case, self.config.cases, e
                    );
                }
            }
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for `vec`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T>(Vec<T>);

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    pub fn select<T: Clone + std::fmt::Debug>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select from empty list");
        Select(values)
    }

    /// An index "into any collection": resolved against a concrete length
    /// with `index(len)`, uniform over `0..len`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Index(pub(crate) u64);

    impl Index {
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                runner.run(|__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, "{:?} != {:?}", left, right);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, "{:?} == {:?}", left, right);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

pub mod prelude {
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (1u8..=255).generate(&mut rng);
            assert!(i >= 1);
        }
    }

    #[test]
    fn vec_strategy_hits_min_and_max_lengths() {
        let mut rng = TestRng::new(2);
        let strat = collection::vec(0.0f64..1.0, 1..4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng).len());
        }
        assert_eq!(seen, [1, 2, 3].into_iter().collect());
        assert_eq!(
            collection::vec(0.0f64..1.0, 24).generate(&mut rng).len(),
            24
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<u64> = (0..20).map(|_| TestRng::new(42).next_u64()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        let mut r1 = TestRng::new(7);
        let mut r2 = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(
                (0u64..1000).generate(&mut r1),
                (0u64..1000).generate(&mut r2)
            );
        }
    }

    #[test]
    #[should_panic(expected = "property failed at case")]
    fn failing_property_reports_case_index() {
        let mut runner = test_runner::TestRunner::new(test_runner::Config::with_cases(8), "x");
        runner.run(|rng| {
            let v = (0u64..100).generate(rng);
            prop_assert!(v < 100); // passes
            prop_assert!(v % 2 == 0, "odd value {}", v); // eventually fails
            Ok(())
        });
    }

    #[test]
    fn select_and_index_stay_in_domain() {
        let mut rng = TestRng::new(3);
        let s = sample::select(vec![4usize, 8, 12, 16]);
        for _ in 0..100 {
            assert!([4, 8, 12, 16].contains(&s.generate(&mut rng)));
            let idx = sample::Index::arbitrary(&mut rng);
            assert!(idx.index(7) < 7);
        }
    }
}
