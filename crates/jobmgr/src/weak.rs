//! Weak-scaling experiments: bundles of fixed-size propagator solves spread
//! over growing machine fractions — the workloads behind Figs. 5 and 6.
//!
//! Each "group" is a 4-node job solving one propagator at a time; the number
//! of groups grows with the allocation. Per-solve durations come from the
//! `coral-machine` solver model at the group's GPU count, modulated by node
//! jitter, fragmentation, and the MPI stack's efficiency; the job managers
//! under comparison are the real scheduler implementations in this crate.

use crate::cluster::{Cluster, ClusterConfig};
use crate::metaq::MetaqScheduler;
use crate::mpijm::{MpiJmConfig, MpiJmScheduler};
use crate::report::SimReport;
use crate::task::Workload;
use autotune::Tuner;
use coral_machine::{MachineSpec, SolverPerfModel};
use serde::{Deserialize, Serialize};

/// The deployment variants compared in Fig. 5 (Sierra) and Fig. 6 (Summit).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MpiFlavor {
    /// Individual jobs submitted to the system batch scheduler
    /// (SpectrumMPI): full solve rate, per-job scheduler start cost, no
    /// single-submission convenience (400 separate jobs at the largest run).
    SpectrumIndividual,
    /// `mpi_jm` over OpenMPI, run as up to 7 independent 100-node blocks
    /// (the April configuration).
    OpenMpiJmBlocks,
    /// `mpi_jm` over MVAPICH2 (required for MPI DPM) as one job submission;
    /// MVAPICH2 was not yet tuned for Sierra, costing sustained rate
    /// ("we anticipate bringing the sustained performance at scale from 15%
    /// to 20%").
    Mvapich2JmSingle,
    /// METAQ with jsrun inside a single allocation (the Fig. 6 Summit mode).
    SpectrumMetaq,
}

impl MpiFlavor {
    /// Solve-rate multiplier of the MPI stack.
    pub fn efficiency(&self) -> f64 {
        match self {
            MpiFlavor::SpectrumIndividual => 1.0,
            MpiFlavor::OpenMpiJmBlocks => 0.97,
            // 15% vs 20% of peak at scale.
            MpiFlavor::Mvapich2JmSingle => 0.78,
            MpiFlavor::SpectrumMetaq => 1.0,
        }
    }

    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            MpiFlavor::SpectrumIndividual => "SpectrumMPI",
            MpiFlavor::OpenMpiJmBlocks => "openMPI: mpi_jm",
            MpiFlavor::Mvapich2JmSingle => "MVAPICH2: mpi_jm",
            MpiFlavor::SpectrumMetaq => "SpectrumMPI: METAQ",
        }
    }
}

/// One weak-scaling sample.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WeakScalingPoint {
    /// Total GPUs engaged.
    pub n_gpus: usize,
    /// Sustained aggregate rate, PFLOP/s.
    pub pflops: f64,
    /// Node utilization over the run.
    pub utilization: f64,
    /// Makespan, seconds.
    pub makespan: f64,
}

/// Run one weak-scaling point: `n_groups` bundles of `nodes_per_group`
/// nodes, each solving `solves_per_group` propagators on `dims`×`l5`.
/// `None` when the group's GPU count cannot decompose the lattice.
#[allow(clippy::too_many_arguments)]
pub fn weak_scaling_point(
    machine: &MachineSpec,
    dims: [usize; 4],
    l5: usize,
    nodes_per_group: usize,
    n_groups: usize,
    solves_per_group: usize,
    flavor: MpiFlavor,
    seed: u64,
) -> Option<WeakScalingPoint> {
    let gpus_per_group = nodes_per_group * machine.gpus_per_node;
    let tuner = Tuner::new();
    let model = SolverPerfModel::new(machine.clone(), dims, l5);
    let point = model.performance(&tuner, gpus_per_group)?;

    // A production light-quark MDWF solve: O(5k) preconditioned iterations.
    let iterations = 5000.0;
    let solve_seconds = point.time_per_iter * iterations;
    let solve_flops = point.tflops * 1e12 * point.time_per_iter * iterations;

    let n_tasks = n_groups * solves_per_group;
    let workload = Workload::uniform_solves(n_tasks, nodes_per_group, solve_seconds, solve_flops);
    let total_nodes = n_groups * nodes_per_group;
    let mut cluster = Cluster::new(
        machine.clone(),
        &ClusterConfig {
            nodes: total_nodes,
            jitter_sigma: 0.04,
            startup_failure_prob: 0.0,
            seed,
        },
    );

    let report: SimReport = match flavor {
        MpiFlavor::SpectrumIndividual => {
            // Individual batch jobs: modeled as mpi_jm with per-job scheduler
            // start latency and full solve rate.
            let sched = MpiJmScheduler::new(MpiJmConfig {
                lump_nodes: nodes_per_group,
                block_nodes: nodes_per_group,
                spawn_seconds: 20.0,
                co_schedule: false,
                mpi_efficiency: flavor.efficiency(),
            });
            sched.run(&mut cluster, &workload)
        }
        MpiFlavor::OpenMpiJmBlocks => {
            // Up to 7 independent 100-node instances; emulated as one run
            // with 100-node lumps (each lump is an independent instance).
            let lump = (100 / nodes_per_group) * nodes_per_group;
            let sched = MpiJmScheduler::new(MpiJmConfig {
                lump_nodes: lump.min(total_nodes).max(nodes_per_group),
                block_nodes: nodes_per_group,
                spawn_seconds: 1.0,
                co_schedule: true,
                mpi_efficiency: flavor.efficiency(),
            });
            sched.run(&mut cluster, &workload)
        }
        MpiFlavor::Mvapich2JmSingle => {
            let sched = MpiJmScheduler::new(MpiJmConfig {
                lump_nodes: (32 / nodes_per_group).max(1) * nodes_per_group,
                block_nodes: nodes_per_group,
                spawn_seconds: 0.5,
                co_schedule: true,
                mpi_efficiency: flavor.efficiency(),
            });
            sched.run(&mut cluster, &workload)
        }
        MpiFlavor::SpectrumMetaq => MetaqScheduler::run(&mut cluster, &workload),
    };

    Some(WeakScalingPoint {
        n_gpus: n_groups * gpus_per_group,
        pflops: report.sustained_flops() / 1e15,
        utilization: report.utilization(),
        makespan: report.makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use coral_machine::{sierra, summit};

    #[test]
    fn sierra_weak_scaling_is_nearly_linear() {
        // Fig. 5 shape: doubling the number of 4-node groups doubles the
        // sustained rate to within a few percent.
        let p1 = weak_scaling_point(
            &sierra(),
            [48, 48, 48, 64],
            12,
            4,
            8,
            4,
            MpiFlavor::Mvapich2JmSingle,
            3,
        )
        .expect("group size decomposes the lattice");
        let p2 = weak_scaling_point(
            &sierra(),
            [48, 48, 48, 64],
            12,
            4,
            16,
            4,
            MpiFlavor::Mvapich2JmSingle,
            3,
        )
        .expect("group size decomposes the lattice");
        let ratio = p2.pflops / p1.pflops;
        assert!(
            (1.85..2.15).contains(&ratio),
            "weak scaling ratio {ratio} should be ~2"
        );
    }

    #[test]
    fn spectrum_outrates_mvapich2_per_gpu() {
        // Fig. 5: the SpectrumMPI points sit above the MVAPICH2 mpi_jm line
        // (the MVAPICH2 stack was not yet tuned for Sierra).
        let s = weak_scaling_point(
            &sierra(),
            [48, 48, 48, 64],
            12,
            4,
            16,
            4,
            MpiFlavor::SpectrumIndividual,
            5,
        )
        .expect("group size decomposes the lattice");
        let m = weak_scaling_point(
            &sierra(),
            [48, 48, 48, 64],
            12,
            4,
            16,
            4,
            MpiFlavor::Mvapich2JmSingle,
            5,
        )
        .expect("group size decomposes the lattice");
        assert!(s.pflops > m.pflops, "{} vs {}", s.pflops, m.pflops);
        // But not by more than the MPI efficiency gap + overheads.
        assert!(s.pflops < m.pflops * 1.45);
    }

    #[test]
    fn summit_metaq_point_is_sane() {
        // Fig. 6: groups of 4 nodes (24 GPUs) on Summit with METAQ.
        let p = weak_scaling_point(
            &summit(),
            [64, 64, 64, 96],
            12,
            4,
            8,
            4,
            MpiFlavor::SpectrumMetaq,
            7,
        )
        .expect("group size decomposes the lattice");
        assert_eq!(p.n_gpus, 8 * 24);
        assert!(p.pflops > 0.0);
        assert!(
            p.utilization > 0.8,
            "METAQ keeps nodes busy: {}",
            p.utilization
        );
    }
}
