//! Multi-RHS (block) spinor fields and their column-wise BLAS.
//!
//! The paper's propagator campaign is thousands of CG solves against the
//! *same* gauge configuration (many sources × 12 spin-color components).
//! A [`BlockSpinor`] interleaves N right-hand-sides RHS-innermost,
//!
//! ```text
//!   data[site * nrhs + j]          (4D operators)
//!   data[(s*V + x) * nrhs + j]     (5D Möbius, s-major like Vec<Spinor>)
//! ```
//!
//! so one gauge-link load from site memory feeds all N columns of the
//! blocked dslash — the link-traffic amortization the batched solvers are
//! built on.
//!
//! **Bit-exactness contract.** Every column-wise operation here reproduces
//! the exact floating-point result of the corresponding [`crate::blas`]
//! call on a contiguous copy of that column:
//!
//! - elementwise updates (`axpy_col`, `xpby_col`, …) apply the same scalar
//!   arithmetic per element, which is order-independent;
//! - reductions (`norm_sqr_col`, `dot_cols`, …) reuse `blas::grain_for` for
//!   the chunk shape and fold chunks in index order, so the accumulation
//!   tree has the same shape as `blas::norm_sqr`/`blas::dot` on the packed
//!   column regardless of the interleaved storage or the pool width.
//!
//! `tests/block_solver.rs` enforces this contract end-to-end: `cg_block`
//! at any block size is bit-identical to N sequential `cg` solves.

use crate::blas;
use crate::complex::{Complex, C64};
use crate::real::Real;
use crate::spinor::Spinor;

/// A field of `len` lattice (or 5D) sites × `nrhs` right-hand-sides,
/// stored RHS-innermost.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockSpinor<R> {
    len: usize,
    nrhs: usize,
    data: Vec<Spinor<R>>,
}

impl<R: Real> BlockSpinor<R> {
    /// All-zero block of `len` sites × `nrhs` columns.
    pub fn zeros(len: usize, nrhs: usize) -> Self {
        assert!(nrhs > 0, "a block needs at least one column");
        Self {
            len,
            nrhs,
            data: vec![Spinor::zero(); len * nrhs],
        }
    }

    /// Interleave `cols` (each a length-`len` spinor vector) into a block.
    pub fn from_columns(cols: &[Vec<Spinor<R>>]) -> Self {
        assert!(!cols.is_empty(), "a block needs at least one column");
        let len = cols[0].len();
        let nrhs = cols.len();
        let mut data = vec![Spinor::zero(); len * nrhs];
        for (j, c) in cols.iter().enumerate() {
            assert_eq!(c.len(), len, "ragged block columns");
            for (i, s) in c.iter().enumerate() {
                data[i * nrhs + j] = *s;
            }
        }
        Self { len, nrhs, data }
    }

    /// Number of sites per column.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the block holds no sites.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of right-hand-side columns.
    pub fn nrhs(&self) -> usize {
        self.nrhs
    }

    /// The interleaved storage, RHS-innermost.
    pub fn data(&self) -> &[Spinor<R>] {
        &self.data
    }

    /// Mutable interleaved storage, RHS-innermost.
    pub fn data_mut(&mut self) -> &mut [Spinor<R>] {
        &mut self.data
    }

    /// Extract column `j` into a contiguous vector.
    pub fn col(&self, j: usize) -> Vec<Spinor<R>> {
        assert!(j < self.nrhs);
        (0..self.len)
            .map(|i| self.data[i * self.nrhs + j])
            .collect()
    }

    /// Overwrite column `j` from a contiguous vector.
    pub fn set_col(&mut self, j: usize, v: &[Spinor<R>]) {
        assert!(j < self.nrhs);
        assert_eq!(v.len(), self.len);
        for (i, s) in v.iter().enumerate() {
            self.data[i * self.nrhs + j] = *s;
        }
    }
}

/// Chunked elementwise update of one column, `y[:,j] = f(y[:,j], x[:,j])`.
///
/// Chunks are aligned to whole site-rows (`grain_for(len) * nrhs`
/// elements), mirroring `blas::update2`; per-element arithmetic is
/// order-independent, so the result is bit-identical to the packed-column
/// update at any pool width.
fn update_col2<R: Real, F>(x: &BlockSpinor<R>, y: &mut BlockSpinor<R>, j: usize, f: F)
where
    F: Fn(&mut Spinor<R>, &Spinor<R>) + Sync + Send,
{
    assert_eq!(x.len, y.len);
    assert_eq!(x.nrhs, y.nrhs);
    assert!(j < y.nrhs);
    let nrhs = y.nrhs;
    let grain = blas::grain_for(x.len) * nrhs;
    let xd = &x.data;
    rayon::for_each_chunk_mut(&mut y.data, grain, |base, chunk| {
        let mut i = base + j;
        let end = base + chunk.len();
        while i < end {
            f(&mut chunk[i - base], &xd[i]);
            i += nrhs;
        }
    });
}

/// `y[:,j] += a * x[:,j]` with real `a`.
pub fn axpy_col<R: Real>(a: f64, x: &BlockSpinor<R>, y: &mut BlockSpinor<R>, j: usize) {
    let a = R::from_f64(a);
    update_col2(x, y, j, |yi, xi| *yi += xi.scale(a));
}

/// `y[:,j] = x[:,j] + b * y[:,j]` (the CG search-direction update).
pub fn xpby_col<R: Real>(x: &BlockSpinor<R>, b: f64, y: &mut BlockSpinor<R>, j: usize) {
    let b = R::from_f64(b);
    update_col2(x, y, j, |yi, xi| *yi = *xi + yi.scale(b));
}

/// `y[:,j] += a * v` with complex `a` and a contiguous `v` (deflation's
/// `x0 += (c/λ) vₖ` update).
pub fn caxpy_vec_col<R: Real>(a: C64, v: &[Spinor<R>], y: &mut BlockSpinor<R>, j: usize) {
    assert_eq!(v.len(), y.len);
    assert!(j < y.nrhs);
    let a: Complex<R> = a.cast();
    let nrhs = y.nrhs;
    let grain = blas::grain_for(v.len()) * nrhs;
    rayon::for_each_chunk_mut(&mut y.data, grain, |base, chunk| {
        let mut i = base + j;
        let end = base + chunk.len();
        while i < end {
            chunk[i - base] += v[i / nrhs].scale_c(a);
            i += nrhs;
        }
    });
}

/// Zero column `j`.
pub fn zero_col<R: Real>(y: &mut BlockSpinor<R>, j: usize) {
    assert!(j < y.nrhs);
    let nrhs = y.nrhs;
    let mut i = j;
    while i < y.data.len() {
        y.data[i] = Spinor::zero();
        i += nrhs;
    }
}

/// `‖x[:,j]‖²` accumulated in `f64` — same chunk shape and fold order as
/// `blas::norm_sqr` on the packed column.
pub fn norm_sqr_col<R: Real>(x: &BlockSpinor<R>, j: usize) -> f64 {
    assert!(j < x.nrhs);
    let nrhs = x.nrhs;
    let d = &x.data;
    rayon::reduce_chunks(
        x.len,
        blas::grain_for(x.len),
        || 0.0f64,
        |acc, r| r.fold(acc, |a, i| a + d[i * nrhs + j].norm_sqr().to_f64()),
        |a, b| a + b,
    )
}

/// `⟨x[:,j], y[:,j]⟩` accumulated in `f64` — same chunk shape and fold
/// order as `blas::dot` on the packed columns.
pub fn dot_cols<R: Real>(x: &BlockSpinor<R>, y: &BlockSpinor<R>, j: usize) -> C64 {
    assert_eq!(x.len, y.len);
    assert_eq!(x.nrhs, y.nrhs);
    assert!(j < x.nrhs);
    let nrhs = x.nrhs;
    let xd = &x.data;
    let yd = &y.data;
    let (re, im) = rayon::reduce_chunks(
        x.len,
        blas::grain_for(x.len),
        || (0.0f64, 0.0f64),
        |acc, r| {
            r.fold(acc, |(re, im), i| {
                let d = xd[i * nrhs + j].dot(&yd[i * nrhs + j]).to_c64();
                (re + d.re, im + d.im)
            })
        },
        |a, b| (a.0 + b.0, a.1 + b.1),
    );
    C64::new(re, im)
}

/// `⟨v, x[:,j]⟩` with a contiguous `v` (deflation's `V† b` inner product)
/// — same chunk shape and fold order as `blas::dot(v, col_j)`.
pub fn dot_vec_col<R: Real>(v: &[Spinor<R>], x: &BlockSpinor<R>, j: usize) -> C64 {
    assert_eq!(v.len(), x.len);
    assert!(j < x.nrhs);
    let nrhs = x.nrhs;
    let xd = &x.data;
    let (re, im) = rayon::reduce_chunks(
        v.len(),
        blas::grain_for(v.len()),
        || (0.0f64, 0.0f64),
        |acc, r| {
            r.fold(acc, |(re, im), i| {
                let d = v[i].dot(&xd[i * nrhs + j]).to_c64();
                (re + d.re, im + d.im)
            })
        },
        |a, b| (a.0 + b.0, a.1 + b.1),
    );
    C64::new(re, im)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FermionField;

    fn cols(seed: u64, n: usize, nrhs: usize) -> Vec<Vec<Spinor<f64>>> {
        (0..nrhs)
            .map(|j| FermionField::<f64>::gaussian(n, seed + j as u64).data)
            .collect()
    }

    #[test]
    fn roundtrip_columns() {
        let cs = cols(1, 37, 3);
        let b = BlockSpinor::from_columns(&cs);
        assert_eq!(b.len(), 37);
        assert_eq!(b.nrhs(), 3);
        for (j, c) in cs.iter().enumerate() {
            assert_eq!(&b.col(j), c);
        }
    }

    #[test]
    fn reductions_bit_match_packed_blas() {
        // Above the parallel threshold so the chunked tree is exercised.
        let n = (1 << 12) + 57;
        let cs = cols(2, n, 4);
        let b = BlockSpinor::from_columns(&cs);
        for (j, c) in cs.iter().enumerate() {
            assert_eq!(norm_sqr_col(&b, j), blas::norm_sqr(c));
            assert_eq!(dot_cols(&b, &b, j), blas::dot(c, c));
            assert_eq!(dot_vec_col(&cs[0], &b, j), blas::dot(&cs[0], c));
        }
    }

    #[test]
    fn updates_bit_match_packed_blas() {
        let n = (1 << 12) + 19;
        let xs = cols(3, n, 3);
        let ys = cols(4, n, 3);
        let xb = BlockSpinor::from_columns(&xs);
        let mut yb = BlockSpinor::from_columns(&ys);
        for j in 0..3 {
            let mut yref = ys[j].clone();
            blas::axpy(0.7, &xs[j], &mut yref);
            blas::xpby(&xs[j], -1.25, &mut yref);
            axpy_col(0.7, &xb, &mut yb, j);
            xpby_col(&xb, -1.25, &mut yb, j);
            assert_eq!(yb.col(j), yref);
        }
        // Untouched interleaving: columns do not bleed into each other.
        let mut yb2 = BlockSpinor::from_columns(&ys);
        axpy_col(2.0, &xb, &mut yb2, 1);
        assert_eq!(yb2.col(0), ys[0]);
        assert_eq!(yb2.col(2), ys[2]);
    }

    #[test]
    fn caxpy_and_zero_col_match() {
        let n = 301;
        let v = FermionField::<f64>::gaussian(n, 9).data;
        let ys = cols(5, n, 2);
        let mut yb = BlockSpinor::from_columns(&ys);
        let a = C64::new(0.3, -1.1);
        let mut yref = ys[1].clone();
        blas::caxpy(a, &v, &mut yref);
        caxpy_vec_col(a, &v, &mut yb, 1);
        assert_eq!(yb.col(1), yref);
        zero_col(&mut yb, 1);
        assert_eq!(norm_sqr_col(&yb, 1), 0.0);
        assert_eq!(yb.col(0), ys[0]);
    }
}
