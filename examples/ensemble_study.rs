//! Gauge-ensemble quality study: generate a quenched ensemble and run the
//! standard diagnostics — plaquette thermalization and autocorrelation,
//! Wilson loops and the static potential (confinement), Polyakov loop, and
//! the clover topological charge / action density before and after smearing.
//!
//! ```sh
//! cargo run --release --example ensemble_study
//! ```

use lqcd::analysis::integrated_autocorrelation;
use lqcd::core::observables::{polyakov_loop, static_potential, wilson_loop_table};
use lqcd::core::prelude::*;
use lqcd::core::smear::ape_smear_spatial;
use lqcd::core::topology::{action_density, topological_charge};

fn main() {
    let lat = Lattice::new([6, 6, 6, 12]);
    let params = HeatbathParams { beta: 5.9, n_or: 3 };
    println!(
        "generating quenched ensemble: {:?}, beta = {}, {} OR/HB",
        lat, params.beta, params.n_or
    );

    let mut ens = QuenchedEnsemble::cold_start(&lat, params, 42);
    for _ in 0..40 {
        ens.update();
    }
    let history = ens.plaquette_history.clone();
    println!("\nplaquette thermalization:");
    for (i, chunk) in history.chunks(8).enumerate() {
        let line: Vec<String> = chunk.iter().map(|p| format!("{p:.4}")).collect();
        println!("  cycles {:3}+: {}", i * 8, line.join(" "));
    }
    let tail = &history[20..];
    let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
    let tau = integrated_autocorrelation(tail);
    println!("  thermalized <P> = {mean:.4}, tau_int = {tau:.2} cycles");

    let g = ens.current().clone();

    // Wilson loops and the static potential.
    println!("\nWilson loops W(r,t):");
    let table = wilson_loop_table(&lat, &g, 3, 3);
    for (r, row) in table.iter().enumerate() {
        let line: Vec<String> = row.iter().map(|w| format!("{w:.4}")).collect();
        println!("  r={}: {}", r + 1, line.join("  "));
    }
    println!("\nstatic potential V(r) (from W(r,1)/W(r,2)):");
    for r in 1..=3 {
        println!("  V({r}) = {:.4}", static_potential(&lat, &g, r, 1));
    }

    // Polyakov loop: confinement order parameter.
    let pl = polyakov_loop(&lat, &g);
    println!(
        "\nPolyakov loop: {:.4} + {:.4}i (|P| = {:.4}, small => confined)",
        pl.re,
        pl.im,
        pl.abs()
    );

    // Topology under smearing.
    println!("\nsmearing flow of the action density and topological charge:");
    let mut smooth = g.clone();
    for step in 0..=4 {
        println!(
            "  {step} APE sweeps: s = {:.5}, Q = {:+.4}",
            action_density(&lat, &smooth),
            topological_charge(&lat, &smooth)
        );
        smooth = ape_smear_spatial(&lat, &smooth, 0.5);
    }
}
