//! Text and JSON reporters for lint results.

use crate::baseline::Applied;
use crate::{rule_ids, Finding};
use obs::Json;

/// Human-readable report: per-rule totals, then every fresh finding with
/// location and message, then stale suppressions (if any). Deterministic:
/// findings arrive sorted from `scan_workspace`.
pub fn render_text(applied: &Applied) -> String {
    let mut out = String::new();
    out.push_str("repro lint — workspace static analysis\n\n");
    out.push_str(&format!(
        "{:<30} {:>6} {:>11}\n",
        "rule", "fresh", "baselined"
    ));
    for rule in rule_ids::ALL {
        let fresh = applied.fresh.iter().filter(|f| f.rule == rule).count();
        let sup = applied.suppressed.iter().filter(|f| f.rule == rule).count();
        out.push_str(&format!("{rule:<30} {fresh:>6} {sup:>11}\n"));
    }
    out.push('\n');
    if applied.fresh.is_empty() {
        out.push_str("no fresh findings\n");
    } else {
        out.push_str(&format!("{} fresh finding(s):\n", applied.fresh.len()));
        for f in &applied.fresh {
            out.push_str(&format!(
                "  {}:{} [{}] {}\n",
                f.path, f.line, f.rule, f.message
            ));
        }
    }
    if !applied.stale.is_empty() {
        out.push_str(&format!(
            "\n{} stale suppression(s) — the violation was fixed; shrink the baseline \
             with --update-baseline:\n",
            applied.stale.len()
        ));
        for s in &applied.stale {
            out.push_str(&format!(
                "  {}:{} [{}] {}\n",
                s.path, s.line, s.rule, s.content_hash
            ));
        }
    }
    out
}

fn finding_json(f: &Finding) -> Json {
    Json::obj(vec![
        ("rule", Json::from(f.rule)),
        ("path", Json::from(f.path.as_str())),
        ("line", Json::from(f.line as u64)),
        ("message", Json::from(f.message.as_str())),
        ("hash", Json::from(f.content_hash.as_str())),
    ])
}

/// Machine-readable report (pretty JSON with a trailing newline).
pub fn render_json(applied: &Applied) -> String {
    Json::obj(vec![
        (
            "fresh",
            Json::Arr(applied.fresh.iter().map(finding_json).collect()),
        ),
        (
            "suppressed",
            Json::Arr(applied.suppressed.iter().map(finding_json).collect()),
        ),
        (
            "stale",
            Json::Arr(
                applied
                    .stale
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("rule", Json::from(s.rule.as_str())),
                            ("path", Json::from(s.path.as_str())),
                            ("line", Json::from(s.line as u64)),
                            ("hash", Json::from(s.content_hash.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "ok",
            Json::from(applied.fresh.is_empty() && applied.stale.is_empty()),
        ),
    ])
    .to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    #[test]
    fn text_report_lists_fresh_findings_and_counts() {
        let applied = Applied {
            fresh: vec![Finding {
                rule: rule_ids::NONDETERMINISM,
                path: "crates/x/src/lib.rs".into(),
                line: 7,
                message: "raw `Instant::now()`".into(),
                content_hash: "abc".into(),
            }],
            suppressed: vec![],
            stale: vec![],
        };
        let text = render_text(&applied);
        assert!(text.contains("crates/x/src/lib.rs:7"));
        assert!(text.contains("1 fresh finding"));
        let json = render_json(&applied);
        assert!(json.contains("\"ok\": false"));
    }
}
