//! Mixed-precision CG with reliable updates.
//!
//! The paper's optimum solver stores fields in 16-bit fixed point, computes
//! in single precision, and performs "occasional reliable updates to full
//! double precision" (Clark et al., CPC 181 (2010) 1517). This module
//! implements that control flow: the inner CG runs entirely in the low
//! precision `L`; whenever the inner residual has dropped by `delta` relative
//! to the last reliable point, the accumulated correction is promoted to
//! `f64`, the true residual is recomputed with the high-precision operator,
//! and the inner iteration restarts from it. This bounds the drift between
//! the iterated and true residuals that pure low-precision CG suffers.

use super::cg::cg;
use super::{CgParams, SolveStats, SolverOutcome};
use crate::blas;
use crate::dirac::LinearOp;
use crate::real::Real;
use crate::spinor::Spinor;
use obs::{Json, Registry};

/// Parameters of the mixed-precision solve.
#[derive(Clone, Copy, Debug)]
pub struct MixedParams {
    /// Stopping criteria on the outer (true, double-precision) residual.
    pub outer: CgParams,
    /// Reliable-update threshold: an update triggers when the inner residual
    /// norm² falls below `delta²` times the norm² at the last reliable point.
    pub delta: f64,
    /// Safety cap on inner iterations between reliable updates.
    pub max_inner: usize,
}

impl Default for MixedParams {
    fn default() -> Self {
        Self {
            outer: CgParams::default(),
            delta: 0.1,
            max_inner: 1_000,
        }
    }
}

/// Solve `A x = b` where `A` is Hermitian positive definite, given the same
/// operator in high (`f64`) and low (`L`) precision.
///
/// `x` must come in zeroed (or holding an initial guess in `f64`).
pub fn mixed_cg<L: Real, AH: LinearOp<f64> + ?Sized, AL: LinearOp<L> + ?Sized>(
    op_hi: &AH,
    op_lo: &AL,
    x: &mut [Spinor<f64>],
    b: &[Spinor<f64>],
    params: MixedParams,
) -> SolveStats {
    let n = op_hi.vec_len();
    assert_eq!(op_lo.vec_len(), n, "precision pair must share a geometry");
    assert_eq!(x.len(), n);
    assert_eq!(b.len(), n);
    let mut stats = SolveStats::new();

    let b_norm2 = blas::norm_sqr(b);
    if b_norm2 == 0.0 {
        blas::zero(x);
        stats.converged = true;
        stats.final_rel_residual = 0.0;
        super::record_solve("mixed", &stats);
        return stats;
    }
    if !b_norm2.is_finite() {
        // Corrupted source (NaN/∞): refuse to iterate on garbage.
        stats.breakdown = true;
        super::record_solve("mixed", &stats);
        return stats;
    }
    let target = params.outer.tol * params.outer.tol * b_norm2;

    // True residual in double.
    let mut r_hi = vec![Spinor::zero(); n];
    op_hi.apply(&mut r_hi, x);
    stats.flops += op_hi.flops_per_apply();
    for (ri, bi) in r_hi.iter_mut().zip(b.iter()) {
        *ri = *bi - *ri;
    }
    let mut r2_hi = blas::norm_sqr(&r_hi);

    let blas_flops = 6.0 * 24.0 * n as f64;

    if !r2_hi.is_finite() {
        // A non-finite initial guess poisons the recurrence immediately.
        stats.breakdown = true;
        super::record_solve("mixed", &stats);
        return stats;
    }

    while r2_hi > target && stats.iterations < params.outer.max_iter {
        // Inner CG in low precision on A e = r, e starting at zero.
        let mut r_lo: Vec<Spinor<L>> = r_hi.iter().map(|s| s.cast()).collect();
        let mut p_lo = r_lo.clone();
        let mut e_lo = vec![Spinor::<L>::zero(); n];
        let mut ap_lo = vec![Spinor::<L>::zero(); n];
        let mut r2_lo = blas::norm_sqr(&r_lo);
        let reliable_point = r2_lo;
        let inner_target = (params.delta * params.delta) * reliable_point;

        let mut inner = 0;
        while inner < params.max_inner
            && stats.iterations < params.outer.max_iter
            && r2_lo > inner_target
            && r2_lo > target
        {
            op_lo.apply(&mut ap_lo, &p_lo);
            stats.iterations += 1;
            inner += 1;
            stats.flops += op_lo.flops_per_apply() + blas_flops;

            let pap = blas::dot(&p_lo, &ap_lo).re;
            if !pap.is_finite() || pap <= 0.0 {
                break; // precision exhausted (or overflow) in low precision
            }
            let alpha = r2_lo / pap;
            blas::axpy(alpha, &p_lo, &mut e_lo);
            blas::axpy(-alpha, &ap_lo, &mut r_lo);
            let r2_new = blas::norm_sqr(&r_lo);
            if !r2_new.is_finite() {
                // Low-precision overflow/NaN: abandon this inner sequence;
                // the reliable update below re-anchors in double precision.
                blas::zero(&mut e_lo);
                break;
            }
            let beta = r2_new / r2_lo;
            blas::xpby(&r_lo, beta, &mut p_lo);
            r2_lo = r2_new;
        }

        // Reliable update: promote the correction and recompute the true
        // residual in double precision.
        for (xi, ei) in x.iter_mut().zip(e_lo.iter()) {
            *xi += ei.cast();
        }
        op_hi.apply(&mut r_hi, x);
        stats.flops += op_hi.flops_per_apply();
        for (ri, bi) in r_hi.iter_mut().zip(b.iter()) {
            *ri = *bi - *ri;
        }
        let r2_next = blas::norm_sqr(&r_hi);
        stats.reliable_updates += 1;
        // One event per reliable update — together they trace the true
        // (double-precision) residual trajectory of the solve.
        Registry::current().event(
            "solver.reliable_update",
            vec![
                ("update", Json::from(stats.reliable_updates)),
                ("iteration", Json::from(stats.iterations)),
                (
                    "rel_residual",
                    Json::from(if r2_next.is_finite() {
                        (r2_next / b_norm2).sqrt()
                    } else {
                        f64::INFINITY
                    }),
                ),
            ],
        );

        if !r2_next.is_finite() {
            // The promoted correction poisoned the iterate: divergence.
            stats.breakdown = true;
            r2_hi = r2_next;
            break;
        }
        if r2_next >= r2_hi && r2_next > target {
            // No progress even after a reliable update (or a degenerate
            // inner loop that could not move at all): the low precision
            // cannot resolve the remaining residual. Give up cleanly.
            r2_hi = r2_next;
            break;
        }
        r2_hi = r2_next;
    }

    stats.final_rel_residual = if r2_hi.is_finite() {
        (r2_hi / b_norm2).sqrt()
    } else {
        f64::INFINITY
    };
    stats.converged = r2_hi.is_finite() && r2_hi <= target;
    super::record_solve("mixed", &stats);
    stats
}

/// Parameters of the fault-tolerant solve ([`mixed_cg_robust`]).
#[derive(Clone, Copy, Debug)]
pub struct RobustParams {
    /// The mixed-precision solve attempted first.
    pub mixed: MixedParams,
    /// Checkpointed restarts (each with a tighter reliable-update
    /// threshold) before escalating to full double precision.
    pub max_restarts: usize,
    /// Factor applied to `delta` on each restart (< 1 tightens).
    pub delta_shrink: f64,
}

impl Default for RobustParams {
    fn default() -> Self {
        Self {
            mixed: MixedParams::default(),
            max_restarts: 2,
            delta_shrink: 0.25,
        }
    }
}

/// Fault-tolerant mixed-precision solve with checkpointed restarts and
/// precision escalation, returning a typed [`SolverOutcome`].
///
/// Strategy: run [`mixed_cg`]. On divergence (residual drift to NaN/∞ or a
/// breakdown), roll `x` back to the checkpoint and retry with a tighter
/// reliable-update threshold, up to `max_restarts` times. If the mixed
/// solver still cannot converge — persistent divergence or low-precision
/// stagnation — escalate to full double-precision [`cg`] from the best
/// finite iterate. Only when even the double-precision solve breaks down is
/// the solve declared [`SolverOutcome::Failed`].
pub fn mixed_cg_robust<L: Real, AH: LinearOp<f64> + ?Sized, AL: LinearOp<L> + ?Sized>(
    op_hi: &AH,
    op_lo: &AL,
    x: &mut [Spinor<f64>],
    b: &[Spinor<f64>],
    params: RobustParams,
) -> SolverOutcome {
    let checkpoint: Vec<Spinor<f64>> = x.to_vec();
    let mut total = SolveStats::new();
    let mut mixed_params = params.mixed;
    let mut restarts = 0usize;
    let reg = Registry::current();
    reg.counter("solver.robust.solves").inc();

    loop {
        let mut attempt = checkpoint.clone();
        let stats = mixed_cg(op_hi, op_lo, &mut attempt, b, mixed_params);
        total.iterations += stats.iterations;
        total.flops += stats.flops;
        total.reliable_updates += stats.reliable_updates;
        total.final_rel_residual = stats.final_rel_residual;
        if stats.converged {
            x.copy_from_slice(&attempt);
            total.converged = true;
            return SolverOutcome::Converged {
                stats: total,
                restarts,
                escalated: false,
            };
        }
        let diverged = stats.breakdown || !stats.final_rel_residual.is_finite();
        if diverged && restarts < params.max_restarts {
            // Residual drifted beyond recovery: discard the attempt (x
            // stays at the checkpoint) and retry with tighter reliable
            // updates.
            restarts += 1;
            mixed_params.delta *= params.delta_shrink;
            reg.counter("solver.robust.restarts").inc();
            // Shared restart tally across the whole recovery ladder —
            // precision escalation here, comm-failure checkpoint restores in
            // `cg_ft` — so dashboards see one `solver.restarts` stream.
            reg.counter("solver.restarts").inc();
            reg.event(
                "solver.restart",
                vec![
                    ("restart", Json::from(restarts)),
                    ("delta", Json::from(mixed_params.delta)),
                ],
            );
            continue;
        }
        if !diverged {
            // Stagnated but finite: keep the partial progress as the
            // starting guess for the escalation.
            x.copy_from_slice(&attempt);
        }
        break;
    }

    // Persistent divergence or low-precision stagnation: escalate to full
    // double precision from the best finite iterate.
    reg.counter("solver.robust.escalations").inc();
    reg.event(
        "solver.escalation",
        vec![("restarts", Json::from(restarts))],
    );
    let stats = cg(op_hi, x, b, params.mixed.outer);
    total.iterations += stats.iterations;
    total.flops += stats.flops;
    total.final_rel_residual = stats.final_rel_residual;
    total.breakdown = stats.breakdown;
    if stats.converged {
        total.converged = true;
        SolverOutcome::Converged {
            stats: total,
            restarts,
            escalated: true,
        }
    } else if stats.breakdown || !stats.final_rel_residual.is_finite() {
        reg.counter("solver.robust.failures").inc();
        SolverOutcome::Failed {
            stats: total,
            restarts,
            reason: "non-finite residual in full double precision",
        }
    } else {
        SolverOutcome::MaxIterations {
            stats: total,
            restarts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirac::{MobiusParams, NormalOp, PrecMobius, WilsonDirac};
    use crate::field::{FermionField, GaugeField};
    use crate::lattice::Lattice;
    use crate::solver::cg;

    #[test]
    fn mixed_cg_reaches_double_precision_tolerance() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge64 = GaugeField::<f64>::hot(&lat, 83);
        let gauge32 = gauge64.cast::<f32>();
        let d64 = WilsonDirac::new(&lat, &gauge64, 0.3, true);
        let d32 = WilsonDirac::new(&lat, &gauge32, 0.3, true);
        let n64 = NormalOp::new(&d64);
        let n32 = NormalOp::new(&d32);

        let b = FermionField::<f64>::gaussian(lat.volume(), 17).data;
        let mut x = vec![crate::spinor::Spinor::zero(); lat.volume()];
        let stats = mixed_cg(
            &n64,
            &n32,
            &mut x,
            &b,
            MixedParams {
                outer: CgParams {
                    tol: 1e-10,
                    max_iter: 10_000,
                },
                delta: 0.1,
                max_inner: 500,
            },
        );
        assert!(stats.converged, "{stats:?}");
        assert!(stats.final_rel_residual < 1e-10);
        assert!(
            stats.reliable_updates >= 2,
            "tolerance beyond f32 needs several reliable updates: {stats:?}"
        );
    }

    #[test]
    fn mixed_cg_matches_pure_double_solution() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge64 = GaugeField::<f64>::hot(&lat, 89);
        let gauge32 = gauge64.cast::<f32>();
        let params = MobiusParams::standard(4, 0.1);
        let p64 = PrecMobius::new(&lat, &gauge64, params);
        let p32 = PrecMobius::new(&lat, &gauge32, params);
        let n64 = NormalOp::new(&p64);
        let n32 = NormalOp::new(&p32);

        let b = FermionField::<f64>::gaussian(p64.vec_len(), 18).data;

        let mut x_double = vec![crate::spinor::Spinor::zero(); p64.vec_len()];
        let s1 = cg(&n64, &mut x_double, &b, CgParams::default());
        assert!(s1.converged);

        let mut x_mixed = vec![crate::spinor::Spinor::zero(); p64.vec_len()];
        let s2 = mixed_cg(&n64, &n32, &mut x_mixed, &b, MixedParams::default());
        assert!(s2.converged, "{s2:?}");

        let diff = crate::blas::sub(&x_double, &x_mixed);
        let rel = crate::blas::norm_sqr(&diff) / crate::blas::norm_sqr(&x_double);
        assert!(rel < 1e-16, "solutions must agree to tolerance: rel {rel}");
    }

    #[test]
    fn robust_solver_converges_without_escalation_on_healthy_input() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge64 = GaugeField::<f64>::hot(&lat, 83);
        let gauge32 = gauge64.cast::<f32>();
        let d64 = WilsonDirac::new(&lat, &gauge64, 0.3, true);
        let d32 = WilsonDirac::new(&lat, &gauge32, 0.3, true);
        let n64 = NormalOp::new(&d64);
        let n32 = NormalOp::new(&d32);
        let b = FermionField::<f64>::gaussian(lat.volume(), 21).data;
        let mut x = vec![crate::spinor::Spinor::zero(); lat.volume()];
        let outcome = mixed_cg_robust(&n64, &n32, &mut x, &b, RobustParams::default());
        match outcome {
            crate::solver::SolverOutcome::Converged {
                restarts,
                escalated,
                stats,
            } => {
                assert_eq!(restarts, 0);
                assert!(!escalated);
                assert!(stats.final_rel_residual < 1e-10);
            }
            other => panic!("healthy solve must converge cleanly: {other:?}"),
        }
    }

    #[test]
    fn robust_solver_fails_typed_on_nan_source() {
        // A NaN source cannot be saved by restarts or escalation: the
        // outcome must be a typed failure, never silent garbage or a panic.
        let lat = Lattice::new([2, 2, 2, 2]);
        let gauge64 = GaugeField::<f64>::cold(&lat);
        let gauge32 = gauge64.cast::<f32>();
        let d64 = WilsonDirac::new(&lat, &gauge64, 0.5, true);
        let d32 = WilsonDirac::new(&lat, &gauge32, 0.5, true);
        let n64 = NormalOp::new(&d64);
        let n32 = NormalOp::new(&d32);
        let mut b = FermionField::<f64>::gaussian(lat.volume(), 23).data;
        b[3].s[0].c[1].im = f64::NAN;
        let mut x = vec![crate::spinor::Spinor::zero(); lat.volume()];
        let outcome = mixed_cg_robust(&n64, &n32, &mut x, &b, RobustParams::default());
        match outcome {
            crate::solver::SolverOutcome::Failed { stats, .. } => {
                assert!(stats.breakdown);
                assert!(!outcome.is_converged());
            }
            other => panic!("NaN source must yield Failed, got {other:?}"),
        }
        // The iterate was rolled back, not poisoned.
        assert!(x.iter().all(|sp| sp
            .s
            .iter()
            .all(|cv| cv.c.iter().all(|z| z.re.is_finite() && z.im.is_finite()))));
    }

    /// An inner operator corrupted by a wrong overall normalization (e.g. a
    /// bad rescaling applied during a precision conversion). With `A_lo =
    /// c·A` and c = 0.4, the inner solve returns `d = 2.5·A⁻¹r`, so every
    /// correction overshoots and the true residual *grows* by 1.5× — a
    /// deterministic stall, independent of the gauge configuration.
    struct MisscaledOp<'a, D: crate::dirac::DiracOp<f32>>(NormalOp<'a, f32, D>, f32);

    impl<D: crate::dirac::DiracOp<f32>> LinearOp<f32> for MisscaledOp<'_, D> {
        fn vec_len(&self) -> usize {
            self.0.vec_len()
        }
        fn apply(
            &self,
            out: &mut [crate::spinor::Spinor<f32>],
            inp: &[crate::spinor::Spinor<f32>],
        ) {
            self.0.apply(out, inp);
            for sp in out.iter_mut() {
                for cv in sp.s.iter_mut() {
                    for z in cv.c.iter_mut() {
                        z.re *= self.1;
                        z.im *= self.1;
                    }
                }
            }
        }
    }

    #[test]
    fn robust_solver_escalates_when_low_precision_stagnates() {
        // The mis-scaled inner operator makes the mixed solve diverge, so
        // the double-precision escalation path must finish the job.
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge64 = GaugeField::<f64>::hot(&lat, 97);
        let gauge32 = gauge64.cast::<f32>();
        let d64 = WilsonDirac::new(&lat, &gauge64, 0.3, true);
        let d32 = WilsonDirac::new(&lat, &gauge32, 0.3, true);
        let n64 = NormalOp::new(&d64);
        let n32 = MisscaledOp(NormalOp::new(&d32), 0.4);
        let b = FermionField::<f64>::gaussian(lat.volume(), 25).data;
        let mut x = vec![crate::spinor::Spinor::zero(); lat.volume()];
        let outcome = mixed_cg_robust(&n64, &n32, &mut x, &b, RobustParams::default());
        match outcome {
            crate::solver::SolverOutcome::Converged { escalated, .. } => {
                assert!(escalated, "stalled mixed solve must escalate");
            }
            crate::solver::SolverOutcome::MaxIterations { .. } => {
                panic!("escalated double CG should converge here")
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(outcome.stats().final_rel_residual < 1e-10);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let lat = Lattice::new([2, 2, 2, 2]);
        let gauge64 = GaugeField::<f64>::cold(&lat);
        let gauge32 = gauge64.cast::<f32>();
        let d64 = WilsonDirac::new(&lat, &gauge64, 0.5, true);
        let d32 = WilsonDirac::new(&lat, &gauge32, 0.5, true);
        let n64 = NormalOp::new(&d64);
        let n32 = NormalOp::new(&d32);
        let b = vec![crate::spinor::Spinor::zero(); lat.volume()];
        let mut x = FermionField::<f64>::gaussian(lat.volume(), 19).data;
        let stats = mixed_cg(&n64, &n32, &mut x, &b, MixedParams::default());
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
    }
}
