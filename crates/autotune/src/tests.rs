use crate::*;

/// A deterministic tunable whose modeled cost has a unique minimum, so tests
/// can assert the sweep finds it.
struct QuadraticCost {
    name: String,
    optimum: usize,
    n_policies: usize,
    runs: Vec<TuneParam>,
    backed_up: u32,
    restored: u32,
}

impl QuadraticCost {
    fn new(name: &str, optimum: usize, n_policies: usize) -> Self {
        Self {
            name: name.to_string(),
            optimum,
            n_policies,
            runs: Vec::new(),
            backed_up: 0,
            restored: 0,
        }
    }
}

impl Tunable for QuadraticCost {
    fn key(&self) -> TuneKey {
        TuneKey::new(self.name.clone(), "v", "")
    }
    fn param_space(&self) -> ParamSpace {
        ParamSpace::policies(self.n_policies)
    }
    fn run(&mut self, param: TuneParam) {
        self.runs.push(param);
    }
    fn modeled_cost(&self, param: TuneParam) -> f64 {
        let d = param.policy as f64 - self.optimum as f64;
        1.0 + d * d
    }
    fn harness(&self) -> TimingHarness {
        TimingHarness::Modeled
    }
    fn backup(&mut self) {
        self.backed_up += 1;
    }
    fn restore(&mut self) {
        self.restored += 1;
    }
    fn flops(&self) -> f64 {
        2.0e9
    }
}

#[test]
fn sweep_finds_modeled_minimum() {
    let tuner = Tuner::new();
    let mut t = QuadraticCost::new("quad", 5, 9);
    let p = tuner.tune(&mut t);
    assert_eq!(p.policy, 5);
}

#[test]
fn second_call_is_cache_hit_and_skips_sweep() {
    let tuner = Tuner::new();
    let mut t = QuadraticCost::new("quad", 2, 6);
    tuner.tune(&mut t);
    let runs_after_first = t.runs.len();
    let p = tuner.tune(&mut t);
    assert_eq!(p.policy, 2);
    assert_eq!(t.runs.len(), runs_after_first, "cache hit must not re-run");
    assert_eq!(tuner.stats().misses, 1);
    assert_eq!(tuner.stats().hits, 1);
}

#[test]
fn backup_restore_bracket_the_sweep_exactly_once() {
    let tuner = Tuner::new();
    let mut t = QuadraticCost::new("quad", 0, 4);
    tuner.tune(&mut t);
    tuner.tune(&mut t);
    assert_eq!(t.backed_up, 1);
    assert_eq!(t.restored, 1);
}

#[test]
fn distinct_keys_get_distinct_entries() {
    let tuner = Tuner::new();
    let mut a = QuadraticCost::new("a", 1, 4);
    let mut b = QuadraticCost::new("b", 3, 4);
    assert_eq!(tuner.tune(&mut a).policy, 1);
    assert_eq!(tuner.tune(&mut b).policy, 3);
    assert_eq!(tuner.len(), 2);
}

#[test]
fn entry_records_metadata() {
    let tuner = Tuner::new();
    let mut t = QuadraticCost::new("meta", 2, 7);
    tuner.tune(&mut t);
    let e = tuner.lookup(&t.key()).expect("entry cached");
    assert_eq!(e.candidates_swept, 7);
    assert!((e.seconds - 1.0).abs() < 1e-12, "optimum cost is 1.0");
    assert!(
        (e.gflops - 2.0).abs() < 1e-9,
        "2e9 flops in 1 s = 2 GFLOP/s"
    );
}

#[test]
fn json_round_trip_preserves_cache() {
    let tuner = Tuner::new();
    let mut a = QuadraticCost::new("a", 1, 4);
    let mut b = QuadraticCost::new("b", 3, 6);
    tuner.tune(&mut a);
    tuner.tune(&mut b);
    let json = tuner.to_json();

    let restored = Tuner::new();
    let n = restored.merge_json(&json).expect("valid json");
    assert_eq!(n, 2);
    assert_eq!(restored.lookup(&a.key()), tuner.lookup(&a.key()));
    assert_eq!(restored.lookup(&b.key()), tuner.lookup(&b.key()));

    // A restored entry must satisfy lookups without re-sweeping.
    let mut a2 = QuadraticCost::new("a", 1, 4);
    restored.tune(&mut a2);
    assert!(a2.runs.is_empty());
}

#[test]
fn save_load_file_round_trip() {
    let dir = std::env::temp_dir().join("autotune_test_cache");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tunecache.json");

    let tuner = Tuner::new();
    let mut t = QuadraticCost::new("file", 4, 8);
    tuner.tune(&mut t);
    tuner.save(&path).unwrap();

    let loaded = Tuner::new();
    assert_eq!(loaded.load(&path).unwrap(), 1);
    assert_eq!(loaded.lookup(&t.key()), tuner.lookup(&t.key()));
    std::fs::remove_file(&path).ok();
}

#[test]
fn merge_json_rejects_garbage() {
    let tuner = Tuner::new();
    assert!(tuner.merge_json("not json at all").is_err());
}

#[test]
fn wall_clock_harness_runs_each_candidate() {
    struct Sleepy {
        runs: usize,
    }
    impl Tunable for Sleepy {
        fn key(&self) -> TuneKey {
            TuneKey::new("sleepy", "v", "")
        }
        fn param_space(&self) -> ParamSpace {
            ParamSpace::policies(3)
        }
        fn run(&mut self, _p: TuneParam) {
            self.runs += 1;
        }
        fn harness(&self) -> TimingHarness {
            TimingHarness::WallClock { reps: 2 }
        }
    }
    let tuner = Tuner::new();
    let mut s = Sleepy { runs: 0 };
    tuner.tune(&mut s);
    assert_eq!(s.runs, 3 * 2, "3 candidates x 2 reps");
}

#[test]
fn manual_clock_makes_wall_clock_sweeps_deterministic() {
    use obs::{Clock, ManualClock};
    use std::sync::Arc;

    // Each run advances the injected clock by a policy-dependent amount, so
    // the "wall clock" sweep is fully scripted: policy 1 is fastest.
    struct Scripted {
        clock: Arc<ManualClock>,
    }
    impl Tunable for Scripted {
        fn key(&self) -> TuneKey {
            TuneKey::new("scripted", "v", "")
        }
        fn param_space(&self) -> ParamSpace {
            ParamSpace::policies(3)
        }
        fn run(&mut self, p: TuneParam) {
            self.clock.advance(match p.policy {
                1 => 0.25,
                _ => 1.0,
            });
        }
        fn harness(&self) -> TimingHarness {
            TimingHarness::WallClock { reps: 2 }
        }
    }

    let clock = ManualClock::new(100.0);
    let tuner = Tuner::with_clock(clock.clone());
    let mut t = Scripted {
        clock: clock.clone(),
    };
    let best = tuner.tune(&mut t);
    assert_eq!(best.policy, 1, "scripted fastest candidate must win");
    let e = tuner.lookup(&t.key()).expect("entry cached");
    assert_eq!(e.seconds, 0.25, "best time is exactly the scripted advance");
    // 3 candidates x 2 reps, each advancing the manual clock.
    assert_eq!(clock.now(), 100.0 + 2.0 * (1.0 + 0.25 + 1.0));
}

#[test]
fn grain_ladder_space_is_bounded_and_nonempty() {
    let space = ParamSpace::grain_ladder(100_000);
    assert!(!space.is_empty());
    for c in space.candidates() {
        assert!(c.block <= c.grain);
    }
    // Tiny problems still get at least one candidate.
    let tiny = ParamSpace::grain_ladder(8);
    assert!(!tiny.is_empty());
}

#[test]
fn from_candidates_rejects_empty() {
    assert!(ParamSpace::from_candidates(vec![]).is_none());
    assert!(ParamSpace::from_candidates(vec![TuneParam::default()]).is_some());
}

#[test]
fn summary_lists_every_entry_sorted() {
    let tuner = Tuner::new();
    let mut b = QuadraticCost::new("zeta", 1, 3);
    let mut a = QuadraticCost::new("alpha", 2, 4);
    tuner.tune(&mut b);
    tuner.tune(&mut a);
    let s = tuner.summary();
    let lines: Vec<&str> = s.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].starts_with("alpha"), "sorted by key: {s}");
    assert!(lines[1].starts_with("zeta"));
    assert!(lines[0].contains("policy=2"));
}

#[test]
fn tuner_is_shareable_across_threads() {
    use std::sync::Arc;
    let tuner = Arc::new(Tuner::new());
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let tuner = Arc::clone(&tuner);
            std::thread::spawn(move || {
                let mut t = QuadraticCost::new(if i % 2 == 0 { "even" } else { "odd" }, 1, 3);
                tuner.tune(&mut t).policy
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 1);
    }
    assert_eq!(tuner.len(), 2);
}
