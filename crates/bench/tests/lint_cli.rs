//! Exit-code contract of `repro lint`: 0 on a clean (baselined) tree,
//! 1 on fresh findings or stale suppressions, and 0 again right after
//! `--update-baseline`.

use bench::experiments::lint::run_lint;
use std::path::Path;

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

fn fixture_ws() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../srclint/tests/fixtures/ws")
        .to_string_lossy()
        .into_owned()
}

fn repo_root() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .to_string_lossy()
        .into_owned()
}

#[test]
fn fixture_violations_exit_nonzero_without_a_baseline() {
    // Under the default repo Config the fixture tree still trips the
    // path-independent rules (R1/R2/R5) and the unused-dep check, and has
    // no baseline file, so both plain and --check runs must fail.
    let ws = fixture_ws();
    assert_eq!(run_lint(&args(&["--root", &ws])), 1);
    assert_eq!(run_lint(&args(&["--root", &ws, "--check"])), 1);
}

#[test]
fn update_baseline_then_check_exits_zero() {
    let ws = fixture_ws();
    let dir = std::env::temp_dir().join("srclint_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.json").to_string_lossy().into_owned();

    assert_eq!(
        run_lint(&args(&[
            "--root",
            &ws,
            "--baseline",
            &baseline,
            "--update-baseline"
        ])),
        0
    );
    assert_eq!(
        run_lint(&args(&["--root", &ws, "--baseline", &baseline, "--check"])),
        0
    );
    std::fs::remove_file(&baseline).ok();
}

#[test]
fn whole_repo_check_is_clean_against_committed_baseline() {
    // The gate CI runs: the tree as committed must pass --check with the
    // committed lint-baseline.json (no fresh findings, no stale entries).
    assert_eq!(run_lint(&args(&["--root", &repo_root(), "--check"])), 0);
}

#[test]
fn bad_flags_exit_with_usage_error() {
    assert_eq!(run_lint(&args(&["--format", "xml"])), 2);
    assert_eq!(run_lint(&args(&["--bogus"])), 2);
}
