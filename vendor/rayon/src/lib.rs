//! In-tree `rayon` with a real executor.
//!
//! This crate mirrors the subset of the `rayon 1.x` API the workspace uses
//! (identity-closure `fold`/`reduce`, `flat_map_iter`, `find_map_first`,
//! `par_chunks_mut`, ...) so call sites compile unchanged against either
//! this vendored crate or upstream rayon — but unlike the earlier
//! sequential shim, `par_iter`/`par_chunks`/`into_par_iter` now execute on
//! a persistent work-sharing thread pool ([`mod@pool`]).
//!
//! Determinism contract (relied on by the committed goldens): every
//! parallel operation is split into fixed-shape chunks derived from the
//! input length only, each chunk is reduced sequentially, and per-chunk
//! partials are combined in index order on the calling thread. Numeric
//! results are therefore bit-identical at `RAYON_NUM_THREADS=1, 2, ..., N`.
//! See `iter.rs` for the chunking rules and `pool.rs` for the engine.

mod pool;

pub mod iter;

pub use pool::{stats as pool_stats, PoolStats};

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

/// Width of the global pool as seen from this thread: the `install` cap if
/// one is active, else `RAYON_NUM_THREADS` / `build_global` /
/// `available_parallelism`, in that precedence order.
pub fn current_num_threads() -> usize {
    pool::effective_width()
}

// ---------------------------------------------------------------------
// Chunked-indexed entry points (not part of upstream rayon's API)
// ---------------------------------------------------------------------
//
// The hot kernels want "run this closure over explicit chunk ranges"
// without iterator plumbing. All three preserve the determinism contract:
// chunk boundaries come from `len`/`grain` only.

/// Run `f(start..end)` over consecutive ranges of at most `grain` indices
/// covering `0..len`, in parallel.
pub fn for_each_chunk<F>(len: usize, grain: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync + Send,
{
    let g = grain.max(1);
    let n_chunks = len.div_ceil(g);
    pool::run(n_chunks, &|i| {
        let start = i * g;
        f(start..(start + g).min(len));
    });
}

/// Split `data` into consecutive chunks of at most `grain` elements and run
/// `f(base_index, chunk)` over each in parallel.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync + Send,
{
    use crate::prelude::*;
    let g = grain.max(1);
    data.par_chunks_mut(g)
        .enumerate()
        .for_each(|(ci, chunk)| f(ci * g, chunk));
}

/// Deterministic chunked reduction over `0..len`: each chunk of at most
/// `grain` indices is folded sequentially from `identity()`, and the
/// per-chunk partials are combined with `combine` in index order. With a
/// single chunk (`len <= grain`) the result is bit-identical to the plain
/// sequential fold.
pub fn reduce_chunks<T, ID, F, OP>(
    len: usize,
    grain: usize,
    identity: ID,
    fold_chunk: F,
    combine: OP,
) -> T
where
    T: Send,
    ID: Fn() -> T + Sync + Send,
    F: Fn(T, std::ops::Range<usize>) -> T + Sync + Send,
    OP: Fn(T, T) -> T + Sync + Send,
{
    use crate::prelude::*;
    let g = grain.max(1);
    let n_chunks = len.div_ceil(g);
    let identity = &identity;
    let fold_chunk = &fold_chunk;
    (0..n_chunks)
        .into_par_iter()
        .map(move |ci| {
            let start = ci * g;
            fold_chunk(identity(), start..(start + g).min(len))
        })
        .reduce(identity, &combine)
}

// ---------------------------------------------------------------------
// Pool configuration
// ---------------------------------------------------------------------

#[derive(Debug)]
pub struct ThreadPoolBuildError {
    msg: String,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Desired width; 0 (the default) means "choose automatically"
    /// (`RAYON_NUM_THREADS`, else available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Set the width of the global pool. `RAYON_NUM_THREADS` still takes
    /// precedence (matching our CI contract, where the env var pins the
    /// width of an entire test run). Fails if the global pool already
    /// initialized at a different width.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        if self.num_threads == 0 {
            return Ok(());
        }
        pool::configure_global(self.num_threads).map_err(|w| ThreadPoolBuildError {
            msg: format!("global thread pool already initialized with {w} threads"),
        })
    }

    /// A width handle for `install` scopes. All handles share the one
    /// global worker set; the width is applied as a per-scope cap, so
    /// building a pool is cheap and cannot fail.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        Ok(ThreadPool { width })
    }
}

/// A view of the global pool at a fixed width. `install` runs a closure
/// with that width in effect on the calling thread: parallel calls made
/// inside fan out across at most `width` threads (workers grow on demand,
/// so an `install(8)` works even if the ambient width is 1), and
/// [`current_num_threads`] reports it. This is how the determinism tests
/// and `repro bench` compare widths within one process.
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.width
    }

    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        pool::with_width_cap(self.width, op)
    }
}

// ---------------------------------------------------------------------
// Structured concurrency (scope / join)
// ---------------------------------------------------------------------

/// Structured task scope backed by real OS threads (`std::thread::scope`).
/// Used for coarse task parallelism (I/O overlap, concurrent test
/// harnesses), not for the chunked kernels above.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Run both closures and return both results; `b` runs on its own thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join: task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_spawns_really_run() {
        let n = AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    n.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(n.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = crate::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    fn at_width<R: Send>(w: usize, op: impl FnOnce() -> R + Send) -> R {
        crate::ThreadPoolBuilder::new()
            .num_threads(w)
            .build()
            .unwrap()
            .install(op)
    }

    #[test]
    fn install_caps_reported_width() {
        assert_eq!(at_width(3, crate::current_num_threads), 3);
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn chunks_execute_exactly_once_under_contention() {
        // Real-thread stress: many jobs of many chunks, each chunk adds
        // its index once. Any drop or double-execution breaks the sum.
        at_width(8, || {
            for round in 0..200 {
                let n = 64 + (round % 7) * 13;
                let hits = (0..n).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
                let total = AtomicUsize::new(0);
                (0..n).into_par_iter().for_each(|i| {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                    total.fetch_add(i, Ordering::SeqCst);
                });
                assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
                assert_eq!(total.load(Ordering::SeqCst), n * (n - 1) / 2);
            }
        });
    }

    #[test]
    fn reductions_bit_identical_across_widths() {
        let xs: Vec<f64> = (0..100_000)
            .map(|i| ((i * 2654435761_usize) % 1000) as f64 * 1e-3 - 0.5)
            .collect();
        let dot = |v: &[f64]| {
            v.par_iter()
                .map(|x| x * x * 1.000000119 - 0.25)
                .fold(|| 0.0f64, |a, b| a + b)
                .reduce(|| 0.0f64, |a, b| a + b)
        };
        let r1 = at_width(1, || dot(&xs));
        let r2 = at_width(2, || dot(&xs));
        let r8 = at_width(8, || dot(&xs));
        assert_eq!(r1.to_bits(), r2.to_bits());
        assert_eq!(r1.to_bits(), r8.to_bits());
    }

    #[test]
    fn collect_preserves_index_order_in_parallel() {
        let v: Vec<usize> = at_width(8, || (0..10_000).into_par_iter().map(|i| i * 3).collect());
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn nested_parallel_calls_run_inline() {
        let out: Vec<usize> = at_width(4, || {
            (0..64)
                .into_par_iter()
                .map(|i| (0..100).into_par_iter().map(|j| i + j).sum::<usize>())
                .collect()
        });
        assert_eq!(out[3], (0..100).map(|j| 3 + j).sum::<usize>());
    }

    #[test]
    fn reduce_chunks_single_chunk_matches_sequential_fold() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let seq: f64 = xs.iter().fold(0.0, |a, x| a + x * x);
        let one = crate::reduce_chunks(
            xs.len(),
            xs.len(),
            || 0.0f64,
            |acc, r| r.fold(acc, |a, i| a + xs[i] * xs[i]),
            |a, b| a + b,
        );
        assert_eq!(seq.to_bits(), one.to_bits());
    }

    #[test]
    fn for_each_chunk_mut_covers_all_elements() {
        let mut v = vec![0u32; 4097];
        at_width(8, || {
            crate::for_each_chunk_mut(&mut v, 64, |base, chunk| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x = (base + k) as u32;
                }
            });
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn panics_propagate_from_chunks() {
        let caught = std::panic::catch_unwind(|| {
            at_width(4, || {
                (0..1000).into_par_iter().for_each(|i| {
                    if i == 777 {
                        panic!("boom");
                    }
                });
            });
        });
        assert!(caught.is_err());
    }
}
