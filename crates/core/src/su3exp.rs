//! The su(3) exponential map and algebra projection — shared by stout
//! smearing and the HMC gauge integrator.

use crate::complex::Complex;
use crate::su3::{Su3, NC};

/// Project a matrix onto the su(3) algebra (anti-hermitian traceless):
/// `P(M) = (M − M†)/2 − Tr(M − M†)/(2Nc)`.
pub fn project_antihermitian_traceless(m: &Su3<f64>) -> Su3<f64> {
    let mdag = m.dagger();
    let mut out = Su3::zero();
    for i in 0..NC {
        for j in 0..NC {
            out.m[i][j] = (m.m[i][j] - mdag.m[i][j]).scale(0.5);
        }
    }
    let tr = out.trace();
    let third = Complex::new(tr.re / NC as f64, tr.im / NC as f64);
    for i in 0..NC {
        out.m[i][i] -= third;
    }
    out
}

/// Matrix exponential `exp(M)` by scaling-and-squaring with a 12th-order
/// Taylor core — plenty for the `‖M‖ ≲ 1` matrices of smearing and HMC.
pub fn exp_su3(m: &Su3<f64>) -> Su3<f64> {
    // Scale down until the norm is comfortably small.
    let norm: f64 = {
        let mut acc = 0.0;
        for i in 0..NC {
            for j in 0..NC {
                acc += m.m[i][j].norm_sqr();
            }
        }
        acc.sqrt()
    };
    let mut squarings = 0u32;
    let mut scale = 1.0;
    while norm * scale > 0.5 {
        scale *= 0.5;
        squarings += 1;
    }
    let scaled = m.scale(scale);

    // Taylor series.
    let mut result = Su3::identity();
    let mut term = Su3::identity();
    for k in 1..=12 {
        term = term * scaled;
        term = term.scale(1.0 / k as f64);
        result += term;
    }
    // Square back up.
    for _ in 0..squarings {
        result = result * result;
    }
    result
}

/// Anti-hermitian traceless basis norm (for tests): `‖M‖²_F`.
pub fn algebra_norm_sqr(m: &Su3<f64>) -> f64 {
    let mut acc = 0.0;
    for i in 0..NC {
        for j in 0..NC {
            acc += m.m[i][j].norm_sqr();
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_algebra(seed: u64, size: f64) -> Su3<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = Su3::zero();
        for i in 0..3 {
            for j in 0..3 {
                m.m[i][j] = Complex::new(
                    size * (rng.gen::<f64>() - 0.5),
                    size * (rng.gen::<f64>() - 0.5),
                );
            }
        }
        project_antihermitian_traceless(&m)
    }

    #[test]
    fn projection_lands_in_the_algebra() {
        let m = random_algebra(3, 2.0);
        // Anti-hermitian: M† = −M.
        let mdag = m.dagger();
        let mut neg = Su3::zero();
        for i in 0..3 {
            for j in 0..3 {
                neg.m[i][j] = -m.m[i][j];
            }
        }
        assert!(mdag.distance(&neg) < 1e-14);
        assert!(m.trace().abs() < 1e-14);
        // Idempotent.
        let again = project_antihermitian_traceless(&m);
        assert!(again.distance(&m) < 1e-14);
    }

    #[test]
    fn exp_of_zero_is_identity() {
        let e = exp_su3(&Su3::zero());
        assert!(e.distance(&Su3::identity()) < 1e-15);
    }

    #[test]
    fn exp_of_algebra_element_is_special_unitary() {
        for seed in 0..10 {
            let m = random_algebra(seed, 1.5);
            let u = exp_su3(&m);
            assert!(u.unitarity_error() < 1e-12, "seed {seed}");
            assert!((u.det() - Complex::one()).abs() < 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn exp_satisfies_group_inverse() {
        let m = random_algebra(11, 1.0);
        let u = exp_su3(&m);
        let uinv = exp_su3(&m.scale(-1.0));
        assert!((u * uinv).distance(&Su3::identity()) < 1e-12);
    }

    #[test]
    fn exp_matches_series_for_small_arguments() {
        // exp(εM) ≈ 1 + εM + ε²M²/2 to O(ε³).
        let m = random_algebra(13, 1.0);
        let eps = 1e-4;
        let u = exp_su3(&m.scale(eps));
        let mut approx = Su3::identity();
        approx += m.scale(eps);
        approx += (m * m).scale(eps * eps / 2.0);
        assert!(u.distance(&approx) < 1e-10);
    }

    #[test]
    fn exp_scaling_and_squaring_agrees_across_magnitudes() {
        // exp(2M) == exp(M)².
        let m = random_algebra(17, 0.8);
        let e2m = exp_su3(&m.scale(2.0));
        let em = exp_su3(&m);
        assert!(e2m.distance(&(em * em)) < 1e-11);
    }
}
