//! Wilson spinors: one color 3-vector per spin component (`Ns = 4`).

use crate::complex::Complex;
use crate::gamma::{GammaSparse, SpinMatrix, GAMMA5_DIAG, NS};
use crate::real::Real;
use crate::su3::ColorVec;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Neg, Sub};

/// A site spinor: 4 spins × 3 colors = 12 complex numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Spinor<R> {
    /// Spin components, each a color vector.
    pub s: [ColorVec<R>; NS],
}

impl<R: Real> Spinor<R> {
    /// Zero spinor.
    pub fn zero() -> Self {
        Self {
            s: [ColorVec::zero(); NS],
        }
    }

    /// Unit spinor with a 1 in the given (spin, color) slot — a point source
    /// component.
    pub fn unit(spin: usize, color: usize) -> Self {
        let mut out = Self::zero();
        out.s[spin].c[color] = Complex::one();
        out
    }

    /// Squared 2-norm over all 12 components.
    #[inline(always)]
    pub fn norm_sqr(&self) -> R {
        self.s[0].norm_sqr() + self.s[1].norm_sqr() + self.s[2].norm_sqr() + self.s[3].norm_sqr()
    }

    /// Hermitian inner product `⟨self, rhs⟩`.
    pub fn dot(&self, rhs: &Self) -> Complex<R> {
        let mut acc = Complex::zero();
        for sp in 0..NS {
            acc += self.s[sp].dot(&rhs.s[sp]);
        }
        acc
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(&self, f: R) -> Self {
        Self {
            s: [
                self.s[0].scale(f),
                self.s[1].scale(f),
                self.s[2].scale(f),
                self.s[3].scale(f),
            ],
        }
    }

    /// Scale by a complex factor.
    pub fn scale_c(&self, f: Complex<R>) -> Self {
        Self {
            s: [
                self.s[0].scale_c(f),
                self.s[1].scale_c(f),
                self.s[2].scale_c(f),
                self.s[3].scale_c(f),
            ],
        }
    }

    /// Apply a sparse γ-matrix: `(γ ψ)_s = phase_s · ψ_{perm(s)}`.
    #[inline]
    pub fn apply_gamma(&self, g: &GammaSparse) -> Self {
        let mut out = Self::zero();
        for sp in 0..NS {
            out.s[sp] = self.s[g.perm[sp]].scale_c(g.phase[sp].cast());
        }
        out
    }

    /// Apply γ5 (diagonal in this basis): flips the sign of spins 2, 3.
    #[inline(always)]
    pub fn apply_gamma5(&self) -> Self {
        Self {
            s: [self.s[0], self.s[1], -self.s[2], -self.s[3]],
        }
    }

    /// Chirality projection `P± ψ = (1 ± γ5)/2 ψ`: zeroes two spin components.
    #[inline(always)]
    pub fn chiral_project(&self, plus: bool) -> Self {
        let mut out = Self::zero();
        for sp in 0..NS {
            let keep = (GAMMA5_DIAG[sp] > 0.0) == plus;
            if keep {
                out.s[sp] = self.s[sp];
            }
        }
        out
    }

    /// Apply a dense spin matrix (contraction code path).
    pub fn apply_spin_matrix(&self, m: &SpinMatrix<R>) -> Self {
        let mut out = Self::zero();
        for i in 0..NS {
            for j in 0..NS {
                let w = m.m[i][j];
                if w.norm_sqr() != R::ZERO {
                    out.s[i] += self.s[j].scale_c(w);
                }
            }
        }
        out
    }

    /// Convert precision component-wise.
    pub fn cast<S: Real>(&self) -> Spinor<S> {
        Spinor {
            s: [
                self.s[0].cast(),
                self.s[1].cast(),
                self.s[2].cast(),
                self.s[3].cast(),
            ],
        }
    }
}

impl<R: Real> Add for Spinor<R> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self {
            s: [
                self.s[0] + rhs.s[0],
                self.s[1] + rhs.s[1],
                self.s[2] + rhs.s[2],
                self.s[3] + rhs.s[3],
            ],
        }
    }
}

impl<R: Real> Sub for Spinor<R> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self {
            s: [
                self.s[0] - rhs.s[0],
                self.s[1] - rhs.s[1],
                self.s[2] - rhs.s[2],
                self.s[3] - rhs.s[3],
            ],
        }
    }
}

impl<R: Real> Neg for Spinor<R> {
    type Output = Self;
    fn neg(self) -> Self {
        Self {
            s: [-self.s[0], -self.s[1], -self.s[2], -self.s[3]],
        }
    }
}

impl<R: Real> AddAssign for Spinor<R> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        for sp in 0..NS {
            self.s[sp] += rhs.s[sp];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::{gamma5_dense, gamma_dense, GAMMAS};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_spinor(rng: &mut SmallRng) -> Spinor<f64> {
        let mut sp = Spinor::zero();
        for s in 0..NS {
            for c in 0..3 {
                sp.s[s].c[c] = Complex::from_f64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5);
            }
        }
        sp
    }

    #[test]
    fn sparse_gamma_matches_dense() {
        let mut rng = SmallRng::seed_from_u64(1);
        let psi = random_spinor(&mut rng);
        for mu in 0..4 {
            let sparse = psi.apply_gamma(&GAMMAS[mu]);
            let dense = psi.apply_spin_matrix(&gamma_dense(mu));
            assert!((sparse - dense).norm_sqr() < 1e-24, "γ{mu} mismatch");
        }
    }

    #[test]
    fn gamma5_fast_path_matches_dense() {
        let mut rng = SmallRng::seed_from_u64(2);
        let psi = random_spinor(&mut rng);
        let fast = psi.apply_gamma5();
        let dense = psi.apply_spin_matrix(&gamma5_dense());
        assert!((fast - dense).norm_sqr() < 1e-24);
    }

    #[test]
    fn chiral_projectors_are_complete_and_orthogonal() {
        let mut rng = SmallRng::seed_from_u64(3);
        let psi = random_spinor(&mut rng);
        let plus = psi.chiral_project(true);
        let minus = psi.chiral_project(false);
        assert!((plus + minus - psi).norm_sqr() < 1e-28, "P+ + P- = 1");
        assert!(plus.dot(&minus).abs() < 1e-15, "orthogonal sectors");
        assert!(
            (plus.chiral_project(true) - plus).norm_sqr() < 1e-28,
            "idempotent"
        );
        assert!(plus.chiral_project(false).norm_sqr() < 1e-28);
    }

    #[test]
    fn gamma_preserves_norm() {
        let mut rng = SmallRng::seed_from_u64(4);
        let psi = random_spinor(&mut rng);
        for mu in 0..4 {
            let g = psi.apply_gamma(&GAMMAS[mu]);
            assert!((g.norm_sqr() - psi.norm_sqr()).abs() < 1e-13);
        }
    }

    #[test]
    fn unit_spinor_has_unit_norm() {
        for spin in 0..4 {
            for color in 0..3 {
                let e = Spinor::<f64>::unit(spin, color);
                assert_eq!(e.norm_sqr(), 1.0);
            }
        }
    }

    #[test]
    fn dot_is_sesquilinear() {
        let mut rng = SmallRng::seed_from_u64(5);
        let a = random_spinor(&mut rng);
        let b = random_spinor(&mut rng);
        let z = Complex::from_f64(0.7, -0.3);
        let lhs = a.dot(&b.scale_c(z));
        let rhs = a.dot(&b) * z;
        assert!((lhs - rhs).abs() < 1e-14);
    }
}
