//! The real-physics end-to-end pipeline (Fig. 2) on a small lattice:
//! quenched gauge generation → I/O round trip → red–black mixed-precision
//! Möbius propagators with autotuned kernels → baryon contractions →
//! Feynman–Hellmann correlators → jackknifed effective coupling.
//!
//! Everything in this run is the real computation — only the lattice is
//! small. It demonstrates that every stage of the paper's workflow exists
//! and composes.

use crate::output::{print_table, ExperimentOutput};
use lqcd_analysis::jackknife::jackknife_vector;
use lqcd_core::prelude::*;
use std::collections::BTreeMap;

/// Result summary of the pipeline run.
pub struct PipelineResult {
    /// Plaquette per configuration.
    pub plaquettes: Vec<f64>,
    /// Jackknifed pion effective mass at t=1.
    pub pion_mass: (f64, f64),
    /// Jackknifed proton effective mass at t=1.
    pub proton_mass: (f64, f64),
    /// FH effective coupling series (mean, error) from t=0.
    pub geff: Vec<(f64, f64)>,
    /// Total solver iterations spent.
    pub total_iterations: usize,
    /// Total solver flops.
    pub total_flops: f64,
}

/// Run the pipeline: `n_configs` quenched configurations of a `dims`
/// lattice, Möbius mixed-precision propagators, proton + FH contractions.
pub fn run(
    out: &ExperimentOutput,
    dims: [usize; 4],
    n_configs: usize,
    seed: u64,
) -> PipelineResult {
    let lat = Lattice::new(dims);
    let params = MobiusParams::standard(4, 0.3);

    // Stage 1: gauge generation (Monte Carlo ensemble).
    let mut ens = QuenchedEnsemble::cold_start(&lat, HeatbathParams { beta: 6.0, n_or: 2 }, seed);
    let configs = ens.generate(10, n_configs, 5);
    let plaquettes: Vec<f64> = configs.iter().map(|g| average_plaquette(&lat, g)).collect();

    // Per-configuration correlators.
    let mut pion_all = Vec::new();
    let mut proton_all = Vec::new();
    let mut c2_all = Vec::new();
    let mut cfh_all = Vec::new();
    let mut trad_t2: Vec<f64> = Vec::new();
    let mut trad_t4: Vec<f64> = Vec::new();
    let mut total_iterations = 0usize;
    let mut total_flops = 0.0f64;

    let tmpdir = out.path("pipeline_fields");
    std::fs::create_dir_all(&tmpdir).expect("mkdir");

    for (i, gauge) in configs.iter().enumerate() {
        // Stage 2: I/O — write the configuration and read it back (the
        // workflow always round-trips fields through storage).
        let gpath = tmpdir.join(format!("cfg_{i}.lqio"));
        let mut md = BTreeMap::new();
        md.insert("beta".into(), "6.0".into());
        md.insert("config".into(), i.to_string());
        lattice_io::write_gauge(&gpath, &lat, gauge, md).expect("write gauge");
        let gauge = lattice_io::read_gauge(&gpath, &lat).expect("read gauge");

        // Stage 3: propagators through the mixed-precision red-black path.
        let solver = PropagatorSolver::new(&lat, &gauge, SolverKind::MobiusMixed { params });
        let (prop, stats) = solver.point_propagator(0);
        for s in &stats {
            total_iterations += s.iterations;
            total_flops += s.flops;
        }

        // Stage 4: Feynman-Hellmann sequential solves, plus the traditional
        // method's fixed-time insertions for comparison (one inversion set
        // per insertion time -- the cost FH avoids).
        let fh = FeynmanHellmann::axial(&solver);
        let (fh_prop, fh_stats) = fh.fh_propagator(&prop);
        for s in &fh_stats {
            total_iterations += s.iterations;
            total_flops += s.flops;
        }
        let (seq_t1, _) = fh.fixed_time_propagator(&prop, 1);
        let (seq_t2, _) = fh.fixed_time_propagator(&prop, 2);

        // Stage 5: contractions (the CPU-only stage).
        let pion = pion_correlator(&lat, &prop);
        let proj = polarized();
        let proton: Vec<f64> = proton_correlator(&lat, &prop, &prop, &proj)
            .iter()
            .map(|c| c.re)
            .collect();
        let cfh: Vec<f64> = fh_nucleon_correlator(&lat, &prop, &prop, &fh_prop, &fh_prop, &proj)
            .iter()
            .map(|c| c.re)
            .collect();
        // Traditional 3pt at t_sep = 2 and 4 (current at t_sep/2).
        let c3_t2: Vec<f64> = fh_nucleon_correlator(&lat, &prop, &prop, &seq_t1, &seq_t1, &proj)
            .iter()
            .map(|c| c.re)
            .collect();
        let c3_t4: Vec<f64> = fh_nucleon_correlator(&lat, &prop, &prop, &seq_t2, &seq_t2, &proj)
            .iter()
            .map(|c| c.re)
            .collect();
        trad_t2.push(c3_t2[2] / proton[2]);
        trad_t4.push(c3_t4[4] / proton[4]);

        // Stage 6: write results.
        let ppath = tmpdir.join(format!("proton_{i}.lqio"));
        let pc64: Vec<C64> = proton.iter().map(|&r| C64::new(r, 0.0)).collect();
        lattice_io::write_correlator(&ppath, &pc64, BTreeMap::new()).expect("write corr");

        pion_all.push(pion);
        c2_all.push(proton.clone());
        proton_all.push(proton);
        cfh_all.push(cfh);
    }

    // Stage 7: analysis with jackknife over configurations.
    let idx: Vec<usize> = (0..n_configs).collect();
    let nt = lat.nt();
    let mean_ratio_log = |rows: &[Vec<f64>], t: usize| -> f64 {
        let n = rows.len() as f64;
        let a: f64 = rows.iter().map(|r| r[t]).sum::<f64>() / n;
        let b: f64 = rows.iter().map(|r| r[t + 1]).sum::<f64>() / n;
        (a.abs() / b.abs()).ln()
    };
    let pion_est = jackknife_vector(&idx, |ii| {
        let rows: Vec<Vec<f64>> = ii.iter().map(|&i| pion_all[i].clone()).collect();
        (0..nt - 1).map(|t| mean_ratio_log(&rows, t)).collect()
    });
    let proton_est = jackknife_vector(&idx, |ii| {
        let rows: Vec<Vec<f64>> = ii.iter().map(|&i| proton_all[i].clone()).collect();
        (0..nt - 1).map(|t| mean_ratio_log(&rows, t)).collect()
    });
    let geff_est = jackknife_vector(&idx, |ii| {
        let c2: Vec<Vec<f64>> = ii.iter().map(|&i| c2_all[i].clone()).collect();
        let cf: Vec<Vec<f64>> = ii.iter().map(|&i| cfh_all[i].clone()).collect();
        let n = c2.len() as f64;
        let r: Vec<f64> = (0..nt)
            .map(|t| {
                let num: f64 = cf.iter().map(|row| row[t]).sum::<f64>() / n;
                let den: f64 = c2.iter().map(|row| row[t]).sum::<f64>() / n;
                num / den
            })
            .collect();
        (0..nt - 1).map(|t| r[t + 1] - r[t]).collect()
    });

    // Console report.
    let rows: Vec<Vec<String>> = (0..nt - 1)
        .map(|t| {
            vec![
                t.to_string(),
                format!("{:.3} ± {:.3}", pion_est[t].mean, pion_est[t].error),
                format!("{:.3} ± {:.3}", proton_est[t].mean, proton_est[t].error),
                format!("{:.3} ± {:.3}", geff_est[t].mean, geff_est[t].error),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Real pipeline — {}^3 x {} quenched, Mobius mixed-precision, {} configs",
            dims[0], dims[3], n_configs
        ),
        &["t", "m_eff(pion)", "m_eff(proton)", "g_eff(FH)"],
        &rows,
    );
    {
        use lqcd_analysis::jackknife::jackknife;
        let r2 = jackknife(&trad_t2, |s| s.iter().sum::<f64>() / s.len() as f64);
        let r4 = jackknife(&trad_t4, |s| s.iter().sum::<f64>() / s.len() as f64);
        println!(
            "\ntraditional 3pt ratios (real pipeline, 12 extra solves per t_ins each):\n  \
             R(t_sep=2) = {:.4} ± {:.4}   R(t_sep=4) = {:.4} ± {:.4}",
            r2.mean, r2.error, r4.mean, r4.error
        );
        println!("(the FH column above gets every separation from ONE sequential solve set)");
    }
    println!(
        "\nplaquettes: {:?}\nsolver iterations: {}  flops: {:.3e}",
        plaquettes
            .iter()
            .map(|p| format!("{p:.4}"))
            .collect::<Vec<_>>(),
        total_iterations,
        total_flops
    );

    let csv: Vec<Vec<f64>> = (0..nt - 1)
        .map(|t| {
            vec![
                t as f64,
                pion_est[t].mean,
                pion_est[t].error,
                proton_est[t].mean,
                proton_est[t].error,
                geff_est[t].mean,
                geff_est[t].error,
            ]
        })
        .collect();
    out.csv(
        "pipeline.csv",
        "t,mpi,mpi_err,mp,mp_err,geff,geff_err",
        &csv,
    )
    .expect("csv");

    std::fs::remove_dir_all(&tmpdir).ok();

    PipelineResult {
        plaquettes,
        pion_mass: (pion_est[1].mean, pion_est[1].error),
        proton_mass: (proton_est[1].mean, proton_est[1].error),
        geff: geff_est.iter().map(|e| (e.mean, e.error)).collect(),
        total_iterations,
        total_flops,
    }
}

/// The polarized sink projector used for the axial matrix element.
pub fn polarized() -> SpinMatrix<f64> {
    lqcd_core::gamma::polarized_projector()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_runs_end_to_end() {
        let out = ExperimentOutput::new(std::env::temp_dir().join("pipeline_test")).unwrap();
        let r = run(&out, [4, 4, 4, 8], 2, 31);
        assert_eq!(r.plaquettes.len(), 2);
        for p in &r.plaquettes {
            assert!((0.45..0.75).contains(p), "β=6.0 plaquette {p}");
        }
        // Hadron masses are positive and the proton is heavier.
        assert!(r.pion_mass.0 > 0.0);
        assert!(r.proton_mass.0 > r.pion_mass.0);
        // g_eff finite in the early window.
        for (g, _) in &r.geff[..3] {
            assert!(g.is_finite());
        }
        assert!(r.total_iterations > 0);
    }
}
