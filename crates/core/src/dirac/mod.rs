//! Dirac operators and the linear-operator interface used by the solvers.

mod hopping;
mod mobius;
mod wilson;

pub use hopping::{hop_site, hop_site_block, HoppingKernel, HOPPING_FLOPS_PER_SITE};
pub use mobius::{MobiusDirac, MobiusParams, PrecMobius};
pub use wilson::{PrecWilson, WilsonDirac};

use crate::real::Real;
use crate::spinor::Spinor;

/// Execution strategy of a Dirac operator's `apply` — the axis the
/// layout-aware autotuner sweeps (see [`crate::tune::tune_dslash_variant`]).
///
/// Every variant is deterministic, width-invariant, and **bit-identical** to
/// every other variant of the same operator: the fused paths fold algebra
/// passes into the stencil's output write without reassociating any
/// per-element operation chain, and the SoA path evaluates the identical
/// scalar chains lane-parallel (see [`crate::simd`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DslashVariant {
    /// Reference path: slice-by-slice hops with separate algebra passes over
    /// AoS storage.
    AosScalar,
    /// AoS storage with the diagonal/5th-dimension algebra fused into the
    /// hop's output write and gauge links reused across the whole s-extent.
    AosFused,
    /// Blocked SoA storage with lane-vectorized complex arithmetic
    /// (full-volume 4D operators; requires the x-extent to be a multiple of
    /// [`crate::simd::LANES`]).
    Soa,
}

impl DslashVariant {
    /// Stable short name used in tune keys and bench output.
    pub fn name(self) -> &'static str {
        match self {
            DslashVariant::AosScalar => "aos",
            DslashVariant::AosFused => "aos_fused",
            DslashVariant::Soa => "soa",
        }
    }
}

/// A general linear operator on a fermion vector, as seen by Krylov solvers.
pub trait LinearOp<R: Real>: Sync {
    /// Length (in spinors) of vectors this operator acts on.
    fn vec_len(&self) -> usize;
    /// `out = A · inp`.
    fn apply(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]);
    /// Floating-point operations per `apply`, for performance reporting.
    fn flops_per_apply(&self) -> f64 {
        0.0
    }
}

/// A Dirac-type operator: knows its adjoint (via γ5-hermiticity), so the
/// normal equations `D†D x = D†b` can be formed.
pub trait DiracOp<R: Real>: LinearOp<R> {
    /// `out = D† · inp`.
    fn apply_dagger(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]);
}

/// A linear operator with a batched multi-RHS entry point.
///
/// Slices hold `vec_len() * nrhs` spinors interleaved RHS-innermost
/// (`data[i * nrhs + j]`, see [`crate::block::BlockSpinor`]). The contract
/// is *bit-exactness*: column `j` of `apply_block` must equal `apply` on a
/// packed copy of column `j`, to the last bit — the blocked kernels reuse
/// the single-RHS per-site arithmetic and only amortize the gauge-link
/// loads across columns.
pub trait BlockLinearOp<R: Real>: LinearOp<R> {
    /// `out = A · inp` on an interleaved block of `nrhs` right-hand-sides.
    fn apply_block(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], nrhs: usize);
}

/// A Dirac-type operator with a batched adjoint, so blocked normal
/// equations can be formed.
pub trait BlockDiracOp<R: Real>: BlockLinearOp<R> + DiracOp<R> {
    /// `out = D† · inp` on an interleaved block of `nrhs` right-hand-sides.
    fn apply_dagger_block(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], nrhs: usize);
}

/// `D† D`, the Hermitian positive-definite operator CG actually inverts —
/// "conjugate gradient on the normal equations", the paper's solver for the
/// Möbius domain-wall discretization.
pub struct NormalOp<'a, R: Real, D: DiracOp<R>> {
    op: &'a D,
    _marker: std::marker::PhantomData<R>,
}

impl<'a, R: Real, D: DiracOp<R>> NormalOp<'a, R, D> {
    /// Wrap a Dirac operator.
    pub fn new(op: &'a D) -> Self {
        Self {
            op,
            _marker: std::marker::PhantomData,
        }
    }

    /// The underlying Dirac operator.
    pub fn inner(&self) -> &D {
        self.op
    }
}

impl<'a, R: Real, D: DiracOp<R>> LinearOp<R> for NormalOp<'a, R, D> {
    fn vec_len(&self) -> usize {
        self.op.vec_len()
    }

    fn apply(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        let mut tmp = vec![Spinor::zero(); self.op.vec_len()];
        self.op.apply(&mut tmp, inp);
        self.op.apply_dagger(out, &tmp);
    }

    fn flops_per_apply(&self) -> f64 {
        2.0 * self.op.flops_per_apply()
    }
}

impl<'a, R: Real, D: BlockDiracOp<R>> BlockLinearOp<R> for NormalOp<'a, R, D> {
    fn apply_block(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], nrhs: usize) {
        let mut tmp = vec![Spinor::zero(); self.op.vec_len() * nrhs];
        self.op.apply_block(&mut tmp, inp, nrhs);
        self.op.apply_dagger_block(out, &tmp, nrhs);
    }
}
