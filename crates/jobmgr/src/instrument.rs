//! Observability hooks shared by the three schedulers.
//!
//! Each scheduler builds a [`SchedObs`] at the top of its fault-aware run
//! and calls the event hooks at state transitions, passing the *simulation*
//! time (`Registry::event_at`), so the emitted timeline is deterministic
//! and independent of the wall clock. Event kinds are unified across
//! schedulers — `task_start`, `task_end`, `task_killed`, `task_failed`,
//! `task_abandoned`, `requeue`, `node_crash`, `blacklist` — with a `sched`
//! field naming the scheduler, mirroring the recovery decisions tracked by
//! [`crate::fault::FaultStats`].
//!
//! Aggregate counters and gauges are flushed once per run from the final
//! [`SimReport`] in [`SchedObs::finish`]; only the high-water gauges are
//! touched from inside the DES loop.

use crate::report::SimReport;
use obs::{Json, Registry};

pub(crate) struct SchedObs {
    reg: Registry,
    sched: &'static str,
}

impl SchedObs {
    pub(crate) fn new(sched: &'static str) -> Self {
        Self {
            reg: Registry::current(),
            sched,
        }
    }

    fn ev(&self, t: f64, kind: &str, mut fields: Vec<(&str, Json)>) {
        fields.insert(0, ("sched", Json::from(self.sched)));
        self.reg.event_at(t, kind, fields);
    }

    pub(crate) fn task_start(&self, t: f64, id: usize, attempt: usize, nodes: usize) {
        self.ev(
            t,
            "task_start",
            vec![
                ("task", Json::from(id)),
                ("attempt", Json::from(attempt)),
                ("nodes", Json::from(nodes)),
            ],
        );
    }

    pub(crate) fn task_end(&self, t: f64, id: usize, attempt: usize) {
        self.ev(
            t,
            "task_end",
            vec![("task", Json::from(id)), ("attempt", Json::from(attempt))],
        );
    }

    /// An in-flight attempt died (`cause`: "transient", "node_crash", or
    /// "wave_kill" for naive-bundling collateral).
    pub(crate) fn task_killed(&self, t: f64, id: usize, attempt: usize, cause: &str) {
        self.ev(
            t,
            "task_killed",
            vec![
                ("task", Json::from(id)),
                ("attempt", Json::from(attempt)),
                ("cause", Json::from(cause)),
            ],
        );
    }

    /// Retry budget exhausted: the task is permanently failed.
    pub(crate) fn task_failed(&self, t: f64, id: usize) {
        self.ev(t, "task_failed", vec![("task", Json::from(id))]);
    }

    /// Never ran: a dependency failed or capacity shrank below its footprint.
    pub(crate) fn task_abandoned(&self, t: f64, id: usize) {
        self.ev(t, "task_abandoned", vec![("task", Json::from(id))]);
    }

    pub(crate) fn requeue(&self, t: f64, id: usize, ready_at: f64) {
        self.ev(
            t,
            "requeue",
            vec![("task", Json::from(id)), ("ready_at", Json::from(ready_at))],
        );
    }

    pub(crate) fn node_crash(&self, t: f64, node: usize) {
        self.ev(t, "node_crash", vec![("node", Json::from(node))]);
    }

    pub(crate) fn blacklist(&self, t: f64, node: usize) {
        self.ev(t, "blacklist", vec![("node", Json::from(node))]);
    }

    /// Tasks ready to run but not yet placed. Tracks the current value and
    /// the run's high-water mark.
    pub(crate) fn queue_depth(&self, depth: usize) {
        self.reg
            .gauge(&format!("sched.{}.queue_depth", self.sched))
            .set(depth as f64);
        self.reg
            .gauge(&format!("sched.{}.queue_depth_peak", self.sched))
            .set_max(depth as f64);
    }

    /// Nodes currently occupied by in-flight attempts.
    pub(crate) fn nodes_busy(&self, busy: usize) {
        self.reg
            .gauge(&format!("sched.{}.nodes_busy", self.sched))
            .set(busy as f64);
        self.reg
            .gauge(&format!("sched.{}.nodes_busy_peak", self.sched))
            .set_max(busy as f64);
    }

    /// Flush the run's aggregate counters and utilization gauges.
    pub(crate) fn finish(&self, report: &SimReport) {
        let p = format!("sched.{}", self.sched);
        let c = |name: &str, v: u64| {
            if v > 0 {
                self.reg.counter(&format!("{p}.{name}")).add(v);
            }
        };
        self.reg.counter(&format!("{p}.runs")).inc();
        c("tasks_completed", report.completed_tasks as u64);
        c("tasks_failed", report.failed_tasks as u64);
        c("node_crashes", report.faults.node_crashes as u64);
        c("blacklisted_nodes", report.faults.blacklisted_nodes as u64);
        c(
            "transient_failures",
            report.faults.transient_failures as u64,
        );
        c("retries", report.faults.retries as u64);
        c("requeues", report.faults.requeues as u64);
        c(
            "permanent_failures",
            report.faults.permanent_failures as u64,
        );
        c("abandoned_tasks", report.faults.abandoned_tasks as u64);
        c("stragglers", report.faults.stragglers as u64);
        if report.faults.wasted_node_seconds > 0.0 {
            self.reg
                .float_counter(&format!("{p}.wasted_node_seconds"))
                .add(report.faults.wasted_node_seconds);
        }
        self.reg
            .float_counter(&format!("{p}.busy_node_seconds"))
            .add(report.busy_node_seconds);
        self.reg
            .gauge(&format!("{p}.utilization"))
            .set(report.utilization());
        self.reg
            .gauge(&format!("{p}.makespan"))
            .set(report.makespan);
    }
}
