//! Simulation outcome reporting.

use crate::fault::FaultStats;
use serde::{Deserialize, Serialize};

/// One task's scheduling record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Task id.
    pub id: usize,
    /// Simulation time the task started.
    pub start: f64,
    /// Simulation time the task finished.
    pub end: f64,
    /// Node indices it occupied.
    pub nodes: Vec<usize>,
    /// Effective speed factor it ran at (node jitter × fragmentation ×
    /// straggler/NIC degradation).
    pub speed: f64,
    /// Which attempt this record describes (1 = first launch).
    #[serde(default = "one")]
    pub attempts: usize,
}

// Referenced by `serde(default = "one")` under real serde; the vendored
// derive stub does not expand the attribute, so the function looks unused.
#[allow(dead_code)]
fn one() -> usize {
    1
}

/// Aggregate outcome of one scheduler run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Wall time from submission to last completion, seconds.
    pub makespan: f64,
    /// Startup overhead before the first task could run, seconds.
    pub startup: f64,
    /// Node-seconds actually busy with GPU tasks that *completed*.
    pub busy_node_seconds: f64,
    /// Node-seconds available (healthy nodes × makespan).
    pub total_node_seconds: f64,
    /// Per-task records of the successful attempt of every *completed* task
    /// (ordered by id when every task completed).
    pub records: Vec<TaskRecord>,
    /// Useful flops in the submitted workload.
    pub total_flops: f64,
    /// Flops of the tasks that actually completed (== `total_flops` on a
    /// pristine run).
    #[serde(default)]
    pub completed_flops: f64,
    /// Tasks that completed.
    #[serde(default)]
    pub completed_tasks: usize,
    /// Tasks permanently failed or abandoned.
    #[serde(default)]
    pub failed_tasks: usize,
    /// Attempts consumed per task id (length = workload size; empty for
    /// legacy reports).
    #[serde(default)]
    pub task_attempts: Vec<usize>,
    /// Records of killed attempts (crash collateral, transient failures) —
    /// the wasted work the fault sweep plots.
    #[serde(default)]
    pub wasted_records: Vec<TaskRecord>,
    /// Fault and recovery counters.
    #[serde(default)]
    pub faults: FaultStats,
}

impl SimReport {
    /// Fraction of available node time spent on GPU tasks that completed.
    pub fn utilization(&self) -> f64 {
        if self.total_node_seconds > 0.0 {
            self.busy_node_seconds / self.total_node_seconds
        } else {
            0.0
        }
    }

    /// Sustained application rate, FLOP/s, counting only completed work.
    pub fn sustained_flops(&self) -> f64 {
        if self.makespan > 0.0 {
            self.completed_flops / self.makespan
        } else {
            0.0
        }
    }

    /// Fraction of the submitted useful work that completed.
    pub fn completed_work_fraction(&self) -> f64 {
        if self.total_flops > 0.0 {
            self.completed_flops / self.total_flops
        } else if self.completed_tasks + self.failed_tasks > 0 {
            self.completed_tasks as f64 / (self.completed_tasks + self.failed_tasks) as f64
        } else {
            1.0
        }
    }

    /// Node-seconds thrown away on killed attempts, as a fraction of all
    /// node-seconds spent computing (useful + wasted).
    pub fn wasted_work_fraction(&self) -> f64 {
        let spent = self.busy_node_seconds + self.faults.wasted_node_seconds;
        if spent > 0.0 {
            self.faults.wasted_node_seconds / spent
        } else {
            0.0
        }
    }

    /// Per-task sustained rates in TFLOP/s, for the Fig. 7 histogram.
    pub fn per_task_tflops(&self, flops_per_task: f64) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.end > r.start)
            .map(|r| flops_per_task / (r.end - r.start) / 1e12)
            .collect()
    }
}

/// Histogram helper: counts of `values` in `n_bins` equal bins over
/// `[lo, hi)`. Returns (bin_centers, counts).
pub fn histogram(values: &[f64], lo: f64, hi: f64, n_bins: usize) -> (Vec<f64>, Vec<usize>) {
    assert!(hi > lo && n_bins > 0);
    let width = (hi - lo) / n_bins as f64;
    let mut counts = vec![0usize; n_bins];
    for &v in values {
        if v >= lo && v < hi {
            counts[((v - lo) / width) as usize] += 1;
        }
    }
    let centers = (0..n_bins).map(|i| lo + (i as f64 + 0.5) * width).collect();
    (centers, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_and_rate() {
        let r = SimReport {
            makespan: 100.0,
            busy_node_seconds: 75.0 * 4.0,
            total_node_seconds: 100.0 * 4.0,
            total_flops: 1e15,
            completed_flops: 1e15,
            ..SimReport::default()
        };
        assert!((r.utilization() - 0.75).abs() < 1e-12);
        assert!((r.sustained_flops() - 1e13).abs() < 1.0);
        assert!((r.completed_work_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fault_fractions() {
        let r = SimReport {
            makespan: 100.0,
            busy_node_seconds: 300.0,
            total_node_seconds: 400.0,
            total_flops: 1e15,
            completed_flops: 0.5e15,
            completed_tasks: 5,
            failed_tasks: 5,
            faults: FaultStats {
                wasted_node_seconds: 100.0,
                ..FaultStats::default()
            },
            ..SimReport::default()
        };
        assert!((r.completed_work_fraction() - 0.5).abs() < 1e-12);
        assert!((r.wasted_work_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_correctly() {
        let vals = vec![0.5, 1.5, 1.6, 2.5, 9.9, 10.0, -1.0];
        let (centers, counts) = histogram(&vals, 0.0, 10.0, 10);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[2], 1);
        assert_eq!(counts[9], 1);
        assert_eq!(counts.iter().sum::<usize>(), 5, "out-of-range dropped");
        assert!((centers[0] - 0.5).abs() < 1e-12);
    }
}
