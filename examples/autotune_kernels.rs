//! The run-time autotuner at work, on both of its paper roles:
//! kernel launch parameters (here: the stencil's parallel grain) and the
//! communication policy for halo exchanges.
//!
//! ```sh
//! cargo run --release --example autotune_kernels
//! ```

use lqcd::autotune::Tuner;
use lqcd::core::prelude::*;
use lqcd::core::tune::tune_operator;
use lqcd::machine::{sierra, CommPolicy, SolverPerfModel};

fn main() {
    let tuner = Tuner::new();

    // Kernel tuning: sweep the parallel grain of the Wilson and Möbius
    // stencils on first encounter, then reuse the cache.
    let lat = Lattice::new([8, 8, 8, 16]);
    let gauge = GaugeField::<f64>::hot(&lat, 5);
    let gauge32 = gauge.cast::<f32>();

    let mut wilson = WilsonDirac::new(&lat, &gauge, 0.1, true);
    let grain = tune_operator(&tuner, &mut wilson);
    println!("dslash_wilson/f64: tuned grain = {grain}");

    let mut wilson32 = WilsonDirac::new(&lat, &gauge32, 0.1, true);
    let grain32 = tune_operator(&tuner, &mut wilson32);
    println!("dslash_wilson/f32: tuned grain = {grain32}");

    let mut mobius = MobiusDirac::new(&lat, &gauge, MobiusParams::standard(8, 0.1));
    let grain_m = tune_operator(&tuner, &mut mobius);
    println!("dslash_mobius/f64: tuned grain = {grain_m}");

    // Second encounter: pure cache hit, no sweep.
    let mut wilson_again = WilsonDirac::new(&lat, &gauge, 0.1, true);
    tune_operator(&tuner, &mut wilson_again);
    let stats = tuner.stats();
    println!(
        "tuner cache: {} entries, {} misses (swept), {} hits (looked up)",
        tuner.len(),
        stats.misses,
        stats.hits
    );

    // Communication-policy tuning against the Sierra model at several GPU
    // counts — the paper's extension of the QUDA autotuner.
    println!("\ncommunication-policy tuning, 48^3x64 on Sierra:");
    let model = SolverPerfModel::new(sierra(), [48, 48, 48, 64], 12);
    for gpus in [4usize, 16, 64, 256] {
        if let Some(policy) = model.tuned_policy(&tuner, gpus) {
            let t = model.iteration_time(gpus, policy).expect("fits");
            println!(
                "  {gpus:4} GPUs -> {:16}  ({:.2} ms/iteration)",
                policy.label(),
                t * 1e3
            );
            // Show what the tuner rejected.
            for p in CommPolicy::available(&sierra()) {
                if p != policy {
                    let tp = model.iteration_time(gpus, p).expect("fits");
                    println!("        rejected {:16} ({:.2} ms)", p.label(), tp * 1e3);
                }
            }
        }
    }

    // Persist the cache, as QUDA persists its tunecache.
    let path = std::env::temp_dir().join("lqcd_tunecache.json");
    tuner.save(&path).expect("save tune cache");
    println!("\ntune cache persisted to {}", path.display());
    let restored = Tuner::new();
    let n = restored.load(&path).expect("load tune cache");
    println!("restored {n} entries into a fresh tuner");
}
