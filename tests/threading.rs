//! Determinism suite for the threaded execution layer.
//!
//! The vendored rayon executor promises that every kernel result is
//! bit-identical at any pool width: chunk shapes are derived from input
//! length only, chunks are reduced sequentially, and partials combine in
//! index order. These tests pin that contract at the level the physics
//! cares about — BLAS reductions, a full mixed-precision CG solve, and
//! timeslice-binned contractions — by running the identical computation
//! under `install` scopes of width 1, 2, and 8 and comparing raw bits.

use lqcd::core::prelude::*;
use lqcd::core::prop::Propagator;
use lqcd::core::spinor::Spinor;

fn at_width<R: Send>(w: usize, op: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(w)
        .build()
        .expect("width handle")
        .install(op)
}

/// Run `op` at widths 1, 2, and 8 and require bitwise-equal results.
fn widths_agree<R, F>(op: F) -> R
where
    R: PartialEq + std::fmt::Debug + Send,
    F: Fn() -> R + Send + Sync,
{
    let r1 = at_width(1, &op);
    let r2 = at_width(2, &op);
    let r8 = at_width(8, &op);
    assert_eq!(r1, r2, "width 1 vs 2 disagree");
    assert_eq!(r1, r8, "width 1 vs 8 disagree");
    r1
}

fn bits(v: &[Spinor<f64>]) -> Vec<u64> {
    // Spinor layout: 4 spin components x 3 colors x (re, im).
    v.iter()
        .flat_map(|s| {
            s.s.iter().flat_map(|cv| {
                cv.c.iter()
                    .flat_map(|z| [z.re.to_f64().to_bits(), z.im.to_f64().to_bits()])
            })
        })
        .collect()
}

#[test]
fn dot_and_norm_bits_stable_across_widths() {
    // Larger than blas::PAR_THRESHOLD so the multi-chunk path is exercised.
    let x = FermionField::<f64>::gaussian(40_000, 21).data;
    let y = FermionField::<f64>::gaussian(40_000, 22).data;
    let (d, n) = widths_agree(|| {
        let d = blas::dot(&x, &y);
        (
            (d.re.to_bits(), d.im.to_bits()),
            blas::norm_sqr(&x).to_bits(),
        )
    });
    assert!(f64::from_bits(d.0).is_finite());
    assert!(f64::from_bits(n) > 0.0);
}

#[test]
fn axpy_family_bits_stable_across_widths() {
    let x = FermionField::<f64>::gaussian(20_000, 31).data;
    let y0 = FermionField::<f64>::gaussian(20_000, 32).data;
    widths_agree(|| {
        let mut y = y0.clone();
        blas::axpy(0.37, &x, &mut y);
        blas::xpby(&x, -1.21, &mut y);
        blas::scal(0.93, &mut y);
        bits(&y)
    });
}

#[test]
fn dslash_application_bits_stable_across_widths() {
    let lat = Lattice::new([8, 8, 8, 16]);
    let gauge = GaugeField::<f64>::hot(&lat, 41);
    let psi = FermionField::<f64>::gaussian(lat.volume(), 42).data;
    let dirac = WilsonDirac::new(&lat, &gauge, 0.2, true);
    widths_agree(|| {
        let mut out = vec![Spinor::zero(); lat.volume()];
        dirac.apply(&mut out, &psi);
        bits(&out)
    });
}

#[test]
fn mixed_cg_solve_bits_stable_across_widths() {
    // Full reliable-update mixed-precision solve: every iterate's dot /
    // norm / axpy must be width-independent for the trajectories (and the
    // iteration counts) to match bit-for-bit.
    let lat = Lattice::new([8, 8, 8, 16]);
    let gauge64 = GaugeField::<f64>::hot(&lat, 51);
    let gauge32 = gauge64.cast::<f32>();
    let d64 = WilsonDirac::new(&lat, &gauge64, 0.3, true);
    let d32 = WilsonDirac::new(&lat, &gauge32, 0.3, true);
    let n64 = NormalOp::new(&d64);
    let n32 = NormalOp::new(&d32);
    let b = FermionField::<f64>::gaussian(lat.volume(), 52).data;

    let (xbits, iters) = widths_agree(|| {
        let mut x = vec![Spinor::zero(); lat.volume()];
        let stats = mixed_cg(
            &n64,
            &n32,
            &mut x,
            &b,
            MixedParams {
                outer: CgParams {
                    tol: 1e-8,
                    max_iter: 10_000,
                },
                ..MixedParams::default()
            },
        );
        assert!(stats.converged, "{stats:?}");
        (bits(&x), stats.iterations)
    });
    assert!(iters > 0);
    assert!(!xbits.is_empty());
}

#[test]
fn timeslice_contractions_bits_stable_across_widths() {
    // Volume 8192 spans several contraction chunks; a synthetic propagator
    // (gaussian columns) is enough to exercise the binned reduction.
    let lat = Lattice::new([8, 8, 8, 16]);
    let prop = Propagator {
        columns: (0..12)
            .map(|i| FermionField::<f64>::gaussian(lat.volume(), 100 + i))
            .collect(),
        source_site: 0,
        source_time: 3,
    };
    let pion = widths_agree(|| {
        lqcd::core::contract::pion_correlator(&lat, &prop)
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>()
    });
    assert_eq!(pion.len(), lat.nt());
}

#[test]
fn pool_neither_drops_nor_duplicates_chunks() {
    // Real-thread stress at the public API level: every index must be
    // visited exactly once per call, under repeated contended jobs.
    use rayon::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    at_width(8, || {
        for round in 0..100 {
            let n = 1000 + round * 7;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            (0..n).into_par_iter().for_each(|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} in round {round}");
            }
        }
    });
}

#[test]
fn reported_width_follows_install_scope() {
    assert_eq!(at_width(5, rayon::current_num_threads), 5);
    assert!(rayon::current_num_threads() >= 1);
}
