//! Grouping of queued requests into multi-RHS solve batches.
//!
//! Two requests are batch-compatible when they solve the *same linear
//! system family* — same gauge configuration, same quark mass (bit
//! pattern), same tolerance tier — through the dense pipeline; then their
//! sources are just extra right-hand-side columns of one [`cg_block`]
//! call and the batch amortizes every gauge-link load across all of them.
//! Sharded requests never batch: the fault-tolerant pipeline is
//! single-RHS.
//!
//! [`cg_block`]: lqcd_core::solver::cg_block

use crate::request::{CacheKey, Policy, Precision, SolveRequest};
use std::collections::VecDeque;

/// The compatibility class of a dense request: everything that selects
/// the operator, but not the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BatchClass {
    pub config_id: u32,
    pub mass_bits: u64,
    pub precision: Precision,
}

impl BatchClass {
    /// The class of `req`, or `None` when it cannot batch (sharded).
    pub fn of(req: &SolveRequest) -> Option<BatchClass> {
        match req.policy {
            Policy::Dense => Some(BatchClass {
                config_id: req.config_id,
                mass_bits: req.mass.to_bits(),
                precision: req.precision,
            }),
            Policy::Sharded => None,
        }
    }
}

/// A request sitting in a tenant queue, with its canonical key already
/// derived.
#[derive(Clone, Copy, Debug)]
pub struct QueuedRequest {
    pub req: SolveRequest,
    pub key: CacheKey,
    /// Admission sequence number, for deterministic tie-breaking.
    pub seq: u64,
}

/// Pull every request of `class` out of the tenant queues, scanning
/// tenants in index order and each queue front-to-back, until `max_nrhs`
/// members are collected. The scan order is a pure function of queue
/// contents, so batch composition is deterministic.
pub fn drain_compatible(
    queues: &mut [VecDeque<QueuedRequest>],
    class: BatchClass,
    max_nrhs: usize,
) -> Vec<QueuedRequest> {
    let mut members = Vec::new();
    for q in queues.iter_mut() {
        if members.len() >= max_nrhs {
            break;
        }
        let mut kept = VecDeque::with_capacity(q.len());
        while let Some(c) = q.pop_front() {
            if members.len() < max_nrhs && BatchClass::of(&c.req) == Some(class) {
                members.push(c);
            } else {
                kept.push_back(c);
            }
        }
        *q = kept;
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Precision;

    fn qr(tenant: u32, config: u32, mass: f64, seed: u64, seq: u64) -> QueuedRequest {
        let req = SolveRequest {
            tenant,
            config_id: config,
            source_seed: seed,
            mass,
            precision: Precision::Sloppy,
            policy: Policy::Dense,
            arrival: seq,
        };
        QueuedRequest {
            req,
            key: CacheKey::canonical(&req, config as u64),
            seq,
        }
    }

    #[test]
    fn drains_across_tenants_in_order_and_respects_cap() {
        let mut queues = vec![VecDeque::new(), VecDeque::new()];
        queues[0].push_back(qr(0, 1, 0.2, 10, 0));
        queues[0].push_back(qr(0, 2, 0.2, 11, 1)); // different config: stays
        queues[1].push_back(qr(1, 1, 0.2, 12, 2));
        queues[1].push_back(qr(1, 1, 0.2, 13, 3));
        let class = BatchClass {
            config_id: 1,
            mass_bits: 0.2f64.to_bits(),
            precision: Precision::Sloppy,
        };
        let got = drain_compatible(&mut queues, class, 3);
        assert_eq!(got.iter().map(|c| c.seq).collect::<Vec<_>>(), vec![0, 2, 3]);
        assert_eq!(queues[0].len(), 1);
        assert!(queues[1].is_empty());

        // Cap respected: only the head request fits.
        let mut queues = vec![VecDeque::new()];
        queues[0].push_back(qr(0, 1, 0.2, 10, 0));
        queues[0].push_back(qr(0, 1, 0.2, 11, 1));
        let got = drain_compatible(&mut queues, class, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(queues[0].len(), 1);
    }

    #[test]
    fn one_ulp_of_mass_splits_the_class() {
        let a = qr(0, 1, 0.2, 10, 0);
        let b = qr(0, 1, f64::from_bits(0.2f64.to_bits() + 1), 11, 1);
        assert_ne!(BatchClass::of(&a.req), BatchClass::of(&b.req));
    }
}
