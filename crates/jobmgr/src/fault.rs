//! Mid-run fault injection and the recovery policies shared by all three
//! schedulers.
//!
//! The paper's job-management layer exists because real 4000-node CORAL runs
//! lose nodes mid-flight: `mpi_jm` drops lumps that fail to start, and the
//! companion production campaigns ran for months on machines where node
//! crashes, stragglers, and corrupted propagator files are the dominant
//! operational hazard. The seed simulator only modelled *startup* failures
//! frozen at t=0 (see [`crate::cluster::ClusterConfig::startup_failure_prob`]);
//! this module adds a deterministic, seeded injector for faults that strike
//! *during* the run, plus the retry/backoff/blacklist machinery the
//! schedulers use to survive them.
//!
//! Fault taxonomy:
//!
//! - **Node crash** — each node draws a crash time from an exponential
//!   distribution with mean [`FaultConfig::node_mtbf_seconds`]. A crashed
//!   node never comes back (repair is slower than any single job); tasks
//!   running on it at the crash instant are killed and requeued.
//! - **Transient task failure** — a per-attempt coin flip
//!   ([`FaultConfig::transient_fail_prob`]): the attempt dies partway
//!   through (ECC storm, filesystem hiccup, launch race), wasting the work
//!   done so far, but the node survives.
//! - **Straggler onset** — a per-attempt coin flip
//!   ([`FaultConfig::straggler_prob`]): the attempt runs at
//!   [`FaultConfig::straggler_slowdown`] of nominal speed (thermal
//!   throttling, OS noise).
//! - **NIC degradation** — a per-node coin flip at partition construction
//!   ([`FaultConfig::nic_degrade_prob`]): every attempt touching the node
//!   runs at [`FaultConfig::nic_slowdown`] speed (a flaky link that slows
//!   halo exchange without killing anything).
//!
//! All decisions are derived from `seed` with splitmix64 per-entity hashing,
//! so they are independent of scheduler query order: the same
//! (seed, node) always crashes at the same time, and the same
//! (seed, task, attempt) always meets the same fate, whichever scheduler is
//! running. This is what makes the `repro faults` sweep an apples-to-apples
//! comparison.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the mid-run fault model. `Default` is a pristine machine
/// (all rates zero), so existing entry points keep their behaviour.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Per-node mean time between failures, seconds; `0.0` disables crashes.
    /// Distinct from `startup_failure_prob`, which models nodes dead before
    /// the first task launches.
    pub node_mtbf_seconds: f64,
    /// Probability that a task attempt dies partway through.
    pub transient_fail_prob: f64,
    /// Probability that a task attempt runs as a straggler.
    pub straggler_prob: f64,
    /// Speed multiplier (< 1) of a straggling attempt.
    pub straggler_slowdown: f64,
    /// Probability that a node's NIC is degraded for the whole run.
    pub nic_degrade_prob: f64,
    /// Speed multiplier (< 1) for attempts touching a degraded NIC.
    pub nic_slowdown: f64,
    /// RNG seed for all fault decisions.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            node_mtbf_seconds: 0.0,
            transient_fail_prob: 0.0,
            straggler_prob: 0.0,
            straggler_slowdown: 0.5,
            nic_degrade_prob: 0.0,
            nic_slowdown: 0.8,
            seed: 0xFA_17,
        }
    }
}

impl FaultConfig {
    /// Whether any fault channel is active.
    pub fn enabled(&self) -> bool {
        self.node_mtbf_seconds > 0.0
            || self.transient_fail_prob > 0.0
            || self.straggler_prob > 0.0
            || self.nic_degrade_prob > 0.0
    }
}

/// Recovery policy: how schedulers respond to injected faults.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts a task may consume (first run included) before it is
    /// declared permanently failed.
    pub max_attempts: usize,
    /// First retry waits this long after the failure.
    pub backoff_base_seconds: f64,
    /// Cap on the exponential backoff.
    pub backoff_cap_seconds: f64,
    /// Quarantine a node after this many faults are attributed to it
    /// (transient failures; crashes retire the node outright).
    pub blacklist_after: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_base_seconds: 5.0,
            backoff_cap_seconds: 300.0,
            blacklist_after: 3,
        }
    }
}

impl RetryPolicy {
    /// Capped exponential backoff before retry number `retry` (1-based:
    /// the wait after the first failure is `backoff_seconds(1)`).
    pub fn backoff_seconds(&self, retry: usize) -> f64 {
        let exp = retry.saturating_sub(1).min(30) as u32;
        (self.backoff_base_seconds * f64::from(2u32.pow(exp.min(20)))).min(self.backoff_cap_seconds)
    }

    /// Whether a task that has burned `attempts` attempts may try again.
    pub fn allows_retry(&self, attempts: usize) -> bool {
        attempts < self.max_attempts
    }
}

/// What the injector decrees for one task attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttemptFate {
    /// Runs to completion at nominal speed.
    Success,
    /// Dies after this fraction of its duration has elapsed.
    TransientFailure {
        /// Fraction of the attempt's duration completed (and wasted).
        at_fraction: f64,
    },
    /// Completes, but at reduced speed.
    Straggler {
        /// Multiplicative speed factor (< 1).
        slowdown: f64,
    },
}

/// splitmix64 — cheap, well-mixed per-entity seed derivation. Public so
/// seed chains can thread from the scheduler fault model into other layers
/// (the comms fault injector keeps an identical copy — the layering rules
/// forbid it depending on this crate — pinned to these constants by golden
/// tests on both sides).
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic, seeded source of every fault decision in a run.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    /// Per-node crash time (`f64::INFINITY` = never crashes).
    crash_times: Vec<f64>,
    /// Per-node degraded-NIC flag.
    nic_degraded: Vec<bool>,
}

impl FaultInjector {
    /// Build the injector for a partition of `n_nodes` nodes.
    pub fn new(config: FaultConfig, n_nodes: usize) -> Self {
        let mut crash_times = Vec::with_capacity(n_nodes);
        let mut nic_degraded = Vec::with_capacity(n_nodes);
        for node in 0..n_nodes {
            let mut rng = SmallRng::seed_from_u64(splitmix64(config.seed ^ (node as u64) << 1));
            let crash = if config.node_mtbf_seconds > 0.0 {
                // Exponential inter-failure time with the configured mean.
                let u: f64 = rng.gen::<f64>().max(1e-300);
                -config.node_mtbf_seconds * u.ln()
            } else {
                f64::INFINITY
            };
            crash_times.push(crash);
            nic_degraded.push(rng.gen::<f64>() < config.nic_degrade_prob);
        }
        Self {
            config,
            crash_times,
            nic_degraded,
        }
    }

    /// An injector that never injects anything (pristine machine).
    pub fn disabled(n_nodes: usize) -> Self {
        Self::new(FaultConfig::default(), n_nodes)
    }

    /// The fault model this injector was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// When `node` crashes (`f64::INFINITY` if it never does).
    pub fn crash_time(&self, node: usize) -> f64 {
        self.crash_times[node]
    }

    /// Earliest crash strictly after `t`, as `(time, node)`.
    pub fn next_crash_after(&self, t: f64) -> Option<(f64, usize)> {
        self.crash_times
            .iter()
            .enumerate()
            .filter(|(_, &ct)| ct.is_finite() && ct > t)
            .map(|(i, &ct)| (ct, i))
            .min_by(|a, b| a.0.total_cmp(&b.0))
    }

    /// Whether `node`'s NIC is degraded for the whole run.
    pub fn nic_degraded(&self, node: usize) -> bool {
        self.nic_degraded[node]
    }

    /// Speed multiplier from NIC state over an allocation (the slowest link
    /// paces the halo exchange).
    pub fn nic_speed(&self, alloc: &[usize]) -> f64 {
        if alloc.iter().any(|&i| self.nic_degraded[i]) {
            self.config.nic_slowdown
        } else {
            1.0
        }
    }

    /// The fate of attempt number `attempt` (1-based) of task `task` —
    /// deterministic in (seed, task, attempt).
    pub fn attempt_fate(&self, task: usize, attempt: usize) -> AttemptFate {
        if self.config.transient_fail_prob == 0.0 && self.config.straggler_prob == 0.0 {
            return AttemptFate::Success;
        }
        let key = splitmix64(
            self.config.seed.wrapping_mul(0xA076_1D64_78BD_642F)
                ^ splitmix64((task as u64) << 20 | attempt as u64),
        );
        let mut rng = SmallRng::seed_from_u64(key);
        let u: f64 = rng.gen();
        if u < self.config.transient_fail_prob {
            // Die somewhere in the middle 80% of the attempt.
            AttemptFate::TransientFailure {
                at_fraction: 0.1 + 0.8 * rng.gen::<f64>(),
            }
        } else if u < self.config.transient_fail_prob + self.config.straggler_prob {
            AttemptFate::Straggler {
                slowdown: self.config.straggler_slowdown,
            }
        } else {
            AttemptFate::Success
        }
    }
}

/// Per-run fault and recovery counters, carried in
/// [`crate::report::SimReport`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Nodes that crashed during the run.
    pub node_crashes: usize,
    /// Task attempts killed by a transient failure.
    pub transient_failures: usize,
    /// Task attempts that ran as stragglers.
    pub stragglers: usize,
    /// Nodes with a degraded NIC in the partition.
    pub nic_degraded_nodes: usize,
    /// Retry launches performed (attempts beyond each task's first).
    pub retries: usize,
    /// Task kills that led to a requeue (crash collateral + transients).
    pub requeues: usize,
    /// Tasks that exhausted the retry budget (direct failures only).
    pub permanent_failures: usize,
    /// Tasks abandoned because capacity vanished or a dependency died.
    pub abandoned_tasks: usize,
    /// Nodes quarantined after repeated attributed faults.
    pub blacklisted_nodes: usize,
    /// Node-seconds of work lost to killed attempts.
    pub wasted_node_seconds: f64,
}

/// Mutable per-task recovery bookkeeping used by the schedulers.
#[derive(Clone, Debug)]
pub struct RecoveryState {
    /// Attempts consumed per task.
    pub attempts: Vec<usize>,
    /// Earliest time each task may (re)start — backoff gate.
    pub ready_at: Vec<f64>,
    /// Tasks declared permanently failed (budget exhausted or abandoned).
    pub failed: Vec<bool>,
    /// Faults attributed per node (for blacklisting).
    pub node_faults: Vec<usize>,
}

impl RecoveryState {
    /// Fresh state for `n_tasks` tasks on `n_nodes` nodes.
    pub fn new(n_tasks: usize, n_nodes: usize) -> Self {
        Self {
            attempts: vec![0; n_tasks],
            ready_at: vec![0.0; n_tasks],
            failed: vec![false; n_tasks],
            node_faults: vec![0; n_nodes],
        }
    }

    /// Register a killed attempt of `task` at time `now`: either schedules a
    /// retry after backoff (returns `true`) or, with the budget exhausted,
    /// marks the task permanently failed (returns `false`). The attempt
    /// itself must already have been counted via `start_attempt`.
    pub fn requeue_or_fail(
        &mut self,
        task: usize,
        now: f64,
        policy: &RetryPolicy,
        stats: &mut FaultStats,
    ) -> bool {
        stats.requeues += 1;
        if policy.allows_retry(self.attempts[task]) {
            self.ready_at[task] = now + policy.backoff_seconds(self.attempts[task]);
            true
        } else {
            self.failed[task] = true;
            stats.permanent_failures += 1;
            false
        }
    }

    /// Count the launch of a new attempt of `task`; returns the attempt
    /// number (1-based).
    pub fn start_attempt(&mut self, task: usize, stats: &mut FaultStats) -> usize {
        self.attempts[task] += 1;
        if self.attempts[task] > 1 {
            stats.retries += 1;
        }
        self.attempts[task]
    }

    /// Attribute a fault to `node`; returns `true` if the node just crossed
    /// the blacklist threshold.
    pub fn attribute_node_fault(&mut self, node: usize, policy: &RetryPolicy) -> bool {
        self.node_faults[node] += 1;
        self.node_faults[node] == policy.blacklist_after
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault_config(mtbf: f64, transient: f64, straggler: f64) -> FaultConfig {
        FaultConfig {
            node_mtbf_seconds: mtbf,
            transient_fail_prob: transient,
            straggler_prob: straggler,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn disabled_injector_injects_nothing() {
        let inj = FaultInjector::disabled(64);
        assert!(inj.next_crash_after(0.0).is_none());
        for t in 0..100 {
            assert_eq!(inj.attempt_fate(t, 1), AttemptFate::Success);
        }
        assert_eq!(inj.nic_speed(&[0, 1, 2, 3]), 1.0);
    }

    #[test]
    fn crash_times_are_deterministic_and_exponential_scale() {
        let a = FaultInjector::new(fault_config(10_000.0, 0.0, 0.0), 2000);
        let b = FaultInjector::new(fault_config(10_000.0, 0.0, 0.0), 2000);
        let mean: f64 = a.crash_times.iter().sum::<f64>() / a.crash_times.len() as f64;
        assert_eq!(a.crash_times, b.crash_times, "same seed, same crashes");
        assert!(
            (mean / 10_000.0 - 1.0).abs() < 0.15,
            "mean crash time {mean} should be near the MTBF"
        );
    }

    #[test]
    fn attempt_fates_are_order_independent() {
        let inj = FaultInjector::new(fault_config(0.0, 0.3, 0.2), 8);
        let forward: Vec<_> = (0..50).map(|t| inj.attempt_fate(t, 1)).collect();
        let backward: Vec<_> = (0..50).rev().map(|t| inj.attempt_fate(t, 1)).collect();
        let backward: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
        assert!(forward
            .iter()
            .any(|f| matches!(f, AttemptFate::TransientFailure { .. })));
        assert!(forward
            .iter()
            .any(|f| matches!(f, AttemptFate::Straggler { .. })));
        assert!(forward.iter().any(|f| matches!(f, AttemptFate::Success)));
    }

    #[test]
    fn retries_redraw_the_fate() {
        // A task that failed on attempt 1 must not be doomed to fail every
        // retry: the fate depends on the attempt number.
        let inj = FaultInjector::new(fault_config(0.0, 0.5, 0.0), 8);
        let differs = (0..200).any(|t| inj.attempt_fate(t, 1) != inj.attempt_fate(t, 2));
        assert!(differs, "attempt number must enter the fate derivation");
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff_base_seconds: 5.0,
            backoff_cap_seconds: 60.0,
            blacklist_after: 3,
        };
        assert_eq!(p.backoff_seconds(1), 5.0);
        assert_eq!(p.backoff_seconds(2), 10.0);
        assert_eq!(p.backoff_seconds(3), 20.0);
        assert_eq!(p.backoff_seconds(4), 40.0);
        assert_eq!(p.backoff_seconds(5), 60.0, "capped");
        assert_eq!(p.backoff_seconds(50), 60.0, "no overflow at large retries");
    }

    #[test]
    fn recovery_state_enforces_the_retry_budget() {
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut st = RecoveryState::new(1, 4);
        let mut stats = FaultStats::default();
        for expected_retry in [true, true, false] {
            st.start_attempt(0, &mut stats);
            let retried = st.requeue_or_fail(0, 100.0, &policy, &mut stats);
            assert_eq!(retried, expected_retry);
        }
        assert_eq!(st.attempts[0], 3);
        assert!(st.failed[0]);
        assert_eq!(stats.permanent_failures, 1);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.requeues, 3);
    }

    #[test]
    fn blacklist_threshold_fires_once() {
        let policy = RetryPolicy {
            blacklist_after: 2,
            ..RetryPolicy::default()
        };
        let mut st = RecoveryState::new(1, 4);
        assert!(!st.attribute_node_fault(2, &policy));
        assert!(st.attribute_node_fault(2, &policy), "threshold crossing");
        assert!(!st.attribute_node_fault(2, &policy), "fires exactly once");
    }

    #[test]
    fn nic_degradation_slows_touching_allocations() {
        let cfg = FaultConfig {
            nic_degrade_prob: 0.5,
            nic_slowdown: 0.7,
            ..FaultConfig::default()
        };
        let inj = FaultInjector::new(cfg, 64);
        let degraded: Vec<usize> = (0..64).filter(|&i| inj.nic_degraded(i)).collect();
        let clean: Vec<usize> = (0..64).filter(|&i| !inj.nic_degraded(i)).collect();
        assert!(!degraded.is_empty() && !clean.is_empty());
        assert_eq!(inj.nic_speed(&clean[..2]), 1.0);
        assert_eq!(inj.nic_speed(&[clean[0], degraded[0]]), 0.7);
    }
}
