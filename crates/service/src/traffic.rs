//! Deterministic synthetic traffic: a splitmix64-seeded stream of solve
//! requests whose key popularity is Zipf-distributed, mirroring the
//! production workload shape (a few hot configurations and sources
//! dominate, with a long tail of one-off systems).
//!
//! Everything is derived from one `u64` seed through the same splitmix64
//! chain the scheduler and fault injector use, so a given
//! [`TrafficConfig`] always produces the identical request stream — the
//! precondition for committing the serve experiment's output as a golden.

use crate::request::{Policy, Precision, SolveRequest};
use lqcd_core::comms::splitmix64;

/// Shape of the generated stream.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Total requests to emit.
    pub n_requests: usize,
    /// Distinct tenants. Tenant 0 is deliberately a noisy neighbour
    /// (roughly half the traffic) so the fairness machinery has something
    /// to push against.
    pub n_tenants: usize,
    /// Distinct gauge configurations.
    pub n_configs: usize,
    /// Distinct source seeds per configuration.
    pub n_seeds: usize,
    /// Candidate quark masses.
    pub masses: Vec<f64>,
    /// Zipf exponent `s` of the key-popularity law `p(r) ∝ (r+1)^-s`.
    pub zipf_exponent: f64,
    /// Mean inter-arrival gap in virtual ticks (uniform on
    /// `1..=2*mean-1`, so the mean is exactly `mean`).
    pub mean_interarrival: u64,
    /// Per-mille of requests routed through the fault-tolerant sharded
    /// pipeline instead of the dense batched one.
    pub sharded_per_mille: u64,
    /// Seed of the splitmix64 chain.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            n_requests: 4096,
            n_tenants: 4,
            n_configs: 4,
            n_seeds: 16,
            masses: vec![0.2, 0.08],
            zipf_exponent: 1.1,
            mean_interarrival: 8,
            sharded_per_mille: 4,
            seed: 20180806,
        }
    }
}

/// A deterministic splitmix64 draw chain.
struct Chain(u64);

impl Chain {
    fn next_u64(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Generate the request stream for `cfg`, sorted by arrival time.
///
/// The popularity rank of each `(config, seed, mass)` tuple is its index
/// in row-major enumeration order; rank 0 is the hottest. With
/// `zipf_exponent` around 1 the head of the distribution carries enough
/// repeats that a content-addressed cache of modest capacity serves the
/// majority of traffic — the property the serve experiment asserts.
pub fn generate(cfg: &TrafficConfig) -> Vec<SolveRequest> {
    let n_keys = (cfg.n_configs * cfg.n_seeds * cfg.masses.len()).max(1);
    // Zipf CDF over ranks, precomputed once.
    let mut cdf = Vec::with_capacity(n_keys);
    let mut total = 0.0f64;
    for r in 0..n_keys {
        total += ((r + 1) as f64).powf(-cfg.zipf_exponent);
        cdf.push(total);
    }
    for c in &mut cdf {
        *c /= total;
    }

    let mut chain = Chain(cfg.seed);
    let mut t: u64 = 0;
    let mut out = Vec::with_capacity(cfg.n_requests);
    for _ in 0..cfg.n_requests {
        // Arrival: uniform gap with mean `mean_interarrival`.
        let gap_span = (2 * cfg.mean_interarrival).saturating_sub(1).max(1);
        t += 1 + chain.next_u64() % gap_span;

        // Key rank by inverse-CDF, then unpacked row-major.
        let u = chain.next_f64();
        let rank = cdf.partition_point(|&c| c < u).min(n_keys - 1);
        let config_id = (rank % cfg.n_configs) as u32;
        let seed_idx = (rank / cfg.n_configs) % cfg.n_seeds.max(1);
        let mass_idx = rank / (cfg.n_configs * cfg.n_seeds.max(1));
        let mass = cfg.masses[mass_idx.min(cfg.masses.len() - 1)];

        // Tenant: 0 gets ~half of everything, the rest split the remainder.
        let tenant = if cfg.n_tenants <= 1 || chain.next_u64() % 2 == 0 {
            0
        } else {
            1 + (chain.next_u64() % (cfg.n_tenants as u64 - 1)) as u32
        };

        // Tier and pipeline.
        let precision = if chain.next_u64() % 10 < 3 {
            Precision::Double
        } else {
            Precision::Sloppy
        };
        let policy = if chain.next_u64() % 1000 < cfg.sharded_per_mille {
            Policy::Sharded
        } else {
            Policy::Dense
        };

        out.push(SolveRequest {
            tenant,
            config_id,
            source_seed: 500 + seed_idx as u64,
            mass,
            precision,
            policy,
            arrival: t,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn stream_is_deterministic_and_sorted() {
        let cfg = TrafficConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(a.len(), cfg.n_requests);
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let cfg = TrafficConfig {
            n_requests: 20_000,
            ..TrafficConfig::default()
        };
        let reqs = generate(&cfg);
        let mut by_key: HashMap<(u32, u64, u64, u8), usize> = HashMap::new();
        for r in &reqs {
            *by_key
                .entry((
                    r.config_id,
                    r.source_seed,
                    r.mass.to_bits(),
                    r.precision.tag(),
                ))
                .or_insert(0) += 1;
        }
        let mut counts: Vec<usize> = by_key.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let head: usize = counts.iter().take(counts.len().div_ceil(10)).sum();
        assert!(
            head * 2 > reqs.len(),
            "top decile of keys should carry the majority of traffic, got {head}/{}",
            reqs.len()
        );
    }

    #[test]
    fn tenant_zero_is_the_noisy_neighbour() {
        let reqs = generate(&TrafficConfig {
            n_requests: 10_000,
            ..TrafficConfig::default()
        });
        let t0 = reqs.iter().filter(|r| r.tenant == 0).count();
        assert!(t0 > reqs.len() / 3 && t0 < 2 * reqs.len() / 3);
        let sharded = reqs.iter().filter(|r| r.policy == Policy::Sharded).count();
        assert!(sharded > 0, "some requests must exercise the sharded path");
    }
}
