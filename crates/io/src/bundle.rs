//! Propagator bundles: all 12 columns of a propagator in one container,
//! with optional single-precision storage (the production choice — solver
//! tolerance is 1e-8, so f32 storage loses nothing physical and halves the
//! I/O volume the workflow's 0.5% budget pays for).

use crate::container::{read_container, salvage_container, write_container, Container};
use crate::IoError;
use lqcd_core::complex::Complex;
use lqcd_core::field::FermionField;
use lqcd_core::prop::Propagator;
use std::collections::BTreeMap;
use std::path::Path;

/// Storage precision of a bundle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BundlePrecision {
    /// Full double precision.
    F64,
    /// Single precision (half the bytes; ~1e-7 relative rounding).
    F32,
}

/// Write a propagator's 12 columns as one container with shape
/// `[12, volume, 4, 3, 2]`.
pub fn write_propagator(
    path: &Path,
    prop: &Propagator,
    precision: BundlePrecision,
    mut metadata: BTreeMap<String, String>,
) -> Result<(), IoError> {
    let volume = prop.columns[0].len();
    metadata.insert("source_site".into(), prop.source_site.to_string());
    metadata.insert("source_time".into(), prop.source_time.to_string());
    let shape = vec![12, volume, 4, 3, 2];

    let mut values64 = Vec::with_capacity(12 * volume * 24);
    for col in &prop.columns {
        assert_eq!(col.len(), volume);
        for sp in &col.data {
            for s in 0..4 {
                for c in 0..3 {
                    values64.push(sp.s[s].c[c].re);
                    values64.push(sp.s[s].c[c].im);
                }
            }
        }
    }
    let container = match precision {
        BundlePrecision::F64 => Container::from_f64("propagator", shape, &values64, metadata),
        BundlePrecision::F32 => {
            let values32: Vec<f32> = values64.iter().map(|&v| v as f32).collect();
            Container::from_f32("propagator", shape, &values32, metadata)
        }
    };
    write_container(path, &container)
}

/// Read a propagator bundle written by [`write_propagator`] (either
/// precision; f32 widens on read).
pub fn read_propagator(path: &Path) -> Result<Propagator, IoError> {
    decode_propagator(&read_container(path)?)
}

/// Decode a propagator from an already-verified (or salvaged) container.
fn decode_propagator(c: &Container) -> Result<Propagator, IoError> {
    if c.header.shape.len() != 5 || c.header.shape[0] != 12 || c.header.shape[2..] != [4, 3, 2] {
        return Err(IoError::ShapeMismatch(format!(
            "not a propagator bundle: shape {:?}",
            c.header.shape
        )));
    }
    let volume = c.header.shape[1];
    let values: Vec<f64> = match c.header.dtype.as_str() {
        "f64" => c.to_f64()?,
        "f32" => c.to_f32()?.into_iter().map(|v| v as f64).collect(),
        other => return Err(IoError::Format(format!("unknown dtype {other}"))),
    };
    let source_site = c
        .header
        .metadata
        .get("source_site")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| IoError::Format("missing source_site".into()))?;
    let source_time = c
        .header
        .metadata
        .get("source_time")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| IoError::Format("missing source_time".into()))?;

    let mut columns = Vec::with_capacity(12);
    for col in 0..12 {
        let mut field = FermionField::zeros(volume);
        for (x, sp) in field.data.iter_mut().enumerate() {
            let base = (col * volume + x) * 24;
            for s in 0..4 {
                for cc in 0..3 {
                    let k = base + (s * 3 + cc) * 2;
                    sp.s[s].c[cc] = Complex::new(values[k], values[k + 1]);
                }
            }
        }
        columns.push(field);
    }
    Ok(Propagator {
        columns,
        source_site,
        source_time,
    })
}

/// A propagator recovered from a damaged bundle: columns overlapping a lost
/// chunk are zeroed and listed, so the workflow can re-solve just those
/// columns instead of re-running all twelve.
#[derive(Clone)]
pub struct SalvagedPropagator {
    /// The propagator, with lost columns zero-filled.
    pub propagator: Propagator,
    /// Column indices (0..12) that touched a lost byte range.
    pub lost_columns: Vec<usize>,
}

impl SalvagedPropagator {
    /// Whether every column survived.
    pub fn is_complete(&self) -> bool {
        self.lost_columns.is_empty()
    }
}

/// Salvage a propagator bundle with corrupt or truncated chunks.
///
/// The header must be intact; every chunk whose CRC-32C fails (or that is
/// missing entirely) maps back to the propagator columns whose bytes it
/// held, and those columns are reported lost. Columns untouched by any bad
/// chunk are recovered bit-exactly.
pub fn read_propagator_salvaged(path: &Path) -> Result<SalvagedPropagator, IoError> {
    let s = salvage_container(path)?;
    let esize = s
        .header
        .element_size()
        .ok_or_else(|| IoError::Format(format!("unknown dtype {}", s.header.dtype)))?;
    if s.header.shape.len() != 5 || s.header.shape[0] != 12 || s.header.shape[2..] != [4, 3, 2] {
        return Err(IoError::ShapeMismatch(format!(
            "not a propagator bundle: shape {:?}",
            s.header.shape
        )));
    }
    let volume = s.header.shape[1];
    let col_bytes = volume * 24 * esize;

    let mut lost_columns: Vec<usize> = Vec::new();
    for &(a, b) in &s.lost_ranges {
        let first = a / col_bytes;
        let last = (b - 1) / col_bytes;
        for col in first..=last.min(11) {
            if lost_columns.last() != Some(&col) {
                lost_columns.push(col);
            }
        }
    }
    lost_columns.dedup();

    let container = Container {
        header: s.header,
        payload: s.payload,
    };
    let propagator = decode_propagator(&container)?;
    Ok(SalvagedPropagator {
        propagator,
        lost_columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_core::prelude::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lattice_io_bundle_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn make_prop() -> (Lattice, Propagator) {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 3);
        let solver = PropagatorSolver::new(&lat, &gauge, SolverKind::WilsonBicgstab { mass: 0.5 });
        let (prop, _) = solver.point_propagator(5);
        (lat, prop)
    }

    #[test]
    fn f64_bundle_round_trips_exactly() {
        let (_, prop) = make_prop();
        let path = tmp("bundle64.lqio");
        write_propagator(&path, &prop, BundlePrecision::F64, BTreeMap::new()).unwrap();
        let back = read_propagator(&path).unwrap();
        assert_eq!(back.source_site, prop.source_site);
        assert_eq!(back.source_time, prop.source_time);
        for (a, b) in prop.columns.iter().zip(&back.columns) {
            assert_eq!(a.data, b.data);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn f32_bundle_is_smaller_and_close() {
        let (_, prop) = make_prop();
        let p64 = tmp("bundle_a.lqio");
        let p32 = tmp("bundle_b.lqio");
        write_propagator(&p64, &prop, BundlePrecision::F64, BTreeMap::new()).unwrap();
        write_propagator(&p32, &prop, BundlePrecision::F32, BTreeMap::new()).unwrap();
        let s64 = std::fs::metadata(&p64).unwrap().len();
        let s32 = std::fs::metadata(&p32).unwrap().len();
        assert!(
            s32 * 2 < s64 + 4096,
            "f32 halves the payload: {s32} vs {s64}"
        );

        let back = read_propagator(&p32).unwrap();
        for (a, b) in prop.columns.iter().zip(&back.columns) {
            let diff = lqcd_core::blas::sub(&a.data, &b.data);
            let rel = lqcd_core::blas::norm_sqr(&diff) / lqcd_core::blas::norm_sqr(&a.data);
            assert!(rel < 1e-12, "f32 rounding in norm²: {rel}");
        }
        std::fs::remove_file(&p64).ok();
        std::fs::remove_file(&p32).ok();
    }

    #[test]
    fn f32_bundle_preserves_correlators_to_solver_tolerance() {
        // The physics check: a pion correlator from the re-read f32 bundle
        // matches the original at the f32 rounding level (~1e-7 relative),
        // well below anything a 1e-8-tolerance solve can resolve.
        let (lat, prop) = make_prop();
        let path = tmp("bundle_phys.lqio");
        write_propagator(&path, &prop, BundlePrecision::F32, BTreeMap::new()).unwrap();
        let back = read_propagator(&path).unwrap();
        let c1 = pion_correlator(&lat, &prop);
        let c2 = pion_correlator(&lat, &back);
        for (a, b) in c1.iter().zip(&c2) {
            assert!((a - b).abs() < 1e-6 * a.abs().max(1e-30));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salvage_maps_a_bad_chunk_to_lost_columns() {
        use crate::container::DEFAULT_CHUNK_BYTES;
        use lqcd_core::field::FermionField;

        // A synthetic propagator big enough to span several chunks:
        // 12 columns × 2048 sites × 24 f64 = 4.5 MB ≈ 5 chunks.
        let volume = 2048;
        let prop = Propagator {
            columns: (0..12)
                .map(|i| FermionField::<f64>::gaussian(volume, 100 + i as u64))
                .collect(),
            source_site: 0,
            source_time: 0,
        };
        let path = tmp("bundle_salvage.lqio");
        write_propagator(&path, &prop, BundlePrecision::F64, BTreeMap::new()).unwrap();

        // Corrupt a byte inside the second chunk.
        let mut bytes = std::fs::read(&path).unwrap();
        let hlen = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let target = 12 + hlen + 8 + DEFAULT_CHUNK_BYTES + 4 + 8 + 1000;
        bytes[target] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();

        // Strict read refuses; salvage recovers the untouched columns.
        assert!(matches!(
            read_propagator(&path),
            Err(IoError::ChecksumMismatch { .. })
        ));
        let s = read_propagator_salvaged(&path).unwrap();
        assert!(!s.is_complete());
        // Chunk 1 covers payload bytes [1 MiB, 2 MiB): columns 2..=5 at
        // 384 KiB per column.
        assert_eq!(s.lost_columns, vec![2, 3, 4, 5]);
        for col in 0..12 {
            if s.lost_columns.contains(&col) {
                continue;
            }
            assert_eq!(
                s.propagator.columns[col].data, prop.columns[col].data,
                "intact column {col} must be bit-exact"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salvage_of_a_clean_bundle_is_complete() {
        let (_, prop) = make_prop();
        let path = tmp("bundle_salvage_clean.lqio");
        write_propagator(&path, &prop, BundlePrecision::F64, BTreeMap::new()).unwrap();
        let s = read_propagator_salvaged(&path).unwrap();
        assert!(s.is_complete());
        for (a, b) in prop.columns.iter().zip(&s.propagator.columns) {
            assert_eq!(a.data, b.data);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_shape_is_rejected() {
        let path = tmp("notabundle.lqio");
        let c = Container::from_f64("x", vec![3], &[1.0, 2.0, 3.0], BTreeMap::new());
        write_container(&path, &c).unwrap();
        assert!(matches!(
            read_propagator(&path),
            Err(IoError::ShapeMismatch(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
