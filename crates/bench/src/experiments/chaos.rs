//! `repro chaos` — fault-injection sweep over the fault-tolerant solver
//! stack: wire-fault intensity × the six communication policies ×
//! {checkpointing on, off}.
//!
//! Each cell solves the same Möbius normal-equation system (`D†D x = b`)
//! with [`cg_ft`] over the sharded operator on a 2×2×1×1 rank grid, with the
//! transport's deterministic fault injector set to one of three
//! intensities:
//!
//! - **off**   — clean wire; establishes the reference residual and the
//!   clean iteration count per policy;
//! - **mild**  — low corruption/drop/duplicate/reorder rates: the
//!   NACK/retransmit layer heals essentially everything, restarts are rare;
//! - **harsh** — heavy wire loss *plus* a permanent rank loss mid-solve:
//!   solves live on checkpoint restores and one graceful 4→2 rank
//!   degradation.
//!
//! Intensities are derived from the scheduler-level fault model
//! ([`mpi_jm::FaultConfig`]) so the two layers share one vocabulary: task
//! transient-failure probability maps to wire corruption/drops, straggler
//! probability to duplicates/reordering, NIC degradation to latency spikes,
//! and a finite node MTBF to the injected rank loss. The seed is threaded
//! through the same `splitmix64` chain the scheduler uses.
//!
//! The headline claim the CSV captures: with faults at the harsh setting,
//! checkpointed solves still complete (and converge to the *bit-identical*
//! residual of the clean run), while uncheckpointed solves burn their
//! restart budget re-running from scratch.

use crate::output::{print_table, ExperimentOutput};
use coral_machine::commpolicy::CommPolicy;
use lqcd_core::comms::{
    policy_from_index, splitmix64, CommFaultProfile, CommRetryPolicy, ShardedNormal,
};
use lqcd_core::prelude::*;
use lqcd_core::solver::{cg_ft, CgParams, FtParams, SolverOutcome};
use mpi_jm::FaultConfig;
use obs::Registry;

/// Options for the chaos subcommand.
#[derive(Default)]
pub struct ChaosOpts {
    /// Fewer intensities — for CI smoke runs.
    pub quick: bool,
}

/// The CSV header `chaos.csv` is written (and schema-checked) against.
pub const CSV_HEADER: &str = "intensity,policy,checkpointing,converged,iterations,\
clean_iterations,checkpoints,restarts,degradations,retries,crc_failures,timeouts,\
duplicates_dropped,residual_match,final_rel_residual";

/// Rank grid the sweep executes on (4 ranks; degrades to 2 on rank loss).
const GRID: [usize; 4] = [2, 2, 1, 1];
const GPUS_PER_NODE: usize = 4;

/// One fault intensity: a scheduler-level fault model plus its name.
struct Intensity {
    name: &'static str,
    cfg: FaultConfig,
}

fn intensities(quick: bool) -> Vec<Intensity> {
    let off = Intensity {
        name: "off",
        cfg: FaultConfig {
            node_mtbf_seconds: 0.0,
            transient_fail_prob: 0.0,
            straggler_prob: 0.0,
            nic_degrade_prob: 0.0,
            seed: 20180806,
            ..FaultConfig::default()
        },
    };
    let mild = Intensity {
        name: "mild",
        cfg: FaultConfig {
            node_mtbf_seconds: 0.0,
            transient_fail_prob: 0.06,
            straggler_prob: 0.10,
            nic_degrade_prob: 0.05,
            seed: 20180806,
            ..FaultConfig::default()
        },
    };
    let harsh = Intensity {
        name: "harsh",
        cfg: FaultConfig {
            node_mtbf_seconds: 3600.0, // finite MTBF → one rank dies mid-solve
            transient_fail_prob: 0.24,
            straggler_prob: 0.20,
            nic_degrade_prob: 0.05,
            seed: 20180806,
            ..FaultConfig::default()
        },
    };
    if quick {
        vec![off, harsh]
    } else {
        vec![off, mild, harsh]
    }
}

/// Map the scheduler fault model onto a wire-fault profile.
///
/// Transient task failures become corruption/drops (split evenly),
/// stragglers become duplicates/reordering, NIC degradation becomes latency
/// spikes, and a finite node MTBF kills the highest rank partway through
/// the solve (the exact apply index drawn from the shared seed chain).
fn wire_profile(cfg: &FaultConfig, n_ranks: usize) -> CommFaultProfile {
    let mut p = CommFaultProfile {
        corrupt_prob: cfg.transient_fail_prob * 0.5,
        drop_prob: cfg.transient_fail_prob * 0.5,
        duplicate_prob: cfg.straggler_prob * 0.25,
        reorder_prob: cfg.straggler_prob * 0.25,
        delay_prob: cfg.nic_degrade_prob,
        seed: splitmix64(cfg.seed),
        ..CommFaultProfile::default()
    };
    if cfg.node_mtbf_seconds > 0.0 {
        p.lost_rank = Some(n_ranks - 1);
        // Mid-solve, jittered by the seed chain so the crash point is not a
        // checkpoint boundary by construction.
        p.lost_at_apply = 32 + splitmix64(splitmix64(cfg.seed)) % 16;
    }
    p
}

struct Cell {
    intensity: usize,
    policy: usize,
    checkpointing: bool,
    converged: bool,
    iterations: usize,
    checkpoints: usize,
    restarts: usize,
    degradations: usize,
    retries: u64,
    crc_failures: u64,
    timeouts: u64,
    duplicates_dropped: u64,
    residual: f64,
}

/// One cell's coordinates in the sweep.
#[derive(Clone, Copy)]
struct CellSpec {
    intensity: usize,
    profile: CommFaultProfile,
    policy_idx: usize,
    checkpointing: bool,
}

/// Run one sweep cell under a fresh observability registry.
fn run_cell(
    lat: &Lattice,
    gauge: &GaugeField<f64>,
    params: MobiusParams,
    b: &[Spinor<f64>],
    spec: CellSpec,
) -> Cell {
    let CellSpec {
        intensity,
        profile,
        policy_idx,
        checkpointing,
    } = spec;
    let reg = Registry::new();
    let _guard = reg.install_scoped();

    let policy = policy_from_index(policy_idx);
    let mut op = ShardedNormal::new(lat, gauge, params, GRID, GPUS_PER_NODE, policy)
        .expect("GRID divides the chaos lattice");
    op.set_fault_profile(profile, CommRetryPolicy::default());

    let ft = FtParams {
        cg: CgParams {
            tol: 1e-8,
            max_iter: 400,
        },
        checkpoint_every: if checkpointing { 10 } else { 0 },
        max_comm_restarts: 24,
        max_total_iters: 1200,
    };
    let mut x = vec![Spinor::zero(); b.len()];
    let outcome = cg_ft(&mut op, &mut x, b, &ft, None);
    let (stats, restarts) = match &outcome {
        SolverOutcome::Converged {
            stats, restarts, ..
        }
        | SolverOutcome::MaxIterations { stats, restarts }
        | SolverOutcome::Failed {
            stats, restarts, ..
        } => (*stats, *restarts),
    };

    Cell {
        intensity,
        policy: policy_idx,
        checkpointing,
        converged: outcome.is_converged(),
        iterations: stats.iterations,
        checkpoints: stats.checkpoints,
        restarts,
        degradations: op.degradations(),
        retries: reg.counter("comms.retries").get(),
        crc_failures: reg.counter("comms.crc_failures").get(),
        timeouts: reg.counter("comms.timeouts").get(),
        duplicates_dropped: reg.counter("comms.duplicates_dropped").get(),
        residual: stats.final_rel_residual,
    }
}

/// Run the sweep and write `chaos.csv` + `chaos.md` + a console table.
pub fn run_chaos(out: &ExperimentOutput, opts: &ChaosOpts) -> std::io::Result<()> {
    let dims = [4usize, 4, 4, 8];
    let l5 = 4usize;
    let intensities = intensities(opts.quick);
    let n_policies = CommPolicy::all().len();
    println!(
        "repro chaos: {} L5={l5}, grid {GRID:?}, intensities {:?}, {n_policies} policies x ckpt on/off",
        lqcd_core::lattice::volume_string(dims),
        intensities.iter().map(|i| i.name).collect::<Vec<_>>(),
    );

    let lat = Lattice::new(dims);
    let gauge = GaugeField::<f64>::hot(&lat, 7);
    let params = MobiusParams::standard(l5, 0.08);
    let b = FermionField::<f64>::gaussian(l5 * lat.volume(), 8).data;

    let mut cells: Vec<Cell> = Vec::new();
    for (ii, intensity) in intensities.iter().enumerate() {
        let profile = wire_profile(&intensity.cfg, GRID.iter().product());
        for pi in 0..n_policies {
            for &ckpt in &[true, false] {
                cells.push(run_cell(
                    &lat,
                    &gauge,
                    params,
                    &b,
                    CellSpec {
                        intensity: ii,
                        profile,
                        policy_idx: pi,
                        checkpointing: ckpt,
                    },
                ));
            }
        }
    }

    // Clean references per policy: intensity 0 is always "off".
    let clean: Vec<&Cell> = (0..n_policies)
        .map(|pi| {
            cells
                .iter()
                .find(|c| c.intensity == 0 && c.policy == pi && c.checkpointing)
                .expect("clean cell exists for every policy")
        })
        .collect();

    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut table: Vec<Vec<String>> = Vec::new();
    for c in &cells {
        let reference = clean[c.policy];
        let residual_match = c.converged && c.residual.to_bits() == reference.residual.to_bits();
        rows.push(vec![
            c.intensity as f64,
            c.policy as f64,
            c.checkpointing as u8 as f64,
            c.converged as u8 as f64,
            c.iterations as f64,
            reference.iterations as f64,
            c.checkpoints as f64,
            c.restarts as f64,
            c.degradations as f64,
            c.retries as f64,
            c.crc_failures as f64,
            c.timeouts as f64,
            c.duplicates_dropped as f64,
            residual_match as u8 as f64,
            c.residual,
        ]);
        table.push(vec![
            intensities[c.intensity].name.into(),
            policy_from_index(c.policy).label(),
            if c.checkpointing { "on" } else { "off" }.into(),
            if c.converged { "yes" } else { "NO" }.into(),
            format!("{}", c.iterations),
            format!("{}", c.restarts),
            format!("{}", c.degradations),
            format!("{}", c.retries),
            format!("{}", c.crc_failures),
            if residual_match { "=" } else { "" }.into(),
        ]);
    }

    let path = out.csv("chaos.csv", CSV_HEADER, &rows)?;
    print_table(
        "chaos: fault intensity x policy x checkpointing",
        &[
            "intensity",
            "policy",
            "ckpt",
            "conv",
            "iters",
            "restarts",
            "degrades",
            "retries",
            "crc",
            "residual",
        ],
        &table,
    );
    write_summary(out, &intensities, &cells, &clean)?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Write the `chaos.md` completion-fraction summary.
fn write_summary(
    out: &ExperimentOutput,
    intensities: &[Intensity],
    cells: &[Cell],
    clean: &[&Cell],
) -> std::io::Result<()> {
    let mut md = String::new();
    md.push_str("# Chaos sweep: fault intensity × comm policy × checkpointing\n\n");
    md.push_str(
        "Each cell is one `cg_ft` solve of the Möbius normal equations on a \
         2×2×1×1 rank grid.\nColumns: completion fraction across the six \
         policies, mean wasted iterations relative\nto the clean solve of the \
         same policy (replayed work from checkpoint restores or\nfrom-scratch \
         restarts), and bit-identical-residual fraction among completed \
         solves.\n\n",
    );
    md.push_str(
        "| intensity | checkpointing | completed | mean wasted iters | bit-identical residuals |\n",
    );
    md.push_str("|---|---|---|---|---|\n");
    for (ii, intensity) in intensities.iter().enumerate() {
        for &ckpt in &[true, false] {
            let group: Vec<&Cell> = cells
                .iter()
                .filter(|c| c.intensity == ii && c.checkpointing == ckpt)
                .collect();
            let n = group.len().max(1);
            let completed = group.iter().filter(|c| c.converged).count();
            let wasted: f64 = group
                .iter()
                .map(|c| c.iterations.saturating_sub(clean[c.policy].iterations) as f64)
                .sum::<f64>()
                / n as f64;
            let matched = group
                .iter()
                .filter(|c| {
                    c.converged && c.residual.to_bits() == clean[c.policy].residual.to_bits()
                })
                .count();
            md.push_str(&format!(
                "| {} | {} | {}/{} | {:.1} | {}/{} |\n",
                intensity.name,
                if ckpt { "on" } else { "off" },
                completed,
                n,
                wasted,
                matched,
                completed.max(1).min(n),
            ));
        }
    }
    md.push_str(
        "\nHarsh cells include a permanent rank loss mid-solve: every completed \
         harsh solve\nperformed one graceful 4→2 rank degradation and resumed \
         from its last checkpoint.\n",
    );
    std::fs::write(out.path("chaos.md"), md)?;
    Ok(())
}

/// `--check-schema FILE`: verify a committed `chaos.csv` still has the
/// column layout this build writes. Exits non-zero on mismatch.
pub fn check_schema(file: &str) {
    let committed = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("repro chaos --check-schema: cannot read {file}: {e}");
        std::process::exit(1);
    });
    let header = committed.lines().next().unwrap_or("");
    if header == CSV_HEADER {
        println!("schema check OK: {file} matches the current chaos.csv columns");
    } else {
        eprintln!("schema mismatch in {file}:");
        eprintln!("  committed: {header}");
        eprintln!("  expected:  {CSV_HEADER}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_header_names_the_recovery_columns() {
        let cols: Vec<&str> = CSV_HEADER.split(',').collect();
        assert_eq!(cols.len(), 15);
        for c in [
            "intensity",
            "checkpointing",
            "restarts",
            "degradations",
            "crc_failures",
            "residual_match",
        ] {
            assert!(cols.contains(&c), "missing column {c}");
        }
    }

    #[test]
    fn wire_profile_maps_the_scheduler_fault_model() {
        let cfg = FaultConfig {
            node_mtbf_seconds: 3600.0,
            transient_fail_prob: 0.2,
            straggler_prob: 0.1,
            nic_degrade_prob: 0.05,
            seed: 1,
            ..FaultConfig::default()
        };
        let p = wire_profile(&cfg, 4);
        assert_eq!(p.corrupt_prob, 0.1);
        assert_eq!(p.drop_prob, 0.1);
        assert_eq!(p.duplicate_prob, 0.025);
        assert_eq!(p.reorder_prob, 0.025);
        assert_eq!(p.delay_prob, 0.05);
        assert_eq!(p.lost_rank, Some(3));
        assert!((32..48).contains(&p.lost_at_apply));
        assert_eq!(p.seed, splitmix64(1));
        // MTBF 0 ⇒ no rank loss.
        let quiet = wire_profile(
            &FaultConfig {
                node_mtbf_seconds: 0.0,
                ..cfg
            },
            4,
        );
        assert_eq!(quiet.lost_rank, None);
    }
}
