//! Experiment harness: one module per paper table/figure, shared output
//! helpers, and the `repro` binary that drives them.
//!
//! Each experiment prints a human-readable table (paper value vs measured
//! where applicable) and writes a CSV under `results/` so the series can be
//! plotted. `EXPERIMENTS.md` records a snapshot of these outputs.

#![allow(clippy::needless_range_loop)]

pub mod experiments;
pub mod output;

pub use output::{write_csv, ExperimentOutput};
