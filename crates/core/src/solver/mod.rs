//! Krylov solvers for the Dirac linear systems.
//!
//! The paper's production solver is conjugate gradient on the normal
//! equations ([`cgne`]) over the red–black preconditioned Möbius operator,
//! run double/half mixed-precision with reliable updates ([`mixed`]). A
//! BiCGStab variant covers non-Hermitian 4D Wilson solves; multi-shift CG
//! solves a family of masses in one Krylov sequence; shift-invert Lanczos
//! plus deflated CG accelerate ill-conditioned light-quark systems.

mod bicgstab;
mod block;
mod cg;
mod deflate;
mod eig;
mod ft;
mod mixed;
mod multishift;

pub use bicgstab::bicgstab;
pub use block::{cg_block, BlockOp, ReliableBlock};
pub use cg::{cg, cgne, CgParams};
pub use deflate::{deflated_cg_block, Deflation};
pub use eig::{deflated_cg, lanczos, lanczos_lowest, EigenPair, LanczosParams};
pub use ft::{
    cg_ft, CgCheckpoint, CheckpointSink, FallibleOp, FtParams, Reliable, CKPT_SPINOR_F64,
};
pub use mixed::{mixed_cg, mixed_cg_robust, MixedParams, RobustParams};
pub use multishift::multishift_cg;

/// Outcome of a linear solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveStats {
    /// Matrix applications (of the solver's main operator) performed.
    pub iterations: usize,
    /// `‖b − A x‖ / ‖b‖` at exit, measured in the working precision of the
    /// final true-residual evaluation.
    pub final_rel_residual: f64,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
    /// Reliable updates performed (mixed-precision solver only).
    pub reliable_updates: usize,
    /// Total floating-point operations attributed to the solve.
    pub flops: f64,
    /// The iteration broke down — a non-finite residual (NaN/∞ from a
    /// corrupted field or overflow) or loss of positive-definiteness — and
    /// the solve terminated early rather than iterating on garbage.
    pub breakdown: bool,
    /// Recurrence snapshots taken (fault-tolerant solver only).
    pub checkpoints: usize,
    /// Restarts forced by communication failures (fault-tolerant solver
    /// only; `iterations` includes the replayed work they cost).
    pub comm_restarts: usize,
}

impl SolveStats {
    pub(crate) fn new() -> Self {
        Self {
            iterations: 0,
            final_rel_residual: f64::INFINITY,
            converged: false,
            reliable_updates: 0,
            flops: 0.0,
            breakdown: false,
            checkpoints: 0,
            comm_restarts: 0,
        }
    }
}

/// Bucket edges for per-solve iteration-count histograms: powers of two,
/// with the default iteration budget as the last finite edge.
pub(crate) const ITERATION_BOUNDS: [f64; 12] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 10_000.0,
];

/// Flush one completed solve into the ambient observability registry.
///
/// Called exactly once per solve, after the iteration loop has exited, so
/// the hot path itself carries no atomic traffic beyond the local
/// [`SolveStats`] accumulation it already does.
pub(crate) fn record_solve(kind: &str, stats: &SolveStats) {
    let reg = obs::Registry::current();
    reg.counter(&format!("solver.{kind}.solves")).inc();
    reg.counter(&format!("solver.{kind}.iters"))
        .add(stats.iterations as u64);
    reg.float_counter(&format!("solver.{kind}.flops"))
        .add(stats.flops);
    reg.histogram(&format!("solver.{kind}.iterations"), &ITERATION_BOUNDS)
        .record(stats.iterations as f64);
    if stats.converged {
        reg.counter(&format!("solver.{kind}.converged")).inc();
    }
    if stats.breakdown {
        reg.counter(&format!("solver.{kind}.breakdowns")).inc();
    }
    if stats.reliable_updates > 0 {
        reg.counter(&format!("solver.{kind}.reliable_updates"))
            .add(stats.reliable_updates as u64);
    }
}

/// Typed outcome of a fault-tolerant solve ([`mixed_cg_robust`]): callers
/// can distinguish clean convergence from a budget exhaustion or an
/// irrecoverable divergence instead of inspecting silent garbage.
#[derive(Clone, Copy, Debug)]
pub enum SolverOutcome {
    /// Converged to tolerance.
    Converged {
        /// Accumulated statistics over every attempt.
        stats: SolveStats,
        /// Checkpointed restarts that were needed.
        restarts: usize,
        /// Whether the solve had to escalate to full double precision.
        escalated: bool,
    },
    /// The iteration budget ran out while the residual was still finite.
    MaxIterations {
        /// Accumulated statistics over every attempt.
        stats: SolveStats,
        /// Checkpointed restarts that were performed.
        restarts: usize,
    },
    /// Divergence persisted through every restart and the double-precision
    /// escalation — the inputs themselves are bad (NaN/∞ in the source or
    /// operator).
    Failed {
        /// Accumulated statistics over every attempt.
        stats: SolveStats,
        /// Checkpointed restarts that were performed.
        restarts: usize,
        /// What killed the solve.
        reason: &'static str,
    },
}

impl SolverOutcome {
    /// The accumulated solve statistics, whatever the outcome.
    pub fn stats(&self) -> &SolveStats {
        match self {
            SolverOutcome::Converged { stats, .. }
            | SolverOutcome::MaxIterations { stats, .. }
            | SolverOutcome::Failed { stats, .. } => stats,
        }
    }

    /// Whether the solve met its tolerance.
    pub fn is_converged(&self) -> bool {
        matches!(self, SolverOutcome::Converged { .. })
    }
}
