//! Seeded-defect tests for the vector-clock race detector.
//!
//! Built (and meaningful) only with `--features race-detect`, which
//! threads `checkmate::race` through the vendored `parking_lot`, `rayon`,
//! and `crossbeam` shims. Two directions are proven here:
//!
//! - **teeth**: a deliberately unsynchronized shared counter — conflicting
//!   writes with no lock, channel, or pool-handoff edge between them —
//!   must produce a race report;
//! - **fidelity**: the same access pattern ordered by each real sync
//!   mechanism (a `parking_lot` lock, a pool job's publish/join handoff, a
//!   transport mailbox send/recv) must stay report-free, so the blocking
//!   CI race step cannot cry wolf on the determinism suites.
//!
//! The detector's state is process-global, so all phases share one `#[test]`
//! with explicit resets; this file is its own test binary, keeping other
//! suites out of the same process.
#![cfg(feature = "race-detect")]

use checkmate::race;
use lqcd::core::comms::{Mailboxes, BOX_FWD};
use parking_lot::Mutex;

#[test]
fn seeded_unsync_counter_is_caught_and_synced_patterns_are_clean() {
    let prev = race::set_panic_on_race(false);

    // Phase 1 (teeth): two threads bump a shared counter with no sync
    // edge. The `AtomicU64` keeps this memory-safe; `Relaxed` ordering
    // means no happens-before edge, which is precisely the defect class
    // the detector exists to flag.
    race::reset();
    let counter = std::sync::atomic::AtomicU64::new(0);
    let key = race::key("defect.unsync_counter");
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                race::on_write(key);
                counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 2);
    let reports = race::take_reports();
    assert!(
        !reports.is_empty(),
        "unsynchronized counter writes must be reported"
    );
    assert!(
        reports.iter().all(|r| r.name == "defect.unsync_counter"),
        "reports must name the racing location: {reports:?}"
    );

    // Phase 2 (fidelity, locks): the same counter guarded by the
    // parking_lot shim. Lock/unlock edges order the writes; no report.
    race::reset();
    let locked = Mutex::new(0u64);
    let key = race::key("sync.locked_counter");
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                let mut guard = locked.lock();
                race::on_write(key);
                *guard += 1;
            });
        }
    });
    assert!(
        race::take_reports().is_empty(),
        "lock-ordered writes must not be reported"
    );

    // Phase 3 (fidelity, pool handoff): pool chunks write disjoint marked
    // locations and the caller reads them all after the join. The job's
    // publish/join edges (plus the per-chunk exactly-once marks the pool
    // itself records) must keep this clean at any pool width.
    race::reset();
    let mut cells = vec![0u64; 64];
    rayon::for_each_chunk_mut(&mut cells, 4, |base, chunk| {
        for (off, cell) in chunk.iter_mut().enumerate() {
            race::on_write(race::keyed("sync.pool_cell", (base + off) as u64));
            *cell = (base + off) as u64;
        }
    });
    for (i, cell) in cells.iter().enumerate() {
        race::on_read(race::keyed("sync.pool_cell", i as u64));
        assert_eq!(*cell, i as u64);
    }
    assert!(
        race::take_reports().is_empty(),
        "pool publish/join edges must order chunk writes before caller reads"
    );

    // Phase 4 (fidelity, channels): a mailbox handoff. The sender marks a
    // location before send; the receiver reads it after recv. The channel
    // shim's release/acquire edges must order the pair.
    race::reset();
    let mail: Mailboxes<u64> = Mailboxes::new(2);
    let key = race::key("sync.mailbox_payload");
    std::thread::scope(|scope| {
        scope.spawn(|| {
            race::on_write(key);
            mail.send(1, 0, BOX_FWD, 42).unwrap();
        });
        scope.spawn(|| loop {
            if let Some(v) = mail.try_recv(1, 0, BOX_FWD) {
                race::on_read(key);
                assert_eq!(v, 42);
                break;
            }
            std::thread::yield_now();
        });
    });
    assert!(
        race::take_reports().is_empty(),
        "channel send/recv edges must order producer writes before consumer reads"
    );

    race::set_panic_on_race(prev);
}
