//! Structured event log: a timestamped, append-only sequence of typed
//! events ("task_start", "reliable_update", "node_crash", …) with
//! arbitrary JSON-valued fields. The scheduler simulations append with
//! explicit simulated timestamps; live code lets the registry stamp the
//! event from its clock.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Seconds — simulated or wall, depending on who recorded it.
    pub t: f64,
    pub kind: String,
    pub fields: Vec<(String, Json)>,
}

impl Event {
    pub fn new(t: f64, kind: &str, fields: Vec<(&str, Json)>) -> Event {
        Event {
            t,
            kind: kind.to_string(),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    pub fn field(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("t".to_string(), Json::Num(self.t)),
            ("kind".to_string(), Json::Str(self.kind.clone())),
        ];
        pairs.extend(self.fields.iter().cloned());
        Json::Obj(pairs)
    }

    /// One-line rendering, `t=12.5 task_start task=3 attempt=1`.
    pub fn render(&self) -> String {
        let mut line = format!("t={:.6} {}", self.t, self.kind);
        for (k, v) in &self.fields {
            match v {
                Json::Str(s) => line.push_str(&format!(" {k}={s}")),
                other => line.push_str(&format!(" {k}={other}")),
            }
        }
        line
    }
}

/// Append-only, thread-safe event log.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<Event>>,
}

impl EventLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Lock the event vec, continuing through poison: the mutex only
    /// guards short push/clone sections that cannot leave the vec in a
    /// half-written state, and a panicking recorder thread must not take
    /// observability down with it.
    fn locked(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn record(&self, event: Event) {
        self.locked().push(event);
    }

    pub fn len(&self) -> usize {
        self.locked().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.locked().clear();
    }

    /// Copy of all events in append order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.locked().clone()
    }

    /// How many events of each kind were recorded.
    pub fn counts_by_kind(&self) -> BTreeMap<String, u64> {
        let mut counts = BTreeMap::new();
        for e in self.locked().iter() {
            *counts.entry(e.kind.clone()).or_insert(0) += 1;
        }
        counts
    }

    pub fn count_kind(&self, kind: &str) -> u64 {
        self.locked().iter().filter(|e| e.kind == kind).count() as u64
    }

    pub fn to_json(&self) -> Json {
        Json::Arr(self.locked().iter().map(Event::to_json).collect())
    }

    /// Text timeline, one event per line in append order. This is the
    /// representation the golden regression tests snapshot: it captures
    /// ordering and every field, and diffs legibly.
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        for e in self.locked().iter() {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// CSV export: `t,kind,fields` with fields as `k=v` joined by `;`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t,kind,fields\n");
        for e in self.locked().iter() {
            let fields: Vec<String> = e.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!("{},{},\"{}\"\n", e.t, e.kind, fields.join(";")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_preserves_order_and_counts() {
        let log = EventLog::new();
        log.record(Event::new(
            0.0,
            "task_start",
            vec![("task", Json::from(0u64))],
        ));
        log.record(Event::new(
            1.5,
            "task_end",
            vec![("task", Json::from(0u64))],
        ));
        log.record(Event::new(
            2.0,
            "task_start",
            vec![("task", Json::from(1u64))],
        ));
        assert_eq!(log.len(), 3);
        assert_eq!(log.count_kind("task_start"), 2);
        assert_eq!(log.counts_by_kind()["task_end"], 1);
        let snap = log.snapshot();
        assert_eq!(snap[1].field("task").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn timeline_renders_one_line_per_event() {
        let log = EventLog::new();
        log.record(Event::new(
            12.5,
            "node_crash",
            vec![("node", Json::from(7u64)), ("sched", Json::from("metaq"))],
        ));
        assert_eq!(
            log.render_timeline(),
            "t=12.500000 node_crash node=7 sched=metaq\n"
        );
    }

    #[test]
    fn json_and_csv_exports_contain_fields() {
        let log = EventLog::new();
        log.record(Event::new(1.0, "retry", vec![("task", Json::from(3u64))]));
        let j = log.to_json();
        assert_eq!(
            j.as_arr().unwrap()[0].get("kind").unwrap().as_str(),
            Some("retry")
        );
        assert!(log.to_csv().contains("1,retry,\"task=3\""));
    }
}
