//! Cross-cutting determinism suite for the dslash execution variants.
//!
//! Pins a committed golden digest for every (operator × precision ×
//! reconstruction × variant) combination, and asserts the tentpole
//! invariants end to end:
//!
//! - every variant of one operator is **bit-identical** to its scalar AoS
//!   reference,
//! - results are bit-identical at pool widths 1 and 4,
//! - the sharded halo-exchange kernel reproduces the dense hop to the bit
//!   under multiple comm policies, including when the field is packed from
//!   and unpacked to the blocked-SoA layout,
//! - the 12-real / 8-real reconstructed operators track full storage to
//!   tight tolerance (they trade exactness for bandwidth, so they pin their
//!   own goldens rather than sharing the full-storage one).
//!
//! Regenerate the goldens after an *intentional* numerical change with:
//! `UPDATE_GOLDENS=1 cargo test -p lqcd-core --test dslash_variants`
//! (the digests must not depend on cargo features: `arch-simd` only widens
//! codegen, never changes results — CI runs this suite both ways).

use lqcd_core::comms::{policy_from_index, ShardedField, ShardedHopping};
use lqcd_core::prelude::*;
use lqcd_core::{comms::DomainDecomposition, dirac::HoppingKernel};
use std::collections::BTreeMap;
use std::sync::Arc;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/goldens/dslash_variants.json"
);

fn fnv1a(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01B3)
}

/// Order-dependent FNV-1a over the exact bit patterns (f32 components are
/// widened to f64 first — a lossless, deterministic embedding).
fn digest<R: Real>(v: &[Spinor<R>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for sp in v {
        for row in &sp.s {
            for z in &row.c {
                h = fnv1a(h, z.re.to_f64().to_bits());
                h = fnv1a(h, z.im.to_f64().to_bits());
            }
        }
    }
    h
}

fn with_width<T: Send>(w: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(w)
        .build()
        .expect("test pool")
        .install(f)
}

/// Apply `op` under every supported variant at pool widths 1 and 4; assert
/// all (variant × width) results share one digest and record it under
/// per-variant golden keys.
fn digest_variants<R, Op>(case: &str, op: &mut Op, seed: u64, map: &mut BTreeMap<String, u64>)
where
    R: Real,
    Op: VariantTunable<R> + Send,
{
    let n = op.vec_len();
    let inp = FermionField::<R>::gaussian(n, seed).data;
    let mut reference = None;
    for v in op.supported_variants() {
        op.set_variant(v);
        for w in [1usize, 4] {
            let mut out = vec![Spinor::zero(); n];
            let (op_ref, out_ref, inp_ref) = (&*op, &mut out, &inp);
            with_width(w, move || op_ref.apply(out_ref, inp_ref));
            let d = digest(&out);
            match reference {
                None => reference = Some(d),
                Some(r) => assert_eq!(
                    d, r,
                    "{case}: variant {v:?} at width {w} diverges from the scalar reference"
                ),
            }
        }
        map.insert(format!("{case}_{}", v.name()), reference.unwrap());
    }
}

/// Build the full digest map across operators, precisions, and gauge
/// reconstructions.
fn golden_map() -> BTreeMap<String, u64> {
    let mut map = BTreeMap::new();

    let lat = Lattice::new([4, 4, 4, 4]);
    let gauge64 = GaugeField::<f64>::hot(&lat, 31);
    let gauge32 = gauge64.cast::<f32>();
    let params = MobiusParams::standard(4, 0.08);

    digest_variants(
        "wilson_f64_full",
        &mut WilsonDirac::new(&lat, &gauge64, 0.1, true),
        71,
        &mut map,
    );
    digest_variants(
        "wilson_f32_full",
        &mut WilsonDirac::new(&lat, &gauge32, 0.1, true),
        72,
        &mut map,
    );
    digest_variants(
        "prec_wilson_f64_full",
        &mut PrecWilson::new(&lat, &gauge64, 0.1, true),
        73,
        &mut map,
    );
    digest_variants(
        "mobius_f64_full",
        &mut MobiusDirac::new(&lat, &gauge64, params),
        74,
        &mut map,
    );
    digest_variants(
        "prec_mobius_f64_full",
        &mut PrecMobius::new(&lat, &gauge64, params),
        75,
        &mut map,
    );
    digest_variants(
        "prec_mobius_f32_full",
        &mut PrecMobius::new(&lat, &gauge32, params),
        76,
        &mut map,
    );

    // Compressed-link operators: not bit-equal to full storage (their
    // tolerance is asserted separately below), so they pin their own rows.
    let r12 = Recon12Gauge::from_gauge(&gauge64);
    digest_variants(
        "wilson_f64_recon12",
        &mut WilsonDirac::new(&lat, &r12, 0.1, true),
        71,
        &mut map,
    );
    let r8 = Recon8Gauge::from_gauge(&gauge64);
    digest_variants(
        "wilson_f64_recon8",
        &mut WilsonDirac::new(&lat, &r8, 0.1, true),
        71,
        &mut map,
    );
    map
}

fn render(map: &BTreeMap<String, u64>) -> String {
    let mut s = String::from("{\n");
    for (i, (k, v)) in map.iter().enumerate() {
        s.push_str(&format!(
            "  \"{k}\": \"{v:#018x}\"{}\n",
            if i + 1 < map.len() { "," } else { "" }
        ));
    }
    s.push_str("}\n");
    s
}

fn parse_goldens(text: &str) -> BTreeMap<String, u64> {
    let json = obs::Json::parse(text).expect("parse committed goldens");
    let obs::Json::Obj(pairs) = json else {
        panic!("goldens file must be a JSON object");
    };
    pairs
        .into_iter()
        .map(|(k, v)| {
            let obs::Json::Str(hex) = v else {
                panic!("golden {k} must be a hex string");
            };
            let raw = hex.trim_start_matches("0x");
            (k, u64::from_str_radix(raw, 16).expect("hex digest"))
        })
        .collect()
}

#[test]
fn variant_goldens_are_pinned_and_width_invariant() {
    let map = golden_map();
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::write(GOLDEN_PATH, render(&map)).expect("write goldens");
        return;
    }
    let committed = parse_goldens(&std::fs::read_to_string(GOLDEN_PATH).expect(
        "missing committed goldens — run UPDATE_GOLDENS=1 cargo test -p lqcd-core \
             --test dslash_variants",
    ));
    assert_eq!(
        map, committed,
        "variant digests drifted from the committed goldens; if the change \
         is intentional, regenerate with UPDATE_GOLDENS=1"
    );
}

#[test]
fn sharded_policies_match_dense_hop_through_soa_frames() {
    let lat = Lattice::new([4, 4, 4, 8]);
    let l5 = 4;
    let gauge = GaugeField::<f64>::hot(&lat, 33);
    let v = lat.volume();
    let inp = FermionField::<f64>::gaussian(l5 * v, 81).data;

    // Dense reference: the single-domain hop, slice by slice.
    let hop = HoppingKernel::new(&lat, &gauge, true);
    let mut expect = vec![Spinor::<f64>::zero(); l5 * v];
    for s in 0..l5 {
        hop.apply_full(
            &mut expect[s * v..(s + 1) * v],
            &inp[s * v..(s + 1) * v],
            64,
        );
    }

    let soa_in = SoaSpinorField::from_aos(&inp);
    for (grid, pidx) in [([2, 1, 1, 1], 0usize), ([1, 1, 1, 2], 1)] {
        let domain = Arc::new(
            DomainDecomposition::new(&lat, grid, l5, 2).expect("grid decomposes the lattice"),
        );
        let mut sharded =
            ShardedHopping::new(domain.clone(), &gauge, true, policy_from_index(pidx));
        for w in [1usize, 4] {
            // Pack from the blocked-SoA layout, exchange, unpack back.
            let mut si = ShardedField::scatter_soa(&domain, &soa_in, l5);
            let mut so = ShardedField::zeros(&domain, l5);
            let (sh, si_ref, so_ref) = (&mut sharded, &mut si, &mut so);
            with_width(w, move || {
                sh.apply(so_ref, si_ref).expect("fault-free apply");
            });
            let mut soa_out = SoaSpinorField::zeros(l5 * v);
            so.gather_into_soa(&domain, &mut soa_out);
            assert_eq!(
                soa_out.to_aos(),
                expect,
                "grid {grid:?} policy {pidx} width {w}"
            );
        }
    }
}

#[test]
fn reconstructed_links_track_full_storage_to_tolerance() {
    let lat = Lattice::new([4, 4, 4, 4]);
    let gauge = GaugeField::<f64>::hot(&lat, 31);
    let inp = FermionField::<f64>::gaussian(lat.volume(), 91).data;

    let full = WilsonDirac::new(&lat, &gauge, 0.1, true);
    let mut out_full = vec![Spinor::<f64>::zero(); lat.volume()];
    full.apply(&mut out_full, &inp);
    let norm = blas::norm_sqr(&out_full).sqrt();

    // The reconstruction must return to the group (unitarity), and the
    // operator built on decompressed links must track full storage.
    fn check<G: GaugeLinks<f64>>(
        name: &str,
        lat: &Lattice,
        links: &G,
        tol: f64,
        inp: &[Spinor<f64>],
        out_full: &[Spinor<f64>],
        norm: f64,
    ) {
        let worst = (0..lat.volume())
            .flat_map(|x| (0..4).map(move |mu| (x, mu)))
            .map(|(x, mu)| links.link(x, mu).unitarity_error())
            .fold(0.0f64, f64::max);
        assert!(worst < tol, "{name}: unitarity error {worst:.3e} ≥ {tol:e}");

        let d = WilsonDirac::new(lat, links, 0.1, true);
        let mut out = vec![Spinor::<f64>::zero(); lat.volume()];
        d.apply(&mut out, inp);
        let err = blas::norm_sqr(&blas::sub(&out, out_full)).sqrt() / norm;
        assert!(err < tol, "{name}: relative error {err:.3e} ≥ {tol:e}");
    }
    let r12 = Recon12Gauge::from_gauge(&gauge);
    check("recon12", &lat, &r12, 1e-12, &inp, &out_full, norm);
    let r8 = Recon8Gauge::from_gauge(&gauge);
    check("recon8", &lat, &r8, 1e-9, &inp, &out_full, norm);
}
