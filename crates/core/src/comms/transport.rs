//! In-memory multi-rank transport: CRC-framed mailboxes with deterministic
//! fault injection, NACK/re-request retries, and dedup-by-sequence.
//!
//! Ranks exchange face buffers through `crossbeam` channels, mirroring the
//! point-to-point structure of the MPI halo exchange: a message is addressed
//! by (destination rank, direction `mu`, which ghost zone it fills). Two
//! layers live here:
//!
//! - [`Mailboxes`] — the raw channels. `send`/`recv` return typed
//!   [`CommError`]s instead of panicking, so a closed or empty box is a
//!   recoverable condition the caller decides about.
//! - [`FaultyTransport`] — the framed protocol over the mailboxes. Every
//!   payload travels inside a [`Frame`] envelope (sequence number, source
//!   rank × dim × side, FNV-1a checksum over the payload bits). The send
//!   path keeps the last clean frame per box in a retransmit buffer and
//!   runs each transmission attempt through the seeded
//!   [`CommFaultProfile`] injector; the receive path verifies the
//!   checksum, discards stale sequence numbers (dedup), and on a missing
//!   or corrupt frame NACKs — re-requests from the retransmit buffer with
//!   capped exponential backoff — until the [`CommRetryPolicy`] budget is
//!   exhausted. Rank loss short-circuits every exchange touching the dead
//!   rank into [`CommError::RankLost`].
//!
//! With the default (disabled) fault profile the framed path degenerates to
//! exactly-once delivery on first attempt, so the sharded kernels remain
//! bit-identical to their fault-free behaviour.
//!
//! The transport policies differ in how many buffer copies a payload makes
//! on its way into the ghost zone (the "real copy counts" the analytic
//! [`coral_machine::commpolicy::CommPolicy`] model charges for):
//! staged-DMA packs, stages, sends, and unpacks; zero-copy packs straight
//! into the wire buffer; GPU-Direct skips the channel entirely and the
//! receiver gathers the remote face in place.

use super::fault::{CommError, CommFaultProfile, CommRetryPolicy, WireFault};
use crate::lattice::ND;
use crate::real::Real;
use crate::spinor::Spinor;
// The channel shim records send/recv happens-before edges for the race
// detector when built with `race-detect`; otherwise it is a zero-cost
// wrapper over `std::sync::mpsc`.
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Side index of a mailbox: which ghost zone of the destination the message
/// fills.
pub const BOX_FWD: usize = 0;
/// See [`BOX_FWD`].
pub const BOX_BWD: usize = 1;

/// A face buffer: `l5 × face_len` spinors in canonical reduced-lex order.
pub type Payload<R> = Vec<Spinor<R>>;

/// Both mailboxes of one (rank, direction): `[BOX_FWD, BOX_BWD]`.
type TxBoxes<T> = [Sender<T>; 2];
type RxBoxes<T> = [Mutex<Receiver<T>>; 2];

/// Per-rank, per-direction, per-side channels carrying messages of type
/// `T`. Senders are shared (`Sync` since any rank may post to any neighbor
/// concurrently); each receiver is only ever drained by its owning rank,
/// behind an uncontended mutex.
pub struct Mailboxes<T> {
    tx: Vec<[TxBoxes<T>; ND]>,
    rx: Vec<[RxBoxes<T>; ND]>,
}

impl<T> Mailboxes<T> {
    /// Wire up `n_ranks × ND × 2` channels.
    pub fn new(n_ranks: usize) -> Self {
        let mut tx = Vec::with_capacity(n_ranks);
        let mut rx = Vec::with_capacity(n_ranks);
        for _ in 0..n_ranks {
            let mut pair: (Vec<TxBoxes<T>>, Vec<RxBoxes<T>>) =
                (Vec::with_capacity(ND), Vec::with_capacity(ND));
            for _ in 0..ND {
                let (t0, r0) = unbounded();
                let (t1, r1) = unbounded();
                pair.0.push([t0, t1]);
                pair.1.push([Mutex::new(r0), Mutex::new(r1)]);
            }
            let Ok(t) = <[_; ND]>::try_from(pair.0) else {
                unreachable!("built exactly ND sender pairs");
            };
            let Ok(r) = <[_; ND]>::try_from(pair.1) else {
                unreachable!("built exactly ND receiver pairs");
            };
            tx.push(t);
            rx.push(r);
        }
        Self { tx, rx }
    }

    /// Post a message to `(dest, mu, side)`. A closed box is a typed error,
    /// not a panic: the caller owns the decision to retry, degrade, or die.
    pub fn send(&self, dest: usize, mu: usize, side: usize, msg: T) -> Result<(), CommError> {
        self.tx[dest][mu][side]
            .send(msg)
            .map_err(|_| CommError::ChannelClosed {
                rank: dest,
                mu,
                side,
            })
    }

    /// Drain one waiting message at `(rank, mu, side)`, if any.
    pub fn try_recv(&self, rank: usize, mu: usize, side: usize) -> Option<T> {
        self.rx[rank][mu][side].lock().try_recv().ok()
    }

    /// Drain the single message waiting at `(rank, mu, side)`.
    ///
    /// The fault-free exchange discipline posts exactly one message per box
    /// per operator application before any unpack runs; an empty box is
    /// reported as [`CommError::Missing`] after zero retries (the raw
    /// mailbox layer has no retransmit machinery — that lives in
    /// [`FaultyTransport`]).
    pub fn recv(&self, rank: usize, mu: usize, side: usize) -> Result<T, CommError> {
        self.try_recv(rank, mu, side).ok_or(CommError::Missing {
            rank,
            mu,
            side,
            attempts: 1,
        })
    }
}

/// The framed envelope one halo payload travels in.
#[derive(Clone, Debug)]
pub struct Frame<R: Real> {
    /// Exchange sequence number (the kernel's apply counter): the dedup and
    /// staleness key.
    pub seq: u64,
    /// Sending rank.
    pub src: u32,
    /// Partitioned direction.
    pub mu: u8,
    /// Ghost-zone side the payload fills.
    pub side: u8,
    /// FNV-1a-64 over (seq, src, mu, side) and every payload component's
    /// bit pattern.
    pub checksum: u64,
    /// The face buffer.
    pub payload: Payload<R>,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a_u64(mut h: u64, word: u64) -> u64 {
    for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
        h ^= (word >> shift) & 0xFF;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl<R: Real> Frame<R> {
    /// Seal `payload` into a checksummed frame.
    pub fn new(seq: u64, src: usize, mu: usize, side: usize, payload: Payload<R>) -> Self {
        let mut f = Self {
            seq,
            src: src as u32,
            mu: mu as u8,
            side: side as u8,
            checksum: 0,
            payload,
        };
        f.checksum = f.compute_checksum();
        f
    }

    /// FNV-1a-64 over the header fields and the payload component bits.
    /// Component bits go through `to_f64` — exact for both supported
    /// precisions, so the checksum is stable under the precision the wire
    /// actually carries.
    pub fn compute_checksum(&self) -> u64 {
        let mut h = fnv1a_u64(FNV_OFFSET, self.seq);
        h = fnv1a_u64(h, u64::from(self.src));
        h = fnv1a_u64(h, (u64::from(self.mu) << 8) | u64::from(self.side));
        for sp in &self.payload {
            for cv in &sp.s {
                for z in &cv.c {
                    h = fnv1a_u64(h, z.re.to_f64().to_bits());
                    h = fnv1a_u64(h, z.im.to_f64().to_bits());
                }
            }
        }
        h
    }

    /// Whether the payload still matches the checksum sealed at send time.
    pub fn verify(&self) -> bool {
        self.checksum == self.compute_checksum()
    }
}

/// Cumulative fault-injection and recovery counts of one transport, the
/// source of the `comms.retries` / `comms.crc_failures` / `comms.timeouts`
/// obs metrics. Injection counts say what the (simulated) wire did;
/// recovery counts say what the receive path observed and repaired.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommFaultStats {
    /// Frames delivered with a flipped payload bit.
    pub injected_corruptions: u64,
    /// Frames never delivered on an attempt.
    pub injected_drops: u64,
    /// Frames delivered twice.
    pub injected_duplicates: u64,
    /// Stale frames delivered ahead of the real one.
    pub injected_reorders: u64,
    /// Frames held back past one receiver timeout.
    pub injected_delays: u64,
    /// Checksum verification failures on the receive path.
    pub crc_failures: u64,
    /// Receive attempts that found an empty box (drop, delay, or loss).
    pub timeouts: u64,
    /// NACK/re-request rounds (each pays one backoff).
    pub retries: u64,
    /// Frames discarded by sequence-number dedup.
    pub duplicates_dropped: u64,
    /// Simulated seconds spent in retry backoff and latency spikes — the
    /// recovery-latency numerator of the chaos sweep.
    pub backoff_seconds: f64,
}

impl CommFaultStats {
    /// Field-wise difference of two cumulative snapshots (`self − base`),
    /// the per-apply delta the kernel publishes.
    pub fn delta(&self, base: &CommFaultStats) -> CommFaultStats {
        CommFaultStats {
            injected_corruptions: self.injected_corruptions - base.injected_corruptions,
            injected_drops: self.injected_drops - base.injected_drops,
            injected_duplicates: self.injected_duplicates - base.injected_duplicates,
            injected_reorders: self.injected_reorders - base.injected_reorders,
            injected_delays: self.injected_delays - base.injected_delays,
            crc_failures: self.crc_failures - base.crc_failures,
            timeouts: self.timeouts - base.timeouts,
            retries: self.retries - base.retries,
            duplicates_dropped: self.duplicates_dropped - base.duplicates_dropped,
            backoff_seconds: self.backoff_seconds - base.backoff_seconds,
        }
    }
}

/// Atomic accumulator behind [`CommFaultStats`] (the receive path runs
/// inside the rank-parallel unpack loop).
#[derive(Default)]
struct FaultCounters {
    injected_corruptions: AtomicU64,
    injected_drops: AtomicU64,
    injected_duplicates: AtomicU64,
    injected_reorders: AtomicU64,
    injected_delays: AtomicU64,
    crc_failures: AtomicU64,
    timeouts: AtomicU64,
    retries: AtomicU64,
    duplicates_dropped: AtomicU64,
    /// Backoff in femtoseconds to keep the accumulator atomic; converted on
    /// read. (Deterministic: integer addition commutes.)
    backoff_femtos: AtomicU64,
}

const FEMTO: f64 = 1e15;

impl FaultCounters {
    fn snapshot(&self) -> CommFaultStats {
        CommFaultStats {
            injected_corruptions: self.injected_corruptions.load(Ordering::Relaxed),
            injected_drops: self.injected_drops.load(Ordering::Relaxed),
            injected_duplicates: self.injected_duplicates.load(Ordering::Relaxed),
            injected_reorders: self.injected_reorders.load(Ordering::Relaxed),
            injected_delays: self.injected_delays.load(Ordering::Relaxed),
            crc_failures: self.crc_failures.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            duplicates_dropped: self.duplicates_dropped.load(Ordering::Relaxed),
            backoff_seconds: self.backoff_femtos.load(Ordering::Relaxed) as f64 / FEMTO,
        }
    }

    fn add_backoff(&self, seconds: f64) {
        self.backoff_femtos
            .fetch_add((seconds * FEMTO).round() as u64, Ordering::Relaxed);
    }
}

/// One retransmit slot: the last clean frame posted to a box, so a NACK can
/// be served without the sender re-packing.
type ResendSlot<R> = Mutex<Option<Frame<R>>>;

/// The framed, fault-injecting, self-healing transport decorating
/// [`Mailboxes`]. See the module docs for the protocol.
pub struct FaultyTransport<R: Real> {
    mail: Mailboxes<Frame<R>>,
    /// `resend[dest][mu][side]`: last clean frame addressed to that box.
    resend: Vec<[[ResendSlot<R>; 2]; ND]>,
    profile: CommFaultProfile,
    retry: CommRetryPolicy,
    counters: FaultCounters,
}

impl<R: Real> FaultyTransport<R> {
    /// A transport for `n_ranks` with fault injection disabled.
    pub fn new(n_ranks: usize) -> Self {
        Self {
            mail: Mailboxes::new(n_ranks),
            resend: (0..n_ranks)
                .map(|_| std::array::from_fn(|_| std::array::from_fn(|_| Mutex::new(None))))
                .collect(),
            profile: CommFaultProfile::default(),
            retry: CommRetryPolicy::default(),
            counters: FaultCounters::default(),
        }
    }

    /// Install a fault profile and retry policy.
    pub fn set_faults(&mut self, profile: CommFaultProfile, retry: CommRetryPolicy) {
        self.profile = profile;
        self.retry = retry;
    }

    /// The active fault profile.
    pub fn profile(&self) -> &CommFaultProfile {
        &self.profile
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> &CommRetryPolicy {
        &self.retry
    }

    /// Cumulative injection/recovery statistics.
    pub fn fault_stats(&self) -> CommFaultStats {
        self.counters.snapshot()
    }

    /// Whether `rank` is alive at sequence number `seq`.
    pub fn rank_alive(&self, rank: usize, seq: u64) -> bool {
        !self.profile.rank_dead(rank, seq)
    }

    /// Frame and post one face buffer from `src` to `(dest, mu, side)` under
    /// sequence number `seq`, park a clean copy in the retransmit buffer,
    /// and run the first transmission attempt through the injector.
    pub fn send(
        &self,
        src: usize,
        dest: usize,
        mu: usize,
        side: usize,
        payload: Payload<R>,
        seq: u64,
    ) -> Result<(), CommError> {
        if self.profile.rank_dead(src, seq) {
            return Err(CommError::RankLost { rank: src });
        }
        if self.profile.rank_dead(dest, seq) {
            return Err(CommError::RankLost { rank: dest });
        }
        let frame = Frame::new(seq, src, mu, side, payload);
        *self.resend[dest][mu][side].lock() = Some(frame.clone());
        self.transmit(dest, mu, side, &frame, 0)
    }

    /// One transmission attempt: consult the injector, then deliver (or
    /// not) accordingly. Retransmissions redraw with their attempt index.
    fn transmit(
        &self,
        dest: usize,
        mu: usize,
        side: usize,
        frame: &Frame<R>,
        attempt: u64,
    ) -> Result<(), CommError> {
        let c = &self.counters;
        match self.profile.draw(dest, mu, side, frame.seq, attempt) {
            WireFault::Clean => self.mail.send(dest, mu, side, frame.clone()),
            WireFault::Corrupt => {
                c.injected_corruptions.fetch_add(1, Ordering::Relaxed);
                let mut bad = frame.clone();
                if !bad.payload.is_empty() {
                    // Flip one mantissa bit of a deterministically chosen
                    // component; the sealed checksum no longer matches.
                    let bits = self
                        .profile
                        .decision_bits(dest, mu, side, frame.seq, attempt);
                    let k = (bits as usize) % bad.payload.len();
                    let z = &mut bad.payload[k].s[0].c[0];
                    z.re = R::from_f64(f64::from_bits(z.re.to_f64().to_bits() ^ (1 << 17)));
                }
                self.mail.send(dest, mu, side, bad)
            }
            WireFault::Drop => {
                c.injected_drops.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            WireFault::Duplicate => {
                c.injected_duplicates.fetch_add(1, Ordering::Relaxed);
                self.mail.send(dest, mu, side, frame.clone())?;
                self.mail.send(dest, mu, side, frame.clone())
            }
            WireFault::Reorder => {
                c.injected_reorders.fetch_add(1, Ordering::Relaxed);
                // An old packet finally arrives just ahead of the real one:
                // a stale-sequence frame with a valid checksum, which the
                // receiver must discard by seq alone.
                let mut stale = frame.clone();
                stale.seq = frame.seq.wrapping_sub(1);
                stale.checksum = stale.compute_checksum();
                self.mail.send(dest, mu, side, stale)?;
                self.mail.send(dest, mu, side, frame.clone())
            }
            WireFault::Delay => {
                c.injected_delays.fetch_add(1, Ordering::Relaxed);
                // Held back past one receiver timeout: not posted now; the
                // re-request serves it from the retransmit buffer.
                Ok(())
            }
        }
    }

    /// Receive the payload for `(rank, mu, side)` at sequence number `seq`,
    /// sent by `src`: verify the checksum, dedup stale frames, and on a
    /// missing or corrupt frame re-request from the sender's retransmit
    /// buffer with capped exponential backoff, until the retry budget is
    /// spent.
    pub fn recv(
        &self,
        rank: usize,
        mu: usize,
        side: usize,
        src: usize,
        seq: u64,
        expected_len: usize,
    ) -> Result<Payload<R>, CommError> {
        if self.profile.rank_dead(rank, seq) {
            return Err(CommError::RankLost { rank });
        }
        if self.profile.rank_dead(src, seq) {
            return Err(CommError::RankLost { rank: src });
        }
        let c = &self.counters;
        let mut attempts = 1usize; // the original transmission
        let mut saw_corrupt = false;
        loop {
            match self.mail.try_recv(rank, mu, side) {
                Some(frame) => {
                    if frame.seq != seq {
                        // Stale duplicate or reordered leftover — discard by
                        // sequence number without burning a retry.
                        c.duplicates_dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if !frame.verify() {
                        saw_corrupt = true;
                        c.crc_failures.fetch_add(1, Ordering::Relaxed);
                        self.nack(rank, mu, side, seq, &mut attempts, saw_corrupt)?;
                        continue;
                    }
                    if frame.payload.len() != expected_len {
                        return Err(CommError::SizeMismatch { rank, mu, side });
                    }
                    return Ok(frame.payload);
                }
                None => {
                    c.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.nack(rank, mu, side, seq, &mut attempts, saw_corrupt)?;
                }
            }
        }
    }

    /// One NACK/re-request round: charge the backoff, then have the sender
    /// retransmit the parked frame (running the injector again with the new
    /// attempt index). Fails typed once the attempt budget is gone.
    fn nack(
        &self,
        rank: usize,
        mu: usize,
        side: usize,
        seq: u64,
        attempts: &mut usize,
        saw_corrupt: bool,
    ) -> Result<(), CommError> {
        if *attempts >= self.retry.max_attempts {
            return Err(if saw_corrupt {
                CommError::Corrupt {
                    rank,
                    mu,
                    side,
                    attempts: *attempts,
                }
            } else {
                CommError::Missing {
                    rank,
                    mu,
                    side,
                    attempts: *attempts,
                }
            });
        }
        let c = &self.counters;
        c.retries.fetch_add(1, Ordering::Relaxed);
        c.add_backoff(self.retry.backoff_seconds(*attempts) + self.profile.delay_seconds);
        let parked = self.resend[rank][mu][side].lock().clone();
        let attempt = *attempts as u64;
        *attempts += 1;
        match parked {
            Some(f) if f.seq == seq => self.transmit(rank, mu, side, &f, attempt),
            // Nothing (current) to retransmit: the next try_recv finds the
            // box empty again and the budget runs down to a typed Missing.
            _ => Ok(()),
        }
    }
}

/// Cumulative execution statistics of a sharded kernel, for
/// measured-vs-analytic cross-checks and obs metrics. All fields except the
/// overlap window are deterministic functions of (geometry, policy, applies)
/// and are asserted against actual pack/unpack event counts on every
/// successful apply.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Operator applications executed.
    pub applies: u64,
    /// Logical neighbor messages (two per partitioned direction per rank per
    /// apply, for every transport — GPU-Direct still *exchanges*, it just
    /// does not stage).
    pub messages: u64,
    /// 5D halo spinors delivered into ghost zones.
    pub halo_sites: u64,
    /// Bytes written into intermediate send-side buffers (staged-DMA copies
    /// twice before the wire, zero-copy once, GPU-Direct none).
    pub bytes_packed: u64,
    /// Payload bytes delivered across rank boundaries.
    pub bytes_sent: u64,
    /// Total buffer copies including the ghost-zone unpack (3, 2, or 1 per
    /// message by transport).
    pub copies: u64,
    /// 5D site updates computed inside the overlap window (fine granularity
    /// only).
    pub sites_interior: u64,
    /// 5D site updates computed after halo arrival.
    pub sites_boundary: u64,
    /// Measured interior-compute time between posting sends and the first
    /// unpack — the communication/computation overlap window.
    pub overlap_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(vals: &[f64]) -> Payload<f64> {
        vals.iter()
            .map(|&v| {
                let mut s = Spinor::<f64>::zero();
                s.s[0].c[0].re = v;
                s
            })
            .collect()
    }

    #[test]
    fn mailbox_send_recv_round_trips_typed() {
        let mail: Mailboxes<u32> = Mailboxes::new(2);
        mail.send(1, 0, BOX_FWD, 7).unwrap();
        assert_eq!(mail.recv(1, 0, BOX_FWD).unwrap(), 7);
        // Empty box is a typed Missing, not a panic.
        assert_eq!(
            mail.recv(1, 0, BOX_FWD),
            Err(CommError::Missing {
                rank: 1,
                mu: 0,
                side: BOX_FWD,
                attempts: 1
            })
        );
    }

    #[test]
    fn frame_checksum_catches_any_component_flip() {
        let f = Frame::new(3, 1, 2, BOX_BWD, payload(&[1.0, -2.5, 3.25]));
        assert!(f.verify());
        let mut bad = f.clone();
        bad.payload[1].s[2].c[1].im = 1e-300;
        assert!(!bad.verify(), "payload tamper must fail verification");
        let mut bad2 = f.clone();
        bad2.seq += 1;
        assert!(!bad2.verify(), "header tamper must fail verification");
    }

    #[test]
    fn clean_transport_delivers_exactly_once() {
        let t: FaultyTransport<f64> = FaultyTransport::new(2);
        t.send(0, 1, 2, BOX_FWD, payload(&[4.0, 5.0]), 0).unwrap();
        let got = t.recv(1, 2, BOX_FWD, 0, 0, 2).unwrap();
        assert_eq!(got, payload(&[4.0, 5.0]));
        assert_eq!(t.fault_stats(), CommFaultStats::default());
    }

    #[test]
    fn corruption_is_detected_and_healed_by_retransmit() {
        let mut t: FaultyTransport<f64> = FaultyTransport::new(2);
        // Find a seed whose first attempt corrupts and second is clean.
        let seed = (0..5000u64)
            .find(|&s| {
                let p = CommFaultProfile {
                    corrupt_prob: 0.5,
                    seed: s,
                    ..CommFaultProfile::default()
                };
                p.draw(1, 0, BOX_FWD, 0, 0) == WireFault::Corrupt
                    && p.draw(1, 0, BOX_FWD, 0, 1) == WireFault::Clean
            })
            .expect("seed exists");
        t.set_faults(
            CommFaultProfile {
                corrupt_prob: 0.5,
                seed,
                ..CommFaultProfile::default()
            },
            CommRetryPolicy::default(),
        );
        let want = payload(&[1.0, 2.0, 3.0]);
        t.send(0, 1, 0, BOX_FWD, want.clone(), 0).unwrap();
        let got = t.recv(1, 0, BOX_FWD, 0, 0, 3).unwrap();
        assert_eq!(got, want, "recovered payload must be the clean one");
        let s = t.fault_stats();
        assert_eq!(s.injected_corruptions, 1);
        assert_eq!(s.crc_failures, 1);
        assert_eq!(s.retries, 1);
        assert!(s.backoff_seconds > 0.0);
    }

    #[test]
    fn persistent_corruption_exhausts_retries_typed() {
        let mut t: FaultyTransport<f64> = FaultyTransport::new(2);
        t.set_faults(
            CommFaultProfile {
                corrupt_prob: 1.0,
                seed: 11,
                ..CommFaultProfile::default()
            },
            CommRetryPolicy {
                max_attempts: 3,
                ..CommRetryPolicy::default()
            },
        );
        t.send(0, 1, 0, BOX_FWD, payload(&[9.0]), 0).unwrap();
        match t.recv(1, 0, BOX_FWD, 0, 0, 1) {
            Err(CommError::Corrupt { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("want Corrupt after retry exhaustion, got {other:?}"),
        }
        assert_eq!(t.fault_stats().crc_failures, 3);
    }

    #[test]
    fn total_drop_exhausts_retries_as_missing() {
        let mut t: FaultyTransport<f64> = FaultyTransport::new(2);
        t.set_faults(
            CommFaultProfile {
                drop_prob: 1.0,
                seed: 13,
                ..CommFaultProfile::default()
            },
            CommRetryPolicy {
                max_attempts: 4,
                ..CommRetryPolicy::default()
            },
        );
        t.send(0, 1, 1, BOX_BWD, payload(&[1.0]), 5).unwrap();
        match t.recv(1, 1, BOX_BWD, 0, 5, 1) {
            Err(CommError::Missing { attempts, .. }) => assert_eq!(attempts, 4),
            other => panic!("want Missing, got {other:?}"),
        }
        let s = t.fault_stats();
        assert_eq!(s.injected_drops, 4, "initial + 3 retransmissions");
        assert_eq!(s.timeouts, 4);
    }

    #[test]
    fn duplicates_and_reorders_are_deduped_by_seq() {
        let mut t: FaultyTransport<f64> = FaultyTransport::new(2);
        t.set_faults(
            CommFaultProfile {
                duplicate_prob: 1.0,
                seed: 17,
                ..CommFaultProfile::default()
            },
            CommRetryPolicy::default(),
        );
        let want = payload(&[6.0, 7.0]);
        t.send(0, 1, 0, BOX_FWD, want.clone(), 0).unwrap();
        assert_eq!(t.recv(1, 0, BOX_FWD, 0, 0, 2).unwrap(), want);
        // The duplicate is still in the box; the next exchange discards it
        // by stale seq and receives its own frame.
        let want2 = payload(&[8.0]);
        t.send(0, 1, 0, BOX_FWD, want2.clone(), 1).unwrap();
        assert_eq!(t.recv(1, 0, BOX_FWD, 0, 1, 1).unwrap(), want2);
        assert!(t.fault_stats().duplicates_dropped >= 1);

        let mut t2: FaultyTransport<f64> = FaultyTransport::new(2);
        t2.set_faults(
            CommFaultProfile {
                reorder_prob: 1.0,
                seed: 19,
                ..CommFaultProfile::default()
            },
            CommRetryPolicy::default(),
        );
        let want3 = payload(&[1.5]);
        t2.send(0, 1, 0, BOX_FWD, want3.clone(), 4).unwrap();
        assert_eq!(t2.recv(1, 0, BOX_FWD, 0, 4, 1).unwrap(), want3);
        let s2 = t2.fault_stats();
        assert_eq!(s2.injected_reorders, 1);
        assert_eq!(s2.duplicates_dropped, 1, "the stale frame was discarded");
    }

    #[test]
    fn delay_costs_one_timeout_then_recovers() {
        let mut t: FaultyTransport<f64> = FaultyTransport::new(2);
        // delay on attempt 0; find a seed where attempt 1 is clean.
        let seed = (0..5000u64)
            .find(|&s| {
                let p = CommFaultProfile {
                    delay_prob: 0.5,
                    seed: s,
                    ..CommFaultProfile::default()
                };
                p.draw(1, 0, BOX_FWD, 0, 0) == WireFault::Delay
                    && p.draw(1, 0, BOX_FWD, 0, 1) == WireFault::Clean
            })
            .expect("seed exists");
        t.set_faults(
            CommFaultProfile {
                delay_prob: 0.5,
                delay_seconds: 1e-3,
                seed,
                ..CommFaultProfile::default()
            },
            CommRetryPolicy::default(),
        );
        let want = payload(&[2.0]);
        t.send(0, 1, 0, BOX_FWD, want.clone(), 0).unwrap();
        assert_eq!(t.recv(1, 0, BOX_FWD, 0, 0, 1).unwrap(), want);
        let s = t.fault_stats();
        assert_eq!(s.injected_delays, 1);
        assert_eq!(s.timeouts, 1);
        assert!(s.backoff_seconds >= 1e-3, "latency spike charged");
    }

    #[test]
    fn rank_loss_surfaces_on_both_sides() {
        let mut t: FaultyTransport<f64> = FaultyTransport::new(4);
        t.set_faults(
            CommFaultProfile {
                lost_rank: Some(2),
                lost_at_apply: 3,
                ..CommFaultProfile::default()
            },
            CommRetryPolicy::default(),
        );
        // Before the death apply everything works.
        t.send(2, 1, 0, BOX_FWD, payload(&[1.0]), 2).unwrap();
        assert!(t.recv(1, 0, BOX_FWD, 2, 2, 1).is_ok());
        // From the death apply on: typed RankLost from all four directions.
        assert_eq!(
            t.send(2, 1, 0, BOX_FWD, payload(&[1.0]), 3),
            Err(CommError::RankLost { rank: 2 })
        );
        assert_eq!(
            t.send(1, 2, 0, BOX_FWD, payload(&[1.0]), 3),
            Err(CommError::RankLost { rank: 2 })
        );
        assert_eq!(
            t.recv(1, 0, BOX_FWD, 2, 3, 1),
            Err(CommError::RankLost { rank: 2 })
        );
        assert_eq!(
            t.recv(2, 0, BOX_FWD, 1, 3, 1),
            Err(CommError::RankLost { rank: 2 })
        );
    }
}
