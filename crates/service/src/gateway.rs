//! The solve gateway: admission control, per-tenant fairness, batching,
//! and the deterministic virtual-time event loop.
//!
//! Latency accounting runs entirely in *virtual ticks*: arrivals carry
//! generated timestamps, and each dispatched solve is charged a modeled
//! service time derived from its (bit-stable) iteration count. The real
//! numerical work still happens — every dispatch runs the actual batched
//! or fault-tolerant solver on the work-stealing pool — but wall time
//! never leaks into the published statistics, so the serve experiment's
//! histograms are bit-identical across machines and thread counts and can
//! be committed as goldens.
//!
//! Scheduling is deficit round-robin over tenants: each visit to a
//! non-empty tenant queue adds `drr_quantum` of credit, one dispatch costs
//! one unit, and a tenant's deficit resets when its queue drains. With the
//! default unit quantum this degenerates to fair round-robin, which is
//! exactly the property the fairness test pins: a noisy-neighbour tenant
//! cannot starve the quiet ones.

use crate::backend::{Backend, SolveResult};
use crate::batch::{drain_compatible, BatchClass, QueuedRequest};
use crate::cache::ResultCache;
use crate::error::ServiceError;
use crate::request::{CacheKey, Policy, SolveRequest};
use obs::Registry;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

/// Gateway knobs. Costs are in virtual ticks.
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Admission bound: total requests queued across all tenants. Each
    /// tenant may hold at most `queue_capacity / n_tenants` of it, so a
    /// flooding tenant fills only its own share and is rejected at the
    /// door rather than crowding everyone else out of the queue.
    pub queue_capacity: usize,
    /// Virtual solve servers (concurrent batches in flight).
    pub n_servers: usize,
    /// Maximum right-hand sides per batched solve.
    pub max_nrhs: usize,
    /// Tenants (requests carry `tenant < n_tenants`).
    pub n_tenants: usize,
    /// Deficit round-robin credit added per visit; one dispatch costs 1.
    pub drr_quantum: f64,
    /// Ticks to serve a cache hit.
    pub hit_cost: u64,
    /// Fixed ticks per dispatched solve.
    pub batch_base_cost: u64,
    /// Ticks per CG iteration of the slowest column.
    pub cost_per_iteration: u64,
    /// Marginal ticks per additional right-hand side.
    pub cost_per_column: u64,
    /// Cross-check every Nth batch and every Nth hit against a fresh solo
    /// solve, bit-for-bit (0 disables).
    pub audit_every: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            queue_capacity: 64,
            n_servers: 2,
            max_nrhs: 8,
            n_tenants: 4,
            drr_quantum: 1.0,
            hit_cost: 1,
            batch_base_cost: 16,
            cost_per_iteration: 4,
            cost_per_column: 2,
            audit_every: 0,
        }
    }
}

/// Everything the serve experiment reports. All fields are derived from
/// virtual time and bit-stable solver statistics only.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeReport {
    pub submitted: u64,
    pub served: u64,
    pub rejected: u64,
    pub hits: u64,
    pub spill_hits: u64,
    pub coalesced: u64,
    pub solved_keys: u64,
    pub batches: u64,
    pub batched_columns: u64,
    pub sharded_solves: u64,
    pub recovered: u64,
    pub unconverged: u64,
    pub audits_passed: u64,
    pub latency_p50: f64,
    pub latency_p99: f64,
    pub max_queue_depth: u64,
    pub virtual_makespan: u64,
    pub per_tenant_served: Vec<u64>,
    pub per_tenant_rejected: Vec<u64>,
}

impl ServeReport {
    /// Fraction of served requests that did not trigger their own solve.
    pub fn hit_rate(&self) -> f64 {
        if self.served == 0 {
            return 0.0;
        }
        (self.hits + self.spill_hits + self.coalesced) as f64 / self.served as f64
    }
}

/// A dispatched batch whose virtual completion is still in the future
/// (the completion time itself lives in the event heap).
struct PendingBatch {
    /// Unique keys solved by this batch, with their results.
    results: Vec<(CacheKey, Arc<SolveResult>)>,
    /// Request instances (original members and coalesced latecomers)
    /// completed by this batch: `(tenant, arrival)`.
    waiters: Vec<(u32, u64)>,
}

/// The gateway. Borrow a backend and a cache; `run` drives a request
/// stream to completion.
pub struct Gateway<'a> {
    backend: &'a Backend,
    cache: &'a ResultCache,
    cfg: GatewayConfig,
}

/// Compare two solutions bit-for-bit (stricter than `==`: distinguishes
/// `-0.0` from `0.0`).
fn bits_equal(a: &SolveResult, b: &SolveResult) -> bool {
    a.iterations == b.iterations
        && a.final_rel_residual.to_bits() == b.final_rel_residual.to_bits()
        && a.solution.len() == b.solution.len()
        && a.solution.iter().zip(b.solution.iter()).all(|(x, y)| {
            (0..4).all(|s| {
                (0..3).all(|c| {
                    x.s[s].c[c].re.to_bits() == y.s[s].c[c].re.to_bits()
                        && x.s[s].c[c].im.to_bits() == y.s[s].c[c].im.to_bits()
                })
            })
        })
}

impl<'a> Gateway<'a> {
    /// Bind a gateway over `backend` and `cache`.
    pub fn new(backend: &'a Backend, cache: &'a ResultCache, cfg: GatewayConfig) -> Self {
        Gateway {
            backend,
            cache,
            cfg,
        }
    }

    /// Solve `requests` (sorted by arrival) to completion and report.
    ///
    /// Every cache hit audited on the way (`audit_every`) is re-solved
    /// cold and compared bit-for-bit; every audited batch has its first
    /// column re-solved through the unbatched [`cg`] path likewise. A
    /// mismatch aborts the run with [`ServiceError::Audit`] — the service
    /// refuses to keep serving answers it cannot prove content-addressed.
    ///
    /// [`cg`]: lqcd_core::solver::cg
    pub fn run(&self, requests: &[SolveRequest]) -> Result<ServeReport, ServiceError> {
        let cfg = &self.cfg;
        let reg = Registry::current();
        let latency = reg.histogram("serve.latency_ticks", &exponential_bounds(1.0, 2.0, 28));
        let occupancy = reg.histogram(
            "serve.batch_occupancy",
            &linear_bounds(1.0, 1.0, cfg.max_nrhs.max(2)),
        );
        let depth_hist = reg.histogram("serve.queue_depth", &exponential_bounds(1.0, 2.0, 12));
        let depth_gauge = reg.gauge("serve.queue_depth");
        let c_hits = reg.counter("serve.hits");
        let c_spill = reg.counter("serve.spill_hits");
        let c_coal = reg.counter("serve.coalesced");
        let c_solved = reg.counter("serve.solved_keys");
        let c_rejected = reg.counter("serve.rejected");
        let c_batches = reg.counter("serve.batches");
        let c_recovered = reg.counter("serve.recovered");

        let mut report = ServeReport {
            per_tenant_served: vec![0; cfg.n_tenants],
            per_tenant_rejected: vec![0; cfg.n_tenants],
            ..ServeReport::default()
        };
        let per_tenant_cap = (cfg.queue_capacity / cfg.n_tenants.max(1)).max(1);

        let mut queues: Vec<VecDeque<QueuedRequest>> =
            (0..cfg.n_tenants).map(|_| VecDeque::new()).collect();
        let mut deficits = vec![0.0f64; cfg.n_tenants];
        let mut cursor = 0usize;
        let mut queued_total = 0usize;
        let mut servers = vec![0u64; cfg.n_servers.max(1)];
        let mut pending: Vec<PendingBatch> = Vec::new();
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut pending_keys: HashMap<CacheKey, usize> = HashMap::new();
        let mut seq = 0u64;
        let mut hit_seq = 0u64;
        let mut now = 0u64;
        let mut ai = 0usize;

        loop {
            let t_arr = requests.get(ai).map(|r| r.arrival.max(now));
            let t_comp = heap.peek().map(|Reverse((t, _))| *t);
            let t_disp = if queued_total > 0 {
                let t_free = servers.iter().copied().min().unwrap_or(0);
                Some(t_free.max(now))
            } else {
                None
            };

            // Earliest event wins; ties resolve completion → arrival →
            // dispatch so cache state is current before new work enters.
            enum Ev {
                Complete,
                Admit,
                Dispatch,
            }
            let mut best: Option<(u64, u8, Ev)> = None;
            let mut consider = |t: Option<u64>, pri: u8, ev: Ev| {
                if let Some(t) = t {
                    let better = match &best {
                        None => true,
                        Some((bt, bp, _)) => (t, pri) < (*bt, *bp),
                    };
                    if better {
                        best = Some((t, pri, ev));
                    }
                }
            };
            consider(t_comp, 0, Ev::Complete);
            consider(t_arr, 1, Ev::Admit);
            consider(t_disp, 2, Ev::Dispatch);

            let Some((t, _, ev)) = best else { break };
            now = t;
            match ev {
                Ev::Complete => {
                    let Some(Reverse((_, idx))) = heap.pop() else {
                        continue;
                    };
                    let batch = &mut pending[idx];
                    for (key, result) in batch.results.drain(..) {
                        pending_keys.remove(&key);
                        self.cache.insert(key, result);
                    }
                    for (tenant, arrival) in batch.waiters.drain(..) {
                        latency.record((now - arrival) as f64);
                        report.served += 1;
                        report.per_tenant_served[tenant as usize] += 1;
                    }
                }
                Ev::Admit => {
                    let req = requests[ai];
                    ai += 1;
                    seq += 1;
                    report.submitted += 1;
                    let tenant = (req.tenant as usize).min(cfg.n_tenants - 1);
                    let key = CacheKey::canonical(&req, self.backend.config_hash(req.config_id)?);

                    if let Some((cached, from_disk)) = self.cache.lookup(&key) {
                        hit_seq += 1;
                        if cfg.audit_every > 0 && hit_seq % cfg.audit_every == 0 {
                            self.audit_hit(&req, &key, &cached)?;
                            report.audits_passed += 1;
                        }
                        latency.record(cfg.hit_cost as f64);
                        report.served += 1;
                        report.per_tenant_served[tenant] += 1;
                        if from_disk {
                            report.spill_hits += 1;
                            c_spill.add(1);
                        } else {
                            report.hits += 1;
                            c_hits.add(1);
                        }
                    } else if let Some(&idx) = pending_keys.get(&key) {
                        pending[idx].waiters.push((tenant as u32, req.arrival));
                        report.coalesced += 1;
                        c_coal.add(1);
                    } else if queued_total >= cfg.queue_capacity
                        || queues[tenant].len() >= per_tenant_cap
                    {
                        report.rejected += 1;
                        report.per_tenant_rejected[tenant] += 1;
                        c_rejected.add(1);
                    } else {
                        queues[tenant].push_back(QueuedRequest { req, key, seq });
                        queued_total += 1;
                    }
                    let d = queued_total as f64;
                    depth_gauge.set(d);
                    depth_hist.record(d);
                    report.max_queue_depth = report.max_queue_depth.max(queued_total as u64);
                }
                Ev::Dispatch => {
                    // Cheapest free server takes the batch.
                    let sid = min_index(&servers);
                    let tenant = next_tenant(&queues, &mut deficits, &mut cursor, cfg.drr_quantum);
                    let Some(head) = queues[tenant].pop_front() else {
                        continue;
                    };
                    queued_total -= 1;
                    if queues[tenant].is_empty() {
                        deficits[tenant] = 0.0;
                    }

                    let mut members = vec![head];
                    if let Some(class) = BatchClass::of(&head.req) {
                        let extra =
                            drain_compatible(&mut queues, class, cfg.max_nrhs - members.len());
                        queued_total -= extra.len();
                        members.extend(extra);
                        for (i, q) in queues.iter().enumerate() {
                            if q.is_empty() {
                                deficits[i] = 0.0;
                            }
                        }
                    }

                    let (results, waiters, service) = self.dispatch(&members, &mut report)?;
                    if matches!(head.req.policy, Policy::Dense) {
                        report.batches += 1;
                        report.batched_columns += results.len() as u64;
                        c_batches.add(1);
                        occupancy.record(results.len() as f64);
                        if cfg.audit_every > 0 && report.batches % cfg.audit_every == 0 {
                            self.audit_batch(&members[0], &results[0].1)?;
                            report.audits_passed += 1;
                        }
                    }
                    report.solved_keys += results.len() as u64;
                    c_solved.add(results.len() as u64);
                    c_recovered.add(results.iter().filter(|(_, r)| r.recovered).count() as u64);

                    let completion = now + service;
                    servers[sid] = completion;
                    let idx = pending.len();
                    for (k, _) in &results {
                        pending_keys.insert(*k, idx);
                    }
                    pending.push(PendingBatch { results, waiters });
                    heap.push(Reverse((completion, idx)));
                    report.virtual_makespan = report.virtual_makespan.max(completion);
                }
            }
        }

        report.latency_p50 = latency.quantile(0.5);
        report.latency_p99 = latency.quantile(0.99);
        Ok(report)
    }

    /// Run the real solve for a formed batch; returns the unique-key
    /// results, the request instances to complete, and the modeled service
    /// time.
    #[allow(clippy::type_complexity)]
    fn dispatch(
        &self,
        members: &[QueuedRequest],
        report: &mut ServeReport,
    ) -> Result<(Vec<(CacheKey, Arc<SolveResult>)>, Vec<(u32, u64)>, u64), ServiceError> {
        let cfg = &self.cfg;
        let head = &members[0].req;
        let waiters: Vec<(u32, u64)> = members
            .iter()
            .map(|m| (m.req.tenant, m.req.arrival))
            .collect();
        match head.policy {
            Policy::Sharded => {
                let r = self.backend.solve_sharded(
                    head.config_id,
                    head.mass.to_bits(),
                    head.precision,
                    head.source_seed,
                )?;
                report.sharded_solves += 1;
                if r.recovered {
                    report.recovered += 1;
                }
                if !r.converged {
                    report.unconverged += 1;
                }
                let service = cfg.batch_base_cost + cfg.cost_per_iteration * r.iterations as u64;
                Ok((vec![(members[0].key, Arc::new(r))], waiters, service))
            }
            Policy::Dense => {
                // Unique keys in first-seen order become the RHS columns.
                let mut keys: Vec<CacheKey> = Vec::new();
                let mut seeds: Vec<u64> = Vec::new();
                for m in members {
                    if !keys.contains(&m.key) {
                        keys.push(m.key);
                        seeds.push(m.req.source_seed);
                    }
                }
                let solved = self.backend.solve_dense_batch(
                    head.config_id,
                    head.mass.to_bits(),
                    head.precision,
                    &seeds,
                )?;
                let mut max_iters = 0u64;
                let mut results = Vec::with_capacity(keys.len());
                for (k, r) in keys.into_iter().zip(solved) {
                    max_iters = max_iters.max(r.iterations as u64);
                    if !r.converged {
                        report.unconverged += 1;
                    }
                    results.push((k, Arc::new(r)));
                }
                let service = cfg.batch_base_cost
                    + cfg.cost_per_iteration * max_iters
                    + cfg.cost_per_column * (results.len() as u64 - 1);
                Ok((results, waiters, service))
            }
        }
    }

    /// Bit-identity audit of a served hit against a fresh cold solve.
    fn audit_hit(
        &self,
        req: &SolveRequest,
        key: &CacheKey,
        cached: &SolveResult,
    ) -> Result<(), ServiceError> {
        let fresh = match req.policy {
            Policy::Dense => self.backend.solve_dense_solo(
                req.config_id,
                req.mass.to_bits(),
                req.precision,
                req.source_seed,
            )?,
            Policy::Sharded => self.backend.solve_sharded(
                req.config_id,
                req.mass.to_bits(),
                req.precision,
                req.source_seed,
            )?,
        };
        if !bits_equal(&fresh, cached) {
            return Err(ServiceError::Audit(format!(
                "cache hit for {} is not bit-identical to a cold solve",
                key.file_stem()
            )));
        }
        Ok(())
    }

    /// Bit-identity audit of a batched column against the unbatched `cg`.
    fn audit_batch(
        &self,
        member: &QueuedRequest,
        batched: &SolveResult,
    ) -> Result<(), ServiceError> {
        let solo = self.backend.solve_dense_solo(
            member.req.config_id,
            member.req.mass.to_bits(),
            member.req.precision,
            member.req.source_seed,
        )?;
        if !bits_equal(&solo, batched) {
            return Err(ServiceError::Audit(format!(
                "batched column for {} is not bit-identical to the solo solve",
                member.key.file_stem()
            )));
        }
        Ok(())
    }
}

/// Index of the minimum element (first wins ties — deterministic).
fn min_index(v: &[u64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x < v[best] {
            best = i;
        }
    }
    best
}

/// Deficit round-robin tenant selection. Precondition: some queue is
/// non-empty.
fn next_tenant(
    queues: &[VecDeque<QueuedRequest>],
    deficits: &mut [f64],
    cursor: &mut usize,
    quantum: f64,
) -> usize {
    let quantum = quantum.max(0.05);
    let n = queues.len();
    loop {
        let t = *cursor;
        *cursor = (*cursor + 1) % n;
        if queues[t].is_empty() {
            continue;
        }
        deficits[t] += quantum;
        if deficits[t] >= 1.0 {
            deficits[t] -= 1.0;
            return t;
        }
    }
}

fn exponential_bounds(start: f64, factor: f64, n: usize) -> Vec<f64> {
    let mut bounds = Vec::with_capacity(n);
    let mut e = start;
    for _ in 0..n {
        bounds.push(e);
        e *= factor;
    }
    bounds
}

fn linear_bounds(start: f64, width: f64, n: usize) -> Vec<f64> {
    (0..n).map(|i| start + width * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendConfig;
    use crate::request::Precision;
    use crate::traffic::{generate, TrafficConfig};

    fn small_stream(n: usize) -> Vec<SolveRequest> {
        generate(&TrafficConfig {
            n_requests: n,
            n_configs: 2,
            n_seeds: 4,
            masses: vec![0.2],
            sharded_per_mille: 0,
            ..TrafficConfig::default()
        })
    }

    fn run(reqs: &[SolveRequest], cfg: GatewayConfig) -> ServeReport {
        let backend = Backend::new(BackendConfig {
            n_configs: 2,
            ..BackendConfig::default()
        })
        .expect("backend");
        let cache = ResultCache::new(64, None);
        Gateway::new(&backend, &cache, cfg)
            .run(reqs)
            .expect("gateway run")
    }

    #[test]
    fn everything_is_served_or_rejected_and_hits_dominate() {
        let reqs = small_stream(200);
        let report = run(
            &reqs,
            GatewayConfig {
                audit_every: 16,
                ..GatewayConfig::default()
            },
        );
        assert_eq!(report.submitted, 200);
        assert_eq!(report.served + report.rejected, 200);
        assert!(report.hit_rate() > 0.5, "hit rate {}", report.hit_rate());
        assert!(report.audits_passed > 0);
        assert!(report.latency_p99 >= report.latency_p50);
    }

    #[test]
    fn report_is_identical_across_pool_widths() {
        let reqs = small_stream(120);
        let cfg = GatewayConfig::default();
        let at = |w: usize| {
            let cfg = cfg.clone();
            let reqs = reqs.clone();
            rayon::ThreadPoolBuilder::new()
                .num_threads(w)
                .build()
                .expect("pool")
                .install(move || run(&reqs, cfg))
        };
        assert_eq!(at(1), at(4), "virtual-time report must be width-invariant");
    }

    #[test]
    fn noisy_neighbour_cannot_starve_quiet_tenants() {
        // Saturating load from tenant 0 plus a trickle from tenant 1:
        // admission may reject the flood, but tenant 1 must be served.
        let mut reqs: Vec<SolveRequest> = Vec::new();
        for i in 0..60u64 {
            reqs.push(SolveRequest {
                tenant: 0,
                config_id: 0,
                source_seed: 500 + i, // all distinct: no cache relief
                mass: 0.2,
                precision: Precision::Sloppy,
                policy: Policy::Dense,
                arrival: 1 + i,
            });
        }
        for i in 0..6u64 {
            reqs.push(SolveRequest {
                tenant: 1,
                config_id: 1,
                source_seed: 700 + i,
                mass: 0.2,
                precision: Precision::Sloppy,
                policy: Policy::Dense,
                arrival: 5 + 150 * i,
            });
        }
        reqs.sort_by_key(|r| r.arrival);
        let report = run(
            &reqs,
            GatewayConfig {
                queue_capacity: 12,
                max_nrhs: 4,
                n_servers: 1,
                ..GatewayConfig::default()
            },
        );
        // Per-tenant admission quotas keep the flood inside tenant 0's
        // share, and DRR alternates dispatch, so every quiet-tenant
        // request completes while the flood eats its own rejections.
        assert_eq!(report.per_tenant_served[1], 6, "{report:?}");
        assert!(report.per_tenant_rejected[0] > 0);
        assert!(report.per_tenant_served[0] > 0);
    }
}
