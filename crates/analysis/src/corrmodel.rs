//! Synthetic correlator ensembles with the paper's spectral content.
//!
//! The Fig. 1 comparison lives on the a09m310 ensemble (a ≈ 0.09 fm,
//! mπ ≈ 310 MeV, 32³×96), which we cannot regenerate at physical scale.
//! What *can* be reproduced exactly is the statistical structure that makes
//! the Feynman–Hellmann method win:
//!
//! - a nucleon two-point function `C(t) = A₀²e^{−E₀t}(1 + r²e^{−ΔE·t})`,
//! - an FH-summed correlator whose ratio slope plateaus at `gA` with an
//!   excited-state contamination `b·e^{−ΔE·t}` at early times,
//! - per-configuration noise whose relative size grows as
//!   `e^{(m_N − 3/2 m_π)t}` — the Parisi–Lepage signal-to-noise law that
//!   makes the traditional large-`t` method exponentially expensive,
//! - strong correlations between `C_FH` and `C` (the ratio is quieter than
//!   either numerator or denominator).
//!
//! All parameters of [`A09M310`] are in lattice units of that ensemble.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Spectral + noise model of a nucleon correlator pair.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CorrelatorModel {
    /// Ground-state nucleon energy, lattice units.
    pub e0: f64,
    /// Excited-state gap, lattice units.
    pub de: f64,
    /// Ground-state amplitude.
    pub a0: f64,
    /// Excited-to-ground amplitude ratio squared appearing in `C(t)`.
    pub r2: f64,
    /// The axial coupling (the paper's answer: 1.271).
    pub ga: f64,
    /// Excited-state contamination amplitude in `g_eff` at `t = 0`.
    pub contamination: f64,
    /// Relative noise of one configuration at `t = 0`.
    pub noise_base: f64,
    /// Signal-to-noise decay rate `m_N − 3/2·m_π`, lattice units.
    pub noise_growth: f64,
    /// Correlation of the FH and two-point fluctuations.
    pub fh_correlation: f64,
    /// Temporal extent.
    pub nt: usize,
}

/// The a09m310 ensemble of the paper (a ≈ 0.0871 fm, mπ ≈ 310 MeV):
/// `a·m_N ≈ 0.51`, `a·m_π ≈ 0.137`, gA = 1.271.
pub const A09M310: CorrelatorModel = CorrelatorModel {
    e0: 0.508,
    de: 0.30,
    a0: 1.0,
    r2: 0.64,
    ga: 1.271,
    contamination: -0.27,
    noise_base: 0.012,
    noise_growth: 0.303,
    fh_correlation: 0.75,
    nt: 96,
};

/// Generated samples: `[config][t]`.
#[derive(Clone, Debug)]
pub struct SyntheticEnsemble {
    /// Two-point samples.
    pub c2pt: Vec<Vec<f64>>,
    /// FH-summed samples.
    pub cfh: Vec<Vec<f64>>,
}

impl CorrelatorModel {
    /// Mean two-point function.
    pub fn mean_c2(&self, t: f64) -> f64 {
        self.a0 * self.a0 * (-self.e0 * t).exp() * (1.0 + self.r2 * (-self.de * t).exp())
    }

    /// Mean FH ratio `R(t) = C_FH(t)/C(t)`; its finite difference is the
    /// effective coupling.
    pub fn mean_ratio(&self, t: f64) -> f64 {
        // R(t) = c0 + gA·t + b'·e^{−ΔE·t} gives
        // g_eff(t) = gA − b'(1 − e^{−ΔE})·e^{−ΔE·t}.
        let bprime = -self.contamination / (1.0 - (-self.de).exp());
        0.5 + self.ga * t + bprime * (-self.de * t).exp()
    }

    /// Mean FH-summed correlator.
    pub fn mean_cfh(&self, t: f64) -> f64 {
        self.mean_c2(t) * self.mean_ratio(t)
    }

    /// The exact effective coupling of the model (no noise):
    /// `g_eff(t) = gA + contamination·e^{−ΔE·t}`.
    pub fn true_geff(&self, t: f64) -> f64 {
        self.ga + self.contamination * (-self.de * t).exp()
    }

    /// Relative noise of one configuration at time `t`.
    pub fn relative_noise(&self, t: f64) -> f64 {
        self.noise_base * (self.noise_growth * t).exp()
    }

    /// Generate `n_configs` correlated sample pairs out to `t_max`
    /// (inclusive), reproducible from `seed`.
    pub fn generate(&self, n_configs: usize, t_max: usize, seed: u64) -> SyntheticEnsemble {
        assert!(t_max < self.nt);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gauss = move || -> f64 {
            let u1: f64 = rng.gen::<f64>().max(1e-300);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };

        let mut c2pt = Vec::with_capacity(n_configs);
        let mut cfh = Vec::with_capacity(n_configs);
        let rho_t = 0.8; // AR(1) correlation of fluctuations along t
        for _ in 0..n_configs {
            let mut row2 = Vec::with_capacity(t_max + 1);
            let mut rowf = Vec::with_capacity(t_max + 1);
            let mut z2 = gauss();
            let mut zf_ind = gauss();
            for t in 0..=t_max {
                if t > 0 {
                    z2 = rho_t * z2 + (1.0 - rho_t * rho_t).sqrt() * gauss();
                    zf_ind = rho_t * zf_ind + (1.0 - rho_t * rho_t).sqrt() * gauss();
                }
                // FH fluctuation shares a component with the 2pt one.
                let c = self.fh_correlation;
                let zf = c * z2 + (1.0 - c * c).sqrt() * zf_ind;
                let eps = self.relative_noise(t as f64);
                row2.push(self.mean_c2(t as f64) * (1.0 + eps * z2));
                // The FH correlator carries somewhat larger fluctuations
                // (two insertions' worth of noise).
                rowf.push(self.mean_cfh(t as f64) * (1.0 + 1.6 * eps * zf));
            }
            c2pt.push(row2);
            cfh.push(rowf);
        }
        SyntheticEnsemble { c2pt, cfh }
    }

    /// Traditional three-point ratio samples at source–sink separation
    /// `t_sep` (current at `t_sep/2`): mean carries twice-decayed
    /// excited-state contamination; noise carries the full `e^{growth·t_sep}`
    /// plus the extra factor a three-point function pays.
    pub fn traditional_samples(&self, t_sep: usize, n_configs: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
        let mean = self.ga + 2.0 * self.contamination * (-self.de * t_sep as f64 / 2.0).exp();
        let sigma = 1.8 * self.relative_noise(t_sep as f64);
        (0..n_configs)
            .map(|_| {
                let u1: f64 = rng.gen::<f64>().max(1e-300);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                mean + sigma * z
            })
            .collect()
    }
}

impl SyntheticEnsemble {
    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.c2pt.len()
    }

    /// Whether the ensemble is empty.
    pub fn is_empty(&self) -> bool {
        self.c2pt.is_empty()
    }

    /// Ensemble-mean effective coupling curve
    /// `g_eff(t) = R(t+1) − R(t)`, `R = ⟨C_FH⟩/⟨C⟩`.
    pub fn effective_ga(&self) -> Vec<f64> {
        Self::effective_ga_of(&self.c2pt, &self.cfh)
    }

    /// Effective coupling from explicit sample sets (used by resampling).
    pub fn effective_ga_of(c2: &[Vec<f64>], cf: &[Vec<f64>]) -> Vec<f64> {
        let n = c2.len() as f64;
        let t_len = c2[0].len();
        let mean = |rows: &[Vec<f64>], t: usize| rows.iter().map(|r| r[t]).sum::<f64>() / n;
        let r: Vec<f64> = (0..t_len).map(|t| mean(cf, t) / mean(c2, t)).collect();
        (0..t_len - 1).map(|t| r[t + 1] - r[t]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jackknife::jackknife_vector;

    #[test]
    fn true_geff_plateaus_at_ga() {
        let m = A09M310;
        assert!((m.true_geff(30.0) - m.ga).abs() < 1e-4);
        // Early times are pulled down by the excited state.
        assert!(m.true_geff(1.0) < m.ga - 0.1);
    }

    #[test]
    fn ensemble_mean_geff_matches_model() {
        let m = A09M310;
        let ens = m.generate(4000, 14, 3);
        let geff = ens.effective_ga();
        for t in 1..8 {
            let expect = m.true_geff(t as f64 + 0.5); // finite difference midpoint
            assert!(
                (geff[t] - expect).abs() < 0.05,
                "t={t}: {} vs {}",
                geff[t],
                expect
            );
        }
    }

    #[test]
    fn noise_grows_exponentially_with_t() {
        let m = A09M310;
        let ens = m.generate(600, 14, 5);
        let est = jackknife_vector(&(0..600).collect::<Vec<_>>(), |idx| {
            let c2: Vec<Vec<f64>> = idx.iter().map(|&i| ens.c2pt[i].clone()).collect();
            let cf: Vec<Vec<f64>> = idx.iter().map(|&i| ens.cfh[i].clone()).collect();
            SyntheticEnsemble::effective_ga_of(&c2, &cf)
        });
        // σ(g_eff) at t=12 should dwarf σ at t=2 by roughly e^{0.3·10} ≈ 20.
        let ratio = est[12].error / est[2].error;
        assert!(
            (5.0..80.0).contains(&ratio),
            "signal-to-noise must degrade exponentially: ratio {ratio}"
        );
    }

    #[test]
    fn fh_with_tenth_the_statistics_beats_traditional() {
        // The Fig. 1 headline: FH at N configs is more precise than the
        // traditional ratios at 10N configs, because FH fits the early-time
        // region where the noise is exponentially smaller.
        let m = A09M310;
        let n_fh = 800;
        let n_trad = 8000;

        // FH: fit window t in 2..10 -> error on gA from the fit.
        let ens = m.generate(n_fh, 12, 7);
        let idx: Vec<usize> = (0..n_fh).collect();
        let est = jackknife_vector(&idx, |ii| {
            let c2: Vec<Vec<f64>> = ii.iter().map(|&i| ens.c2pt[i].clone()).collect();
            let cf: Vec<Vec<f64>> = ii.iter().map(|&i| ens.cfh[i].clone()).collect();
            SyntheticEnsemble::effective_ga_of(&c2, &cf)
        });
        let xs: Vec<f64> = (2..10).map(|t| t as f64).collect();
        let ys: Vec<f64> = (2..10).map(|t| est[t].mean).collect();
        let ss: Vec<f64> = (2..10).map(|t| est[t].error.max(1e-6)).collect();
        let fit = crate::fit::curve_fit(
            &xs,
            &ys,
            &ss,
            |x, p| p[0] + p[1] * (-m.de * x).exp(),
            &[1.0, -0.3],
            &crate::fit::FitSettings::default(),
        );
        assert!(fit.converged);
        let fh_err = fit.errors[0];
        assert!(
            (fit.params[0] - m.ga).abs() < 4.0 * fh_err + 0.02,
            "FH fit {} ± {} vs true {}",
            fit.params[0],
            fh_err,
            m.ga
        );

        // Traditional: the method cannot use short separations — at
        // t_sep = 12 the excited-state bias still exceeds the statistical
        // error even with 10N configurations, which is exactly why the
        // paper's colored points sit at large t.
        let stats_of = |t_sep: usize, seed: u64| {
            let trad = m.traditional_samples(t_sep, n_trad, seed);
            let mean: f64 = trad.iter().sum::<f64>() / n_trad as f64;
            let var: f64 =
                trad.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n_trad as f64 - 1.0);
            (mean, (var / n_trad as f64).sqrt())
        };
        let (mean12, err12) = stats_of(12, 9);
        assert!(
            (mean12 - m.ga).abs() > 3.0 * err12,
            "t_sep=12 must be systematically biased: {} ± {} vs {}",
            mean12,
            err12,
            m.ga
        );

        // Controlling the systematic pushes the traditional method to
        // t_sep = 16, where the exponential noise growth makes it lose to
        // FH even with an order of magnitude more statistics.
        let (_, trad_err) = stats_of(16, 11);
        assert!(
            fh_err < trad_err,
            "FH ({n_fh} cfgs) error {fh_err} must beat traditional ({n_trad} cfgs) {trad_err}"
        );
    }

    #[test]
    fn generation_is_reproducible() {
        let m = A09M310;
        let a = m.generate(10, 8, 42);
        let b = m.generate(10, 8, 42);
        assert_eq!(a.c2pt, b.c2pt);
        assert_eq!(a.cfh, b.cfh);
    }
}
