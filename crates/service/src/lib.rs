//! Solve-service front end: a thread-pool-backed gateway over the batched
//! Krylov solvers with a content-addressed result cache.
//!
//! The paper's production campaign served millions of propagator solves
//! against a few thousand gauge configurations; the same (configuration,
//! source, mass, precision) system recurs constantly across contraction
//! jobs. This crate packages that workload shape as a service:
//!
//! - [`request`] — the canonical solve-request schema and the
//!   collision-safe [`request::CacheKey`] derived from it (config *content*
//!   hash, mass as raw `f64` bits — never a formatted string);
//! - [`cache`] — a sharded-safe content-addressed result cache with LRU
//!   eviction, in-flight deduplication (two racing misses → one solve), and
//!   CRC-gated spill to the `lattice-io` container format;
//! - [`batch`] — grouping of compatible queued requests (same
//!   configuration, mass, precision) into one multi-RHS [`cg_block`] solve;
//! - [`gateway`] — admission control over a bounded queue, deficit
//!   round-robin fairness across tenants, and a deterministic virtual-time
//!   event loop so latency statistics are bit-stable at any pool width;
//! - [`traffic`] — a splitmix64-seeded, Zipf-distributed synthetic request
//!   generator for the `repro serve` experiment;
//! - [`backend`] — the actual solves: dense batched `cg_block` over the
//!   Wilson normal operator, and fault-tolerant `cg_ft` over the sharded
//!   Möbius operator for requests routed through the degraded-comms path.
//!
//! All parallelism happens inside the solver kernels on the deterministic
//! work-stealing pool; the service spawns no threads of its own and reads
//! no wall clocks, so every response — and every metric derived from the
//! virtual clock — is bit-identical across machines and thread counts.
//!
//! [`cg_block`]: lqcd_core::solver::cg_block

pub mod backend;
pub mod batch;
pub mod cache;
pub mod error;
pub mod gateway;
pub mod request;
pub mod traffic;

pub use backend::{Backend, BackendConfig, SolveResult};
pub use batch::BatchClass;
pub use cache::{CacheOutcome, CacheStats, ResultCache};
pub use error::ServiceError;
pub use gateway::{Gateway, GatewayConfig, ServeReport};
pub use request::{CacheKey, Policy, Precision, SolveRequest};
pub use traffic::{generate, TrafficConfig};
