//! Halo-exchange communication policies and their timing model.
//!
//! Deploying a multi-process stencil on an MPI+GPU system offers several
//! ways to coordinate GPU compute with MPI communication (paper §V):
//! staging halos through CPU memory with GPU DMA engines, zero-copy
//! reads/writes against CPU memory, or GPU Direct RDMA straight to the NIC —
//! crossed with coarse-grained (one halo kernel after all communication,
//! less launch latency) versus fine-grained (per-dimension, better overlap)
//! scheduling. The optimum depends on message size, node density, GPU
//! generation, and machine support — "given this multi-dimensional parameter
//! space ... applying the autotuner to the stencil-communication policy is
//! very natural."
//!
//! Each policy here exposes a deterministic cost model; the autotuner sweeps
//! the available policies per (machine, decomposition) exactly as the
//! paper's communication-policy tuning does.

use crate::decomp::{Decomposition, HALO_BYTES_PER_SITE};
use crate::specs::MachineSpec;
use serde::{Deserialize, Serialize};

/// How halo bytes reach the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommTransport {
    /// GPU DMA to CPU buffers, regular MPI from the CPU. Always available;
    /// costs CPU synchronization and shares the CPU link.
    StagedDma,
    /// Zero-copy loads/stores against CPU memory for sends/receives. Lower
    /// latency, lower achievable bandwidth.
    ZeroCopy,
    /// GPU Direct RDMA between GPU and NIC. Best transport, but unsupported
    /// on Sierra/Summit at the time of the paper's submission.
    GdrDirect,
}

/// Halo-update scheduling granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommGranularity {
    /// Wait for all dimensions, launch one fused halo kernel (less launch
    /// latency, worse overlap).
    Coarse,
    /// Per-dimension halo kernels as messages complete (more launches,
    /// better overlap).
    Fine,
}

/// A complete communication policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CommPolicy {
    /// Wire transport.
    pub transport: CommTransport,
    /// Scheduling granularity.
    pub granularity: CommGranularity,
}

impl CommPolicy {
    /// Every policy, in a stable order (policy index = position).
    pub fn all() -> Vec<CommPolicy> {
        let mut v = Vec::new();
        for transport in [
            CommTransport::StagedDma,
            CommTransport::ZeroCopy,
            CommTransport::GdrDirect,
        ] {
            for granularity in [CommGranularity::Coarse, CommGranularity::Fine] {
                v.push(CommPolicy {
                    transport,
                    granularity,
                });
            }
        }
        v
    }

    /// Policies usable on `machine` (GDR requires hardware/software support).
    pub fn available(machine: &MachineSpec) -> Vec<CommPolicy> {
        Self::all()
            .into_iter()
            .filter(|p| machine.gdr_available || p.transport != CommTransport::GdrDirect)
            .collect()
    }

    /// Short display name, e.g. `"staged/coarse"`.
    pub fn label(&self) -> String {
        let t = match self.transport {
            CommTransport::StagedDma => "staged",
            CommTransport::ZeroCopy => "zerocopy",
            CommTransport::GdrDirect => "gdr",
        };
        let g = match self.granularity {
            CommGranularity::Coarse => "coarse",
            CommGranularity::Fine => "fine",
        };
        format!("{t}/{g}")
    }

    /// Peak inter-node bandwidth per GPU for this transport on `machine`,
    /// GB/s, before message-size derating. The NIC is shared by all GPUs on
    /// the node; staging additionally rides the CPU link and pays protocol
    /// overheads (the paper's motivation for wanting GDR).
    fn base_inter_bw(&self, machine: &MachineSpec) -> f64 {
        let share = machine.gpus_per_node as f64;
        match self.transport {
            CommTransport::StagedDma => {
                (machine.nic_bw_gbs * 0.55).min(machine.cpu_gpu_bw_gbs * 0.5) / share
            }
            CommTransport::ZeroCopy => {
                (machine.nic_bw_gbs * 0.35).min(machine.cpu_gpu_bw_gbs * 0.4) / share
            }
            CommTransport::GdrDirect => machine.nic_bw_gbs * 0.80 / share,
        }
    }

    /// Message size at which the transport reaches half its peak bandwidth,
    /// bytes. Staging pipelines poorly for small messages.
    fn half_saturation_bytes(&self) -> f64 {
        match self.transport {
            CommTransport::StagedDma => 1.0e6,
            CommTransport::ZeroCopy => 2.5e5,
            CommTransport::GdrDirect => 1.25e5,
        }
    }

    /// Per-message software latency, seconds.
    fn message_latency(&self, machine: &MachineSpec) -> f64 {
        let wire = machine.net_latency_us * 1e-6;
        match self.transport {
            CommTransport::StagedDma => wire + 8e-6,
            CommTransport::ZeroCopy => wire + 4e-6,
            CommTransport::GdrDirect => wire + 2e-6,
        }
    }

    /// Kernel-launch overhead for the halo update, seconds.
    pub fn launch_overhead(&self, n_dirs: usize) -> f64 {
        match self.granularity {
            CommGranularity::Coarse => 10e-6,
            CommGranularity::Fine => 5e-6 * (2 * n_dirs.max(1)) as f64,
        }
    }

    /// Fraction of the halo compute that overlaps with communication.
    pub fn overlap_fraction(&self) -> f64 {
        match self.granularity {
            CommGranularity::Coarse => 0.0,
            CommGranularity::Fine => 0.6,
        }
    }

    /// Time for one operator application's halo exchange under this policy,
    /// seconds: intra-node over NVLink (CUDA IPC), inter-node over the NIC
    /// with message-size derating, plus per-message latencies. Every
    /// partitioned direction exchanges two face messages (forward and
    /// backward), and each message pays its own software latency and is
    /// derated by its own size — faces of an asymmetric decomposition differ
    /// by large factors, so an average-size model misprices the sum.
    pub fn exchange_time(&self, machine: &MachineSpec, decomp: &Decomposition) -> f64 {
        let mut t = 0.0;

        // CUDA IPC over NVLink; small residual software latency per message
        // after the paper's dense-node optimization removed CPU
        // synchronization — charged per message, like the inter-node path.
        let (intra_bytes, _) = decomp.halo_bytes();
        let n_intra_msgs = 2 * decomp.halos.iter().filter(|h| h.intra_node).count();
        if intra_bytes > 0.0 {
            t += intra_bytes / (machine.nvlink_bw_gbs * 1e9) + n_intra_msgs as f64 * 2e-6;
        }

        // Inter-node over the NIC, per direction: each of the two face
        // messages carries half the direction's halo sites and is derated by
        // that actual message size.
        for h in decomp.halos.iter().filter(|h| !h.intra_node) {
            let dir_bytes = h.sites * HALO_BYTES_PER_SITE;
            let msg_bytes = dir_bytes / 2.0;
            let half = self.half_saturation_bytes();
            let utilization = msg_bytes / (msg_bytes + half);
            let bw = self.base_inter_bw(machine) * 1e9 * utilization.max(1e-3);
            t += dir_bytes / bw + 2.0 * self.message_latency(machine);
        }

        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{ray, sierra, titan};

    fn decomp_48(gpus: usize, gpn: usize) -> Decomposition {
        Decomposition::best([48, 48, 48, 64], 12, gpus, gpn).expect("fits")
    }

    #[test]
    fn six_policies_exist_and_gdr_is_gated() {
        assert_eq!(CommPolicy::all().len(), 6);
        assert_eq!(
            CommPolicy::available(&sierra()).len(),
            4,
            "no GDR on Sierra"
        );
        assert_eq!(CommPolicy::available(&ray()).len(), 6, "GDR on Ray");
    }

    #[test]
    fn gdr_beats_staging_when_available() {
        let m = ray();
        let d = decomp_48(32, m.gpus_per_node);
        let staged = CommPolicy {
            transport: CommTransport::StagedDma,
            granularity: CommGranularity::Coarse,
        };
        let gdr = CommPolicy {
            transport: CommTransport::GdrDirect,
            granularity: CommGranularity::Coarse,
        };
        assert!(gdr.exchange_time(&m, &d) < staged.exchange_time(&m, &d));
    }

    #[test]
    fn single_gpu_needs_no_exchange_time_beyond_zero() {
        let m = sierra();
        let d = decomp_48(1, m.gpus_per_node);
        for p in CommPolicy::available(&m) {
            assert_eq!(p.exchange_time(&m, &d), 0.0, "{}", p.label());
        }
    }

    #[test]
    fn exchange_time_grows_with_gpu_count_past_node() {
        let m = sierra();
        let p = CommPolicy {
            transport: CommTransport::StagedDma,
            granularity: CommGranularity::Coarse,
        };
        // All-intra (4 GPUs, one node) must beat inter-node (32 GPUs).
        let t4 = p.exchange_time(&m, &decomp_48(4, 4));
        let t32 = p.exchange_time(&m, &decomp_48(32, 4));
        assert!(t4 < t32, "intra-node {t4} vs inter-node {t32}");
    }

    #[test]
    fn titan_interconnect_is_slowest() {
        let d_t = decomp_48(16, 1);
        let d_s = decomp_48(16, 4);
        let p = CommPolicy {
            transport: CommTransport::StagedDma,
            granularity: CommGranularity::Coarse,
        };
        assert!(p.exchange_time(&titan(), &d_t) > p.exchange_time(&sierra(), &d_s));
    }

    #[test]
    fn intra_node_latency_is_charged_per_message() {
        // Build two all-intra decompositions by hand that move the same
        // total bytes through a different number of messages: one partitioned
        // direction (2 messages) versus two (4 messages). The bandwidth term
        // is byte-count-only, so the times must differ by exactly the extra
        // two IPC latencies.
        use crate::decomp::HaloTraffic;
        let m = sierra();
        let one_dir = Decomposition {
            grid: [4, 1, 1, 1],
            local_dims: [12, 48, 48, 64],
            l5: 12,
            halos: vec![HaloTraffic {
                dir: 0,
                sites: 4000.0,
                intra_node: true,
            }],
        };
        let two_dirs = Decomposition {
            grid: [2, 2, 1, 1],
            local_dims: [24, 24, 48, 64],
            l5: 12,
            halos: vec![
                HaloTraffic {
                    dir: 0,
                    sites: 2000.0,
                    intra_node: true,
                },
                HaloTraffic {
                    dir: 1,
                    sites: 2000.0,
                    intra_node: true,
                },
            ],
        };
        let p = CommPolicy {
            transport: CommTransport::StagedDma,
            granularity: CommGranularity::Coarse,
        };
        let t1 = p.exchange_time(&m, &one_dir);
        let t2 = p.exchange_time(&m, &two_dirs);
        assert!(
            ((t2 - t1) - 2.0 * 2e-6).abs() < 1e-12,
            "two extra intra-node messages must cost exactly two IPC latencies: {t1} vs {t2}"
        );
    }

    #[test]
    fn inter_node_derating_uses_each_faces_actual_size() {
        // Asymmetric halos: one huge direction (near peak bandwidth) and one
        // tiny one whose messages sit below the utilization floor, where the
        // transfer is latency-bound rather than bandwidth-bound. Because
        // `bytes/util(msg)` is affine in the message size above the floor,
        // averaging is harmless there — but a face in the floor regime crawls
        // at 0.1% utilization while the average-size model lets it borrow the
        // big face's ~92%, provably mispredicting the per-face sum.
        use crate::decomp::HaloTraffic;
        let m = sierra();
        let p = CommPolicy {
            transport: CommTransport::StagedDma,
            granularity: CommGranularity::Coarse,
        };
        let big = 2.0e6; // sites; ~24 MB per face — saturated
        let tiny = 20.0; // sites; 240 B per face — below the floor
        let d = Decomposition {
            grid: [2, 2, 1, 1],
            local_dims: [24, 24, 48, 64],
            l5: 12,
            halos: vec![
                HaloTraffic {
                    dir: 0,
                    sites: big,
                    intra_node: false,
                },
                HaloTraffic {
                    dir: 1,
                    sites: tiny,
                    intra_node: false,
                },
            ],
        };

        // Hand-computed per-direction sum (the fixed model).
        let bw_peak = {
            // Mirror base_inter_bw for StagedDma on sierra.
            (m.nic_bw_gbs * 0.55).min(m.cpu_gpu_bw_gbs * 0.5) / m.gpus_per_node as f64
        } * 1e9;
        let half = 1.0e6;
        let lat = m.net_latency_us * 1e-6 + 8e-6;
        let per_dir = |sites: f64| {
            let bytes = sites * HALO_BYTES_PER_SITE;
            let msg = bytes / 2.0;
            let util = (msg / (msg + half)).max(1e-3);
            bytes / (bw_peak * util) + 2.0 * lat
        };
        let expect = per_dir(big) + per_dir(tiny);
        let got = p.exchange_time(&m, &d);
        assert!(
            (got - expect).abs() < 1e-12 * expect,
            "per-direction sum: {got} vs {expect}"
        );

        // The old average-size model mispredicts this sum.
        let inter_bytes = (big + tiny) * HALO_BYTES_PER_SITE;
        let avg_msg = inter_bytes / 4.0;
        let avg_util = (avg_msg / (avg_msg + half)).max(1e-3);
        let avg_model = inter_bytes / (bw_peak * avg_util) + 4.0 * lat;
        assert!(
            (avg_model - expect).abs() > 0.02 * expect,
            "average-size model must provably mispredict: avg {avg_model} vs true {expect}"
        );
    }

    #[test]
    fn fine_granularity_overlaps_more_but_launches_more() {
        let coarse = CommPolicy {
            transport: CommTransport::StagedDma,
            granularity: CommGranularity::Coarse,
        };
        let fine = CommPolicy {
            transport: CommTransport::StagedDma,
            granularity: CommGranularity::Fine,
        };
        assert!(fine.overlap_fraction() > coarse.overlap_fraction());
        assert!(fine.launch_overhead(4) > coarse.launch_overhead(4));
    }
}
