//! The `mpi_jm` partitioned-startup model.
//!
//! "Each launch of a lump is on a bounded number of nodes and hence does not
//! suffer from the common non-linear startup cost for large sets of nodes
//! ... Even on thousands of nodes this partitioned startup process is very
//! fast, taking only a couple of minutes. On Sierra, we were able to bring a
//! 4224 node job up and running in 3-5 minutes ... In less than one minute,
//! all lumps were connected and within five minutes, nearly all nodes were
//! performing real work."

use serde::{Deserialize, Serialize};

/// Startup timing breakdown.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StartupReport {
    /// Nodes in the job.
    pub nodes: usize,
    /// Lump size used.
    pub lump_nodes: usize,
    /// Number of lumps.
    pub n_lumps: usize,
    /// Time for all lumps to `mpirun` up (parallel across lumps), seconds.
    pub lump_start_seconds: f64,
    /// Time for lumps to connect to the scheduler via MPI DPM, seconds.
    pub connect_seconds: f64,
    /// Time for the scheduler to distribute the first wave of jobs, seconds.
    pub first_wave_seconds: f64,
    /// Monolithic-`mpirun` comparison (super-linear in node count), seconds.
    pub monolithic_seconds: f64,
}

impl StartupReport {
    /// Total time until nearly all nodes perform real work.
    pub fn total_seconds(&self) -> f64 {
        self.lump_start_seconds + self.connect_seconds + self.first_wave_seconds
    }

    /// Time until all lumps are connected (the paper's "< 1 minute" figure).
    pub fn connected_seconds(&self) -> f64 {
        self.lump_start_seconds + self.connect_seconds
    }
}

/// Model the partitioned startup of an `n_nodes` job with `lump_nodes`-node
/// lumps, assuming `jobs_per_node` first-wave job starts per node group of
/// `job_nodes`.
pub fn startup_model(n_nodes: usize, lump_nodes: usize, job_nodes: usize) -> StartupReport {
    let n_lumps = n_nodes.div_ceil(lump_nodes.max(1));

    // One mpirun per lump, all in parallel: linear in the (bounded) lump
    // size, so independent of total job size.
    let lump_start_seconds = 15.0 + 0.20 * lump_nodes as f64;

    // DPM connect: lumps contact the scheduler, lightly serialized.
    let connect_seconds = 5.0 + 0.05 * n_lumps as f64;

    // Scheduler matches jobs to blocks and spawns them; throughput-limited
    // on the scheduler process.
    let first_jobs = n_nodes / job_nodes.max(1);
    let first_wave_seconds = first_jobs as f64 * 0.15;

    // Monolithic mpirun for comparison: super-linear wireup.
    let n = n_nodes as f64;
    let monolithic_seconds = 0.5 * n + 2e-3 * n * n.log2();

    StartupReport {
        nodes: n_nodes,
        lump_nodes,
        n_lumps,
        lump_start_seconds,
        connect_seconds,
        first_wave_seconds,
        monolithic_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sierra_4224_nodes_starts_in_3_to_5_minutes() {
        let r = startup_model(4224, 128, 4);
        assert!(
            (180.0..300.0).contains(&r.total_seconds()),
            "total startup {}s outside the paper's 3-5 minute window",
            r.total_seconds()
        );
        assert!(
            r.connected_seconds() < 60.0,
            "lumps must connect in under a minute: {}s",
            r.connected_seconds()
        );
    }

    #[test]
    fn partitioned_startup_beats_monolithic_at_scale() {
        let r = startup_model(4224, 128, 4);
        assert!(r.total_seconds() < 0.2 * r.monolithic_seconds);
    }

    #[test]
    fn lump_start_independent_of_job_size() {
        let small = startup_model(256, 128, 4);
        let large = startup_model(4096, 128, 4);
        assert_eq!(small.lump_start_seconds, large.lump_start_seconds);
    }

    #[test]
    fn lump_count_rounds_up() {
        assert_eq!(startup_model(100, 32, 4).n_lumps, 4);
        assert_eq!(startup_model(96, 32, 4).n_lumps, 3);
    }
}
