//! The Fig. 2 application workflow, end to end and for real: generate a
//! quenched ensemble, round-trip every field through the checksummed I/O
//! layer, solve mixed-precision red–black Möbius propagators, run the
//! Feynman–Hellmann sequential solves, contract, and analyze with the
//! jackknife.
//!
//! ```sh
//! cargo run --release --example workflow_pipeline
//! ```

use lqcd::analysis::jackknife::jackknife_vector;
use lqcd::core::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let lat = Lattice::new([4, 4, 4, 8]);
    let params = MobiusParams::standard(4, 0.3);
    let n_configs = 2;
    let dir = std::env::temp_dir().join("lqcd_workflow");
    std::fs::create_dir_all(&dir).expect("workdir");

    // Load gluonic field(s): generate, write, read back — blue ovals of
    // Fig. 2.
    let mut ens = QuenchedEnsemble::cold_start(&lat, HeatbathParams { beta: 6.0, n_or: 2 }, 11);
    let configs = ens.generate(8, n_configs, 4);

    let mut c2_all: Vec<Vec<f64>> = Vec::new();
    let mut cfh_all: Vec<Vec<f64>> = Vec::new();

    for (i, gauge) in configs.iter().enumerate() {
        let gpath = dir.join(format!("cfg_{i}.lqio"));
        let mut md = BTreeMap::new();
        md.insert("beta".into(), "6.0".into());
        lqcd::io::write_gauge(&gpath, &lat, gauge, md).expect("write");
        let gauge = lqcd::io::read_gauge(&gpath, &lat).expect("read");
        println!(
            "config {i}: plaquette {:.4} (round-tripped through {})",
            average_plaquette(&lat, &gauge),
            gpath.display()
        );

        // Calculate propagators (green box; ~97% of machine time at scale).
        let solver = PropagatorSolver::new(&lat, &gauge, SolverKind::MobiusMixed { params });
        let (prop, stats) = solver.point_propagator(0);
        println!(
            "  12 columns: {} iterations, reliable updates: {}",
            stats.iter().map(|s| s.iterations).sum::<usize>(),
            stats.iter().map(|s| s.reliable_updates).sum::<usize>()
        );

        // Feynman–Hellmann sequential inversions.
        let fh = FeynmanHellmann::axial(&solver);
        let (fh_prop, _) = fh.fh_propagator(&prop);

        // Propagator contractions (the CPU-only stage).
        let proj = lqcd::core::gamma::polarized_projector();
        let c2: Vec<f64> = proton_correlator(&lat, &prop, &prop, &proj)
            .iter()
            .map(|c| c.re)
            .collect();
        let cfh: Vec<f64> = fh_nucleon_correlator(&lat, &prop, &prop, &fh_prop, &fh_prop, &proj)
            .iter()
            .map(|c| c.re)
            .collect();

        // Write result (blue oval).
        let cpath = dir.join(format!("proton_{i}.lqio"));
        let c64: Vec<C64> = c2.iter().map(|&r| C64::new(r, 0.0)).collect();
        lqcd::io::write_correlator(&cpath, &c64, BTreeMap::new()).expect("write corr");

        c2_all.push(c2);
        cfh_all.push(cfh);
    }

    // Analysis: jackknifed effective coupling across configurations.
    let idx: Vec<usize> = (0..n_configs).collect();
    let nt = lat.nt();
    let est = jackknife_vector(&idx, |ii| {
        let n = ii.len() as f64;
        let r: Vec<f64> = (0..nt)
            .map(|t| {
                let num: f64 = ii.iter().map(|&i| cfh_all[i][t]).sum::<f64>() / n;
                let den: f64 = ii.iter().map(|&i| c2_all[i][t]).sum::<f64>() / n;
                num / den
            })
            .collect();
        (0..nt - 1).map(|t| r[t + 1] - r[t]).collect()
    });
    println!("\nFH effective coupling (tiny quenched demo — machinery, not physics):");
    for (t, e) in est.iter().enumerate() {
        println!("  t={t}: g_eff = {:+.4} ± {:.4}", e.mean, e.error);
    }

    std::fs::remove_dir_all(&dir).ok();
}
