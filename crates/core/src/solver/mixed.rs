//! Mixed-precision CG with reliable updates.
//!
//! The paper's optimum solver stores fields in 16-bit fixed point, computes
//! in single precision, and performs "occasional reliable updates to full
//! double precision" (Clark et al., CPC 181 (2010) 1517). This module
//! implements that control flow: the inner CG runs entirely in the low
//! precision `L`; whenever the inner residual has dropped by `delta` relative
//! to the last reliable point, the accumulated correction is promoted to
//! `f64`, the true residual is recomputed with the high-precision operator,
//! and the inner iteration restarts from it. This bounds the drift between
//! the iterated and true residuals that pure low-precision CG suffers.

use super::{CgParams, SolveStats};
use crate::blas;
use crate::dirac::LinearOp;
use crate::real::Real;
use crate::spinor::Spinor;

/// Parameters of the mixed-precision solve.
#[derive(Clone, Copy, Debug)]
pub struct MixedParams {
    /// Stopping criteria on the outer (true, double-precision) residual.
    pub outer: CgParams,
    /// Reliable-update threshold: an update triggers when the inner residual
    /// norm² falls below `delta²` times the norm² at the last reliable point.
    pub delta: f64,
    /// Safety cap on inner iterations between reliable updates.
    pub max_inner: usize,
}

impl Default for MixedParams {
    fn default() -> Self {
        Self {
            outer: CgParams::default(),
            delta: 0.1,
            max_inner: 1_000,
        }
    }
}

/// Solve `A x = b` where `A` is Hermitian positive definite, given the same
/// operator in high (`f64`) and low (`L`) precision.
///
/// `x` must come in zeroed (or holding an initial guess in `f64`).
pub fn mixed_cg<L: Real, AH: LinearOp<f64> + ?Sized, AL: LinearOp<L> + ?Sized>(
    op_hi: &AH,
    op_lo: &AL,
    x: &mut [Spinor<f64>],
    b: &[Spinor<f64>],
    params: MixedParams,
) -> SolveStats {
    let n = op_hi.vec_len();
    assert_eq!(op_lo.vec_len(), n, "precision pair must share a geometry");
    assert_eq!(x.len(), n);
    assert_eq!(b.len(), n);
    let mut stats = SolveStats::new();

    let b_norm2 = blas::norm_sqr(b);
    if b_norm2 == 0.0 {
        blas::zero(x);
        stats.converged = true;
        stats.final_rel_residual = 0.0;
        return stats;
    }
    let target = params.outer.tol * params.outer.tol * b_norm2;

    // True residual in double.
    let mut r_hi = vec![Spinor::zero(); n];
    op_hi.apply(&mut r_hi, x);
    stats.flops += op_hi.flops_per_apply();
    for (ri, bi) in r_hi.iter_mut().zip(b.iter()) {
        *ri = *bi - *ri;
    }
    let mut r2_hi = blas::norm_sqr(&r_hi);

    let blas_flops = 6.0 * 24.0 * n as f64;

    while r2_hi > target && stats.iterations < params.outer.max_iter {
        // Inner CG in low precision on A e = r, e starting at zero.
        let mut r_lo: Vec<Spinor<L>> = r_hi.iter().map(|s| s.cast()).collect();
        let mut p_lo = r_lo.clone();
        let mut e_lo = vec![Spinor::<L>::zero(); n];
        let mut ap_lo = vec![Spinor::<L>::zero(); n];
        let mut r2_lo = blas::norm_sqr(&r_lo);
        let reliable_point = r2_lo;
        let inner_target = (params.delta * params.delta) * reliable_point;

        let mut inner = 0;
        while inner < params.max_inner
            && stats.iterations < params.outer.max_iter
            && r2_lo > inner_target
            && r2_lo > target
        {
            op_lo.apply(&mut ap_lo, &p_lo);
            stats.iterations += 1;
            inner += 1;
            stats.flops += op_lo.flops_per_apply() + blas_flops;

            let pap = blas::dot(&p_lo, &ap_lo).re;
            if pap <= 0.0 {
                break; // precision exhausted in low precision
            }
            let alpha = r2_lo / pap;
            blas::axpy(alpha, &p_lo, &mut e_lo);
            blas::axpy(-alpha, &ap_lo, &mut r_lo);
            let r2_new = blas::norm_sqr(&r_lo);
            let beta = r2_new / r2_lo;
            blas::xpby(&r_lo, beta, &mut p_lo);
            r2_lo = r2_new;
        }

        // Reliable update: promote the correction and recompute the true
        // residual in double precision.
        for (xi, ei) in x.iter_mut().zip(e_lo.iter()) {
            *xi += ei.cast();
        }
        op_hi.apply(&mut r_hi, x);
        stats.flops += op_hi.flops_per_apply();
        for (ri, bi) in r_hi.iter_mut().zip(b.iter()) {
            *ri = *bi - *ri;
        }
        let r2_next = blas::norm_sqr(&r_hi);
        stats.reliable_updates += 1;

        if r2_next >= r2_hi && inner > 0 && r2_next > target {
            // No progress even after a reliable update: the low precision
            // cannot resolve the remaining residual. Give up cleanly.
            r2_hi = r2_next;
            break;
        }
        r2_hi = r2_next;
    }

    stats.final_rel_residual = (r2_hi / b_norm2).sqrt();
    stats.converged = r2_hi <= target;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirac::{NormalOp, PrecMobius, MobiusParams, WilsonDirac};
    use crate::field::{FermionField, GaugeField};
    use crate::lattice::Lattice;
    use crate::solver::cg;

    #[test]
    fn mixed_cg_reaches_double_precision_tolerance() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge64 = GaugeField::<f64>::hot(&lat, 83);
        let gauge32 = gauge64.cast::<f32>();
        let d64 = WilsonDirac::new(&lat, &gauge64, 0.3, true);
        let d32 = WilsonDirac::new(&lat, &gauge32, 0.3, true);
        let n64 = NormalOp::new(&d64);
        let n32 = NormalOp::new(&d32);

        let b = FermionField::<f64>::gaussian(lat.volume(), 17).data;
        let mut x = vec![crate::spinor::Spinor::zero(); lat.volume()];
        let stats = mixed_cg(
            &n64,
            &n32,
            &mut x,
            &b,
            MixedParams {
                outer: CgParams {
                    tol: 1e-10,
                    max_iter: 10_000,
                },
                delta: 0.1,
                max_inner: 500,
            },
        );
        assert!(stats.converged, "{stats:?}");
        assert!(stats.final_rel_residual < 1e-10);
        assert!(
            stats.reliable_updates >= 2,
            "tolerance beyond f32 needs several reliable updates: {stats:?}"
        );
    }

    #[test]
    fn mixed_cg_matches_pure_double_solution() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge64 = GaugeField::<f64>::hot(&lat, 89);
        let gauge32 = gauge64.cast::<f32>();
        let params = MobiusParams::standard(4, 0.1);
        let p64 = PrecMobius::new(&lat, &gauge64, params);
        let p32 = PrecMobius::new(&lat, &gauge32, params);
        let n64 = NormalOp::new(&p64);
        let n32 = NormalOp::new(&p32);

        let b = FermionField::<f64>::gaussian(p64.vec_len(), 18).data;

        let mut x_double = vec![crate::spinor::Spinor::zero(); p64.vec_len()];
        let s1 = cg(&n64, &mut x_double, &b, CgParams::default());
        assert!(s1.converged);

        let mut x_mixed = vec![crate::spinor::Spinor::zero(); p64.vec_len()];
        let s2 = mixed_cg(&n64, &n32, &mut x_mixed, &b, MixedParams::default());
        assert!(s2.converged, "{s2:?}");

        let diff = crate::blas::sub(&x_double, &x_mixed);
        let rel = crate::blas::norm_sqr(&diff) / crate::blas::norm_sqr(&x_double);
        assert!(rel < 1e-16, "solutions must agree to tolerance: rel {rel}");
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let lat = Lattice::new([2, 2, 2, 2]);
        let gauge64 = GaugeField::<f64>::cold(&lat);
        let gauge32 = gauge64.cast::<f32>();
        let d64 = WilsonDirac::new(&lat, &gauge64, 0.5, true);
        let d32 = WilsonDirac::new(&lat, &gauge32, 0.5, true);
        let n64 = NormalOp::new(&d64);
        let n32 = NormalOp::new(&d32);
        let b = vec![crate::spinor::Spinor::zero(); lat.volume()];
        let mut x = FermionField::<f64>::gaussian(lat.volume(), 19).data;
        let stats = mixed_cg(&n64, &n32, &mut x, &b, MixedParams::default());
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
    }
}
