//! Offline typecheck stub: marker traits satisfied by every type, plus the
//! (no-op) derive macros re-exported under the usual names.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub trait DeserializeOwned {}
impl<T> DeserializeOwned for T {}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}
