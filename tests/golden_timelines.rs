//! Golden event-timeline regression tests: each scheduler replays a fixed
//! workload under a deterministic fault schedule (same shape as the
//! `fault_recovery` property tests) while a fresh registry records its
//! event stream. The rendered timeline must match the committed golden in
//! `tests/goldens/` line for line — any change to scheduling order, fault
//! handling, or event fields shows up as a legible text diff.
//!
//! Regenerate after an intentional behaviour change with:
//! `UPDATE_GOLDENS=1 cargo test --test golden_timelines`

use lqcd::jobmgr::{
    Cluster, ClusterConfig, FaultConfig, MetaqScheduler, MpiJmConfig, MpiJmScheduler, NaiveBundler,
    RetryPolicy, SimReport, Workload,
};
use lqcd::machine::sierra;
use obs::Registry;
use std::path::PathBuf;

/// The fixed scenario every scheduler replays: 24 heterogeneous 2-node
/// solves on 12 nodes, node crashes at MTBF 12 000 s plus 5% transient
/// failures, all seeded.
fn run_scheduler(which: &str) -> (Registry, SimReport) {
    let workload = Workload::heterogeneous_solves(24, 2, 400.0, 0.3, 1e14, 11);
    let config = ClusterConfig {
        nodes: 12,
        jitter_sigma: 0.05,
        startup_failure_prob: 0.0,
        seed: 5,
    };
    let faults = FaultConfig {
        node_mtbf_seconds: 12_000.0,
        transient_fail_prob: 0.05,
        seed: 42,
        ..FaultConfig::default()
    };
    let policy = RetryPolicy::default();
    let reg = Registry::new();
    let report = {
        let _guard = reg.install_scoped();
        match which {
            "naive" => NaiveBundler::run_with_faults(
                &mut Cluster::new(sierra(), &config),
                &workload,
                &faults,
                &policy,
            ),
            "metaq" => MetaqScheduler::run_with_faults(
                &mut Cluster::new(sierra(), &config),
                &workload,
                &faults,
                &policy,
            ),
            "mpi_jm" => MpiJmScheduler::new(MpiJmConfig {
                lump_nodes: 16,
                block_nodes: 4,
                ..MpiJmConfig::default()
            })
            .run_with_faults(
                &mut Cluster::new(sierra(), &config),
                &workload,
                &faults,
                &policy,
            ),
            other => unreachable!("unknown scheduler {other}"),
        }
    };
    (reg, report)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}_timeline.txt"))
}

fn check_timeline(name: &str) {
    let (reg, report) = run_scheduler(name);
    let timeline = reg.events().render_timeline();

    // The event stream must agree with the report's own accounting.
    assert_eq!(
        reg.events().count_kind("task_end"),
        report.completed_tasks as u64,
        "one task_end per completed task"
    );
    assert_eq!(
        reg.events().count_kind("node_crash"),
        report.faults.node_crashes as u64,
        "one node_crash event per crash"
    );
    assert_eq!(
        reg.events().count_kind("task_abandoned"),
        report.faults.abandoned_tasks as u64
    );
    assert!(
        reg.events().count_kind("task_start") >= report.completed_tasks as u64,
        "every completion implies at least one start"
    );

    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &timeline).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDENS=1 to create it",
            path.display()
        )
    });
    if timeline != golden {
        let first_diff = timeline
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| timeline.lines().count().min(golden.lines().count()));
        panic!(
            "{name} timeline diverged from golden at line {} \
             (got {} lines, golden {}):\n  got:    {:?}\n  golden: {:?}\n\
             rerun with UPDATE_GOLDENS=1 if the change is intentional",
            first_diff + 1,
            timeline.lines().count(),
            golden.lines().count(),
            timeline.lines().nth(first_diff).unwrap_or("<eof>"),
            golden.lines().nth(first_diff).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn naive_timeline_matches_golden() {
    check_timeline("naive");
}

#[test]
fn metaq_timeline_matches_golden() {
    check_timeline("metaq");
}

#[test]
fn mpi_jm_timeline_matches_golden() {
    check_timeline("mpi_jm");
}
