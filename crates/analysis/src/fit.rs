//! Nonlinear least squares by Levenberg–Marquardt with a numerical
//! Jacobian, supporting correlated data through an inverse covariance.
//!
//! This is the fitter behind the Fig. 1 analysis: the grey FH points are fit
//! to `g_eff(t) = gA + b·e^{−ΔE·t}`, and the excited-state term is
//! subtracted to produce the black points and the blue band.

use crate::linalg;

/// Fit configuration.
#[derive(Clone, Debug)]
pub struct FitSettings {
    /// Maximum LM iterations.
    pub max_iter: usize,
    /// Convergence threshold on the relative χ² change.
    pub tol: f64,
    /// Initial LM damping.
    pub lambda0: f64,
}

impl Default for FitSettings {
    fn default() -> Self {
        Self {
            max_iter: 200,
            tol: 1e-12,
            lambda0: 1e-3,
        }
    }
}

/// Fit outcome.
#[derive(Clone, Debug)]
pub struct FitResult {
    /// Best-fit parameters.
    pub params: Vec<f64>,
    /// Parameter standard errors from the inverse curvature.
    pub errors: Vec<f64>,
    /// χ² at the minimum.
    pub chi2: f64,
    /// Degrees of freedom (points − parameters).
    pub dof: usize,
    /// Whether LM converged within the iteration budget.
    pub converged: bool,
}

impl FitResult {
    /// Reduced χ².
    pub fn chi2_per_dof(&self) -> f64 {
        if self.dof > 0 {
            self.chi2 / self.dof as f64
        } else {
            f64::NAN
        }
    }
}

/// Weighting of the residuals.
enum Weights<'a> {
    /// Independent errors σ_i.
    Diagonal(&'a [f64]),
    /// Full inverse covariance matrix.
    InverseCovariance(&'a [Vec<f64>]),
}

fn chi2_of(res: &[f64], w: &Weights) -> f64 {
    match w {
        Weights::Diagonal(sig) => res
            .iter()
            .zip(sig.iter())
            .map(|(r, s)| (r / s) * (r / s))
            .sum(),
        Weights::InverseCovariance(cinv) => {
            let mut acc = 0.0;
            for (i, ri) in res.iter().enumerate() {
                for (j, rj) in res.iter().enumerate() {
                    acc += ri * cinv[i][j] * rj;
                }
            }
            acc
        }
    }
}

/// Core LM driver shared by the public entry points.
fn lm_fit<F>(
    xs: &[f64],
    ys: &[f64],
    weights: Weights,
    model: F,
    p0: &[f64],
    settings: &FitSettings,
) -> FitResult
where
    F: Fn(f64, &[f64]) -> f64,
{
    let n = xs.len();
    let np = p0.len();
    assert_eq!(ys.len(), n);
    assert!(n >= np, "need at least as many points as parameters");

    let residuals =
        |p: &[f64]| -> Vec<f64> { xs.iter().zip(ys).map(|(&x, &y)| y - model(x, p)).collect() };

    let mut p = p0.to_vec();
    let mut res = residuals(&p);
    let mut chi2 = chi2_of(&res, &weights);
    let mut lambda = settings.lambda0;
    let mut converged = false;

    for _ in 0..settings.max_iter {
        // Numerical Jacobian J[i][k] = ∂model(x_i)/∂p_k.
        let mut jac = vec![vec![0.0; np]; n];
        for k in 0..np {
            let h = 1e-7 * p[k].abs().max(1e-7);
            let mut pp = p.clone();
            pp[k] += h;
            for (i, &x) in xs.iter().enumerate() {
                jac[i][k] = (model(x, &pp) - model(x, &p)) / h;
            }
        }

        // Normal equations with weighting: A = Jᵀ W J, g = Jᵀ W r.
        let wj: Vec<Vec<f64>> = match &weights {
            Weights::Diagonal(sig) => jac
                .iter()
                .zip(sig.iter())
                .map(|(row, s)| row.iter().map(|v| v / (s * s)).collect())
                .collect(),
            Weights::InverseCovariance(cinv) => (0..n)
                .map(|i| {
                    (0..np)
                        .map(|k| (0..n).map(|j| cinv[i][j] * jac[j][k]).sum())
                        .collect()
                })
                .collect(),
        };
        let mut a = vec![vec![0.0; np]; np];
        let mut g = vec![0.0; np];
        for i in 0..n {
            for k in 0..np {
                g[k] += wj[i][k] * res[i];
                for l in 0..np {
                    a[k][l] += jac[i][k] * wj[i][l];
                }
            }
        }

        // Damped step: (A + λ diag(A)) δ = g.
        let mut damped = a.clone();
        for (k, row) in damped.iter_mut().enumerate() {
            row[k] += lambda * a[k][k].max(1e-30);
        }
        let Some(delta) = linalg::solve(&damped, &g) else {
            lambda *= 10.0;
            continue;
        };

        let p_try: Vec<f64> = p.iter().zip(&delta).map(|(a, d)| a + d).collect();
        let res_try = residuals(&p_try);
        let chi2_try = chi2_of(&res_try, &weights);

        if chi2_try < chi2 {
            let rel = (chi2 - chi2_try) / chi2.max(1e-300);
            p = p_try;
            res = res_try;
            chi2 = chi2_try;
            lambda = (lambda * 0.3).max(1e-12);
            if rel < settings.tol {
                converged = true;
                break;
            }
        } else {
            lambda *= 10.0;
            if lambda > 1e12 {
                converged = true; // stuck at a (local) minimum
                break;
            }
        }
    }

    // Parameter errors from the unit-λ curvature.
    let mut a = vec![vec![0.0; np]; np];
    {
        let mut jac = vec![vec![0.0; np]; n];
        for k in 0..np {
            let h = 1e-7 * p[k].abs().max(1e-7);
            let mut pp = p.clone();
            pp[k] += h;
            for (i, &x) in xs.iter().enumerate() {
                jac[i][k] = (model(x, &pp) - model(x, &p)) / h;
            }
        }
        let wj: Vec<Vec<f64>> = match &weights {
            Weights::Diagonal(sig) => jac
                .iter()
                .zip(sig.iter())
                .map(|(row, s)| row.iter().map(|v| v / (s * s)).collect())
                .collect(),
            Weights::InverseCovariance(cinv) => (0..n)
                .map(|i| {
                    (0..np)
                        .map(|k| (0..n).map(|j| cinv[i][j] * jac[j][k]).sum())
                        .collect()
                })
                .collect(),
        };
        for i in 0..n {
            for k in 0..np {
                for l in 0..np {
                    a[k][l] += jac[i][k] * wj[i][l];
                }
            }
        }
    }
    let errors = match linalg::invert(&a) {
        Some(cov) => (0..np).map(|k| cov[k][k].max(0.0).sqrt()).collect(),
        None => vec![f64::NAN; np],
    };

    FitResult {
        params: p,
        errors,
        chi2,
        dof: n.saturating_sub(np),
        converged,
    }
}

/// Fit `model(x, params)` to `(xs, ys)` with independent errors `sigmas`.
pub fn curve_fit<F>(
    xs: &[f64],
    ys: &[f64],
    sigmas: &[f64],
    model: F,
    p0: &[f64],
    settings: &FitSettings,
) -> FitResult
where
    F: Fn(f64, &[f64]) -> f64,
{
    assert_eq!(sigmas.len(), xs.len());
    lm_fit(xs, ys, Weights::Diagonal(sigmas), model, p0, settings)
}

/// Fit with a full inverse data covariance (correlated χ²).
pub fn curve_fit_correlated<F>(
    xs: &[f64],
    ys: &[f64],
    inv_cov: &[Vec<f64>],
    model: F,
    p0: &[f64],
    settings: &FitSettings,
) -> FitResult
where
    F: Fn(f64, &[f64]) -> f64,
{
    assert_eq!(inv_cov.len(), xs.len());
    lm_fit(
        xs,
        ys,
        Weights::InverseCovariance(inv_cov),
        model,
        p0,
        settings,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn gauss(rng: &mut SmallRng) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(1e-300);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    #[test]
    fn recovers_exponential_parameters() {
        let mut rng = SmallRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let sigma = 0.01;
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 3.0 * (-0.35 * x).exp() + sigma * gauss(&mut rng))
            .collect();
        let sigmas = vec![sigma; 20];
        let fit = curve_fit(
            &xs,
            &ys,
            &sigmas,
            |x, p| p[0] * (-p[1] * x).exp(),
            &[1.0, 0.1],
            &FitSettings::default(),
        );
        assert!(fit.converged);
        assert!((fit.params[0] - 3.0).abs() < 5.0 * fit.errors[0] + 0.05);
        assert!((fit.params[1] - 0.35).abs() < 5.0 * fit.errors[1] + 0.01);
        assert!(fit.chi2_per_dof() < 3.0, "chi2/dof {}", fit.chi2_per_dof());
    }

    #[test]
    fn recovers_plateau_plus_excited_state() {
        // The Fig. 1 functional form.
        let mut rng = SmallRng::seed_from_u64(5);
        let xs: Vec<f64> = (1..15).map(|i| i as f64).collect();
        let (ga, b, de) = (1.271, -0.45, 0.35);
        let sigmas: Vec<f64> = xs.iter().map(|&x| 0.002 * (0.28 * x).exp()).collect();
        let ys: Vec<f64> = xs
            .iter()
            .zip(&sigmas)
            .map(|(&x, &s)| ga + b * (-de * x).exp() + s * gauss(&mut rng))
            .collect();
        let fit = curve_fit(
            &xs,
            &ys,
            &sigmas,
            |x, p| p[0] + p[1] * (-p[2] * x).exp(),
            &[1.0, -0.2, 0.5],
            &FitSettings::default(),
        );
        assert!(fit.converged);
        assert!(
            (fit.params[0] - ga).abs() < 4.0 * fit.errors[0].max(0.003),
            "gA {} ± {} vs {}",
            fit.params[0],
            fit.errors[0],
            ga
        );
    }

    #[test]
    fn linear_fit_matches_closed_form() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 + 0.5 * x).collect();
        let sigmas = vec![1.0; 10];
        let fit = curve_fit(
            &xs,
            &ys,
            &sigmas,
            |x, p| p[0] + p[1] * x,
            &[0.0, 0.0],
            &FitSettings::default(),
        );
        assert!((fit.params[0] - 2.0).abs() < 1e-8);
        assert!((fit.params[1] - 0.5).abs() < 1e-8);
        assert!(fit.chi2 < 1e-12);
    }

    #[test]
    fn correlated_fit_handles_covariance() {
        // Strongly correlated residuals: the correlated χ² of the true model
        // should stay O(n).
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 12;
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        // Build covariance C = D (0.7^{|i-j|}) D with D = 0.01.
        let mut cov = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                cov[i][j] = 1e-4 * 0.7f64.powi((i as i32 - j as i32).abs());
            }
        }
        let inv = crate::linalg::invert(&cov).expect("pd");
        // Correlated noise via AR(1).
        let mut eta = vec![0.0; n];
        let mut z = gauss(&mut rng);
        for e in eta.iter_mut() {
            z = 0.7 * z + (1.0f64 - 0.49).sqrt() * gauss(&mut rng);
            *e = 0.01 * z;
        }
        let ys: Vec<f64> = xs
            .iter()
            .zip(&eta)
            .map(|(&x, &e)| 1.5 - 0.1 * x + e)
            .collect();
        let fit = curve_fit_correlated(
            &xs,
            &ys,
            &inv,
            |x, p| p[0] + p[1] * x,
            &[0.0, 0.0],
            &FitSettings::default(),
        );
        assert!(fit.converged);
        assert!((fit.params[0] - 1.5).abs() < 0.05);
        assert!((fit.params[1] + 0.1).abs() < 0.01);
    }
}
