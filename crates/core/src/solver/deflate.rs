//! Low-mode deflation subsystem: a reusable subspace of Lanczos eigenpairs
//! applied to single and batched solves.
//!
//! A [`Deflation`] wraps the low modes of `D†D` computed by
//! [`lanczos`](super::lanczos) and turns them into initial guesses
//! (`x₀ = V Λ⁻¹ V† b`) and projectors (`P = V V†`). The guess removes most
//! of each source's slow low-mode content before CG ever iterates, which is
//! where the iteration-count savings of the `repro deflation` experiment
//! come from; combined with [`cg_block`](super::cg_block) the remaining
//! iterations also share gauge-link traffic across right-hand-sides.
//!
//! Column-wise guesses use the [`crate::block`] BLAS, so a deflated block
//! solve is bit-identical to deflating and solving each column
//! sequentially (`tests/deflation_properties.rs` and
//! `tests/block_solver.rs` enforce this).

use super::block::{cg_block, BlockOp};
use super::eig::{lanczos, EigenPair, LanczosParams};
use super::{CgParams, SolveStats};
use crate::blas;
use crate::block::{self, BlockSpinor};
use crate::complex::C64;
use crate::dirac::LinearOp;
use crate::spinor::Spinor;

/// A low-mode deflation subspace: eigenpairs of a Hermitian
/// positive-definite operator, used to precondition solves against it.
pub struct Deflation {
    pairs: Vec<EigenPair>,
}

impl Deflation {
    /// Wrap precomputed eigenpairs.
    pub fn new(pairs: Vec<EigenPair>) -> Self {
        Self { pairs }
    }

    /// Compute the subspace with restarted shift-invert Lanczos.
    pub fn compute<A: LinearOp<f64> + ?Sized>(op: &A, params: &LanczosParams) -> Self {
        Self::new(lanczos(op, params))
    }

    /// Number of deflation modes held.
    pub fn n_modes(&self) -> usize {
        self.pairs.len()
    }

    /// The underlying eigenpairs (ascending eigenvalue).
    pub fn pairs(&self) -> &[EigenPair] {
        &self.pairs
    }

    /// Low-mode initial guess `x = V Λ⁻¹ V† b` (overwrites `x`).
    pub fn guess(&self, x: &mut [Spinor<f64>], b: &[Spinor<f64>]) {
        guess_from(&self.pairs, x, b);
    }

    /// Column-wise [`Self::guess`]: `x[:,j] = V Λ⁻¹ V† b[:,j]`,
    /// bit-identical to the packed-column guess.
    pub fn guess_col(&self, x: &mut BlockSpinor<f64>, b: &BlockSpinor<f64>, j: usize) {
        block::zero_col(x, j);
        for m in &self.pairs {
            let c: C64 = block::dot_vec_col(&m.vector, b, j);
            block::caxpy_vec_col(c * C64::new(1.0 / m.value, 0.0), &m.vector, x, j);
        }
    }

    /// Orthogonal projector onto the subspace: `out = V V† inp`.
    pub fn apply_projector(&self, out: &mut [Spinor<f64>], inp: &[Spinor<f64>]) {
        blas::zero(out);
        for m in &self.pairs {
            let c: C64 = blas::dot(&m.vector, inp);
            blas::caxpy(c, &m.vector, out);
        }
    }

    /// Remove the subspace component in place: `r ← (1 − V V†) r`.
    pub fn project_out(&self, r: &mut [Spinor<f64>]) {
        for m in &self.pairs {
            let c: C64 = blas::dot(&m.vector, r);
            blas::caxpy(-c, &m.vector, r);
        }
    }
}

/// The guess on borrowed modes, shared with
/// [`deflated_cg`](super::deflated_cg).
pub(crate) fn guess_from(modes: &[EigenPair], x: &mut [Spinor<f64>], b: &[Spinor<f64>]) {
    blas::zero(x);
    for m in modes {
        let c: C64 = blas::dot(&m.vector, b);
        blas::caxpy(c * C64::new(1.0 / m.value, 0.0), &m.vector, x);
    }
}

/// Deflated batched CG: seed every column of `x` with the low-mode guess,
/// then run [`cg_block`]. Column `j` is bit-identical to
/// [`deflated_cg`](super::deflated_cg) on the packed column.
pub fn deflated_cg_block<A: BlockOp<f64> + ?Sized>(
    op: &mut A,
    defl: &Deflation,
    x: &mut BlockSpinor<f64>,
    b: &BlockSpinor<f64>,
    params: CgParams,
) -> Vec<SolveStats> {
    let reg = obs::Registry::current();
    reg.counter("solver.deflation.block_solves").inc();
    reg.counter("solver.deflation.rhs").add(b.nrhs() as u64);
    reg.counter("solver.deflation.modes")
        .add(defl.n_modes() as u64);
    for j in 0..b.nrhs() {
        defl.guess_col(x, b, j);
    }
    cg_block(op, x, b, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirac::{NormalOp, WilsonDirac};
    use crate::field::{FermionField, GaugeField};
    use crate::lattice::Lattice;
    use crate::solver::{deflated_cg, lanczos_lowest, ReliableBlock};

    #[test]
    fn block_deflated_solve_is_bit_identical_to_sequential() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 51);
        let d = WilsonDirac::new(&lat, &gauge, 0.05, true);
        let a = NormalOp::new(&d);
        let v = lat.volume();
        let defl = Deflation::new(lanczos_lowest(&a, 6, 70, 11));

        let nrhs = 2;
        let cols: Vec<Vec<Spinor<f64>>> = (0..nrhs)
            .map(|j| FermionField::<f64>::gaussian(v, 21 + j as u64).data)
            .collect();
        let bb = BlockSpinor::from_columns(&cols);
        let mut xb = BlockSpinor::zeros(v, nrhs);
        let mut rb = ReliableBlock::new(&a);
        let params = CgParams::default();
        let stats = deflated_cg_block(&mut rb, &defl, &mut xb, &bb, params);

        for (j, c) in cols.iter().enumerate() {
            let mut xs = vec![Spinor::zero(); v];
            let seq = deflated_cg(&a, defl.pairs(), &mut xs, c, params);
            assert_eq!(stats[j], seq, "stats of column {j}");
            assert_eq!(xb.col(j), xs, "solution of column {j}");
            assert!(seq.converged);
        }
    }
}
