//! Offline typecheck stub mirroring the subset of the `rayon 1.x` API this
//! workspace uses. Everything runs sequentially; the point is that the
//! *types* line up with rayon's (identity-closure `fold`/`reduce`,
//! `flat_map_iter`, `find_map_first`, ...), so `cargo check` against this
//! stub validates the same source that compiles against real rayon.

pub mod iter {
    /// Sequential stand-in for rayon's parallel iterator. A wrapper type
    /// (rather than a re-used `std` iterator) so that rayon-signature
    /// inherent methods like `fold(|| init, f)` win method resolution.
    pub struct ParIter<I>(pub(crate) I);

    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn into_par_iter(self) -> ParIter<Self::Iter>;
    }

    impl<T: IntoIterator> IntoParallelIterator for T {
        type Iter = T::IntoIter;
        type Item = T::Item;
        fn into_par_iter(self) -> ParIter<T::IntoIter> {
            ParIter(self.into_iter())
        }
    }

    impl<I: Iterator> ParIter<I> {
        pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
            ParIter(self.0.map(f))
        }
        pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
            ParIter(self.0.filter(f))
        }
        pub fn filter_map<U, F: FnMut(I::Item) -> Option<U>>(
            self,
            f: F,
        ) -> ParIter<std::iter::FilterMap<I, F>> {
            ParIter(self.0.filter_map(f))
        }
        pub fn flat_map_iter<U: IntoIterator, F: FnMut(I::Item) -> U>(
            self,
            f: F,
        ) -> ParIter<std::iter::FlatMap<I, U, F>> {
            ParIter(self.0.flat_map(f))
        }
        pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
            ParIter(self.0.enumerate())
        }
        pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
            ParIter(self.0.zip(other.0))
        }
        pub fn chain<J: Iterator<Item = I::Item>>(
            self,
            other: ParIter<J>,
        ) -> ParIter<std::iter::Chain<I, J>> {
            ParIter(self.0.chain(other.0))
        }
        pub fn cloned<'a, T: 'a + Clone>(self) -> ParIter<std::iter::Cloned<I>>
        where
            I: Iterator<Item = &'a T>,
        {
            ParIter(self.0.cloned())
        }
        pub fn copied<'a, T: 'a + Copy>(self) -> ParIter<std::iter::Copied<I>>
        where
            I: Iterator<Item = &'a T>,
        {
            ParIter(self.0.copied())
        }
        pub fn with_min_len(self, _min: usize) -> Self {
            self
        }
        pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
            self.0.for_each(f)
        }
        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }
        pub fn count(self) -> usize {
            self.0.count()
        }
        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }
        pub fn min(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.min()
        }
        pub fn max(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.max()
        }
        pub fn any<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
            let mut it = self.0;
            it.any(f)
        }
        pub fn all<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
            let mut it = self.0;
            it.all(f)
        }
        /// rayon-signature `reduce`: identity closure + associative op.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: FnMut(I::Item, I::Item) -> I::Item,
        {
            self.0.fold(identity(), op)
        }
        /// rayon-signature `fold`: produces a (single-element) iterator of
        /// partial accumulators, to be combined with `reduce`.
        pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
        where
            ID: Fn() -> T,
            F: FnMut(T, I::Item) -> T,
        {
            ParIter(std::iter::once(self.0.fold(identity(), fold_op)))
        }
        pub fn find_map_first<U, F: FnMut(I::Item) -> Option<U>>(self, f: F) -> Option<U> {
            let mut it = self.0;
            it.find_map(f)
        }
        pub fn find_first<F: FnMut(&I::Item) -> bool>(self, f: F) -> Option<I::Item> {
            let mut it = self.0;
            it.find(f)
        }
        pub fn position_first<F: FnMut(I::Item) -> bool>(self, f: F) -> Option<usize> {
            let mut it = self.0;
            it.position(f)
        }
    }

    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
        fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
        fn par_chunks_exact(&self, size: usize) -> ParIter<std::slice::ChunksExact<'_, T>>;
        fn par_windows(&self, size: usize) -> ParIter<std::slice::Windows<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
            ParIter(self.iter())
        }
        fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
            ParIter(self.chunks(size))
        }
        fn par_chunks_exact(&self, size: usize) -> ParIter<std::slice::ChunksExact<'_, T>> {
            ParIter(self.chunks_exact(size))
        }
        fn par_windows(&self, size: usize) -> ParIter<std::slice::Windows<'_, T>> {
            ParIter(self.windows(size))
        }
    }

    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
        fn par_chunks_exact_mut(
            &mut self,
            size: usize,
        ) -> ParIter<std::slice::ChunksExactMut<'_, T>>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
            ParIter(self.iter_mut())
        }
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
            ParIter(self.chunks_mut(size))
        }
        fn par_chunks_exact_mut(
            &mut self,
            size: usize,
        ) -> ParIter<std::slice::ChunksExactMut<'_, T>> {
            ParIter(self.chunks_exact_mut(size))
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

/// Iterator adapters above run on the calling thread, so this is 1. The
/// bit-stable numeric results that implies are relied on by the
/// observability goldens (see vendor/README.md).
pub fn current_num_threads() -> usize {
    1
}

/// Structured task scope backed by real OS threads (`std::thread::scope`),
/// so tests exercising concurrent data structures get genuine parallelism
/// even though the iterator adapters are sequential.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Run both closures and return both results; `b` runs on its own thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join: task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_spawns_really_run() {
        let n = AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    n.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(n.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = crate::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }
}
