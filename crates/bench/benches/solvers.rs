//! Solver comparison: pure-double CGNE vs double/single and double/half
//! mixed-precision with reliable updates — the ablation behind the paper's
//! "double-half CG is the optimum approach" statement.

use criterion::{criterion_group, criterion_main, Criterion};
use lqcd_core::dirac::NormalOp;
use lqcd_core::prelude::*;

fn bench_precision_strategies(c: &mut Criterion) {
    let lat = Lattice::new([4, 4, 4, 8]);
    let gauge64 = GaugeField::<f64>::hot(&lat, 11);
    let gauge32 = gauge64.cast::<f32>();
    let half = HalfGaugeField::from_gauge(&gauge64);
    let b = FermionField::<f64>::gaussian(lat.volume(), 1).data;
    let params = CgParams {
        tol: 1e-10,
        max_iter: 20_000,
    };

    let mut group = c.benchmark_group("wilson_solve");
    group.sample_size(10);

    group.bench_function("cgne_double", |bch| {
        let d = WilsonDirac::new(&lat, &gauge64, 0.3, true);
        bch.iter(|| {
            let mut x = vec![Spinor::zero(); lat.volume()];
            let s = cgne(&d, &mut x, &b, params);
            assert!(s.converged);
            s.iterations
        })
    });

    group.bench_function("bicgstab_double", |bch| {
        let d = WilsonDirac::new(&lat, &gauge64, 0.3, true);
        bch.iter(|| {
            let mut x = vec![Spinor::zero(); lat.volume()];
            let s = bicgstab(&d, &mut x, &b, params);
            assert!(s.converged);
            s.iterations
        })
    });

    group.bench_function("mixed_double_single", |bch| {
        let d64 = WilsonDirac::new(&lat, &gauge64, 0.3, true);
        let d32 = WilsonDirac::new(&lat, &gauge32, 0.3, true);
        let n64 = NormalOp::new(&d64);
        let n32 = NormalOp::new(&d32);
        bch.iter(|| {
            let mut x = vec![Spinor::zero(); lat.volume()];
            let s = mixed_cg(
                &n64,
                &n32,
                &mut x,
                &b,
                MixedParams {
                    outer: params,
                    ..MixedParams::default()
                },
            );
            assert!(s.converged);
            s.iterations
        })
    });

    group.bench_function("mixed_double_half", |bch| {
        let d64 = WilsonDirac::new(&lat, &gauge64, 0.3, true);
        let dh = WilsonDirac::new(&lat, &half, 0.3, true);
        let n64 = NormalOp::new(&d64);
        let nh = NormalOp::new(&dh);
        bch.iter(|| {
            let mut x = vec![Spinor::zero(); lat.volume()];
            let s = mixed_cg(
                &n64,
                &nh,
                &mut x,
                &b,
                MixedParams {
                    outer: params,
                    ..MixedParams::default()
                },
            );
            assert!(s.converged);
            s.iterations
        })
    });
    group.finish();
}

fn bench_mobius_prec_vs_full(c: &mut Criterion) {
    let lat = Lattice::new([4, 4, 4, 8]);
    let gauge = GaugeField::<f64>::hot(&lat, 13);
    let params = MobiusParams::standard(4, 0.2);
    let cgp = CgParams {
        tol: 1e-9,
        max_iter: 20_000,
    };

    let mut group = c.benchmark_group("mobius_solve");
    group.sample_size(10);

    group.bench_function("full_cgne", |bch| {
        let d = MobiusDirac::new(&lat, &gauge, params);
        let b = FermionField::<f64>::gaussian(d.vec_len(), 2).data;
        bch.iter(|| {
            let mut x = vec![Spinor::zero(); d.vec_len()];
            let s = cgne(&d, &mut x, &b, cgp);
            assert!(s.converged);
            s.iterations
        })
    });

    group.bench_function("red_black_cgne", |bch| {
        let full = MobiusDirac::new(&lat, &gauge, params);
        let prec = PrecMobius::new(&lat, &gauge, params);
        let b = FermionField::<f64>::gaussian(full.vec_len(), 2).data;
        bch.iter(|| {
            let (b_e, b_o) = prec.split(&b);
            let rhs = prec.prepare_source(&b_e, &b_o);
            let mut x_o = vec![Spinor::zero(); prec.vec_len()];
            let s = cgne(&prec, &mut x_o, &rhs, cgp);
            assert!(s.converged);
            let _x_e = prec.reconstruct_even(&b_e, &x_o);
            s.iterations
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_precision_strategies,
    bench_mobius_prec_vs_full
);
criterion_main!(benches);
