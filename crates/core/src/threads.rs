//! Thread-pool ↔ observability glue.
//!
//! `vendor/rayon` cannot depend on `obs` (the vendor layer sits below it),
//! so the pool exports raw counters via [`rayon::pool_stats`] and this
//! module publishes them into the current [`obs::Registry`]. Publishing is
//! explicit — never triggered from inside a kernel — because the pool
//! numbers (width, busy time, steal counts) legitimately vary with
//! `RAYON_NUM_THREADS`, while the registries captured by the committed
//! goldens must stay bit-identical at any width.

use obs::Registry;
use std::sync::atomic::{AtomicU64, Ordering};

/// Record the pool width in the current registry (`pool.threads`), as seen
/// at init time. Call once after the pool is configured.
pub fn init_pool_metrics() {
    Registry::current()
        .gauge("pool.threads")
        .set(rayon::current_num_threads() as f64);
}

// Counter snapshots already published, so repeated `publish_pool_stats`
// calls add only the delta (obs counters are monotonic).
static PUBLISHED_JOBS: AtomicU64 = AtomicU64::new(0);
static PUBLISHED_SEQ_JOBS: AtomicU64 = AtomicU64::new(0);
static PUBLISHED_CHUNKS: AtomicU64 = AtomicU64::new(0);
static PUBLISHED_STOLEN: AtomicU64 = AtomicU64::new(0);

fn add_delta(reg: &Registry, name: &str, total: u64, published: &AtomicU64) {
    let prev = published.swap(total, Ordering::Relaxed);
    reg.counter(name).add(total.saturating_sub(prev));
}

/// Publish a cumulative snapshot of pool activity into the current
/// registry: `pool.threads` / `pool.workers_spawned` gauges, `pool.jobs` /
/// `pool.jobs_sequential` / `pool.chunks` / `pool.chunks_stolen` counters,
/// and a `pool.worker_busy_seconds` histogram with one sample per worker
/// (plus the submitting threads' total as `pool.caller_busy_seconds`).
pub fn publish_pool_stats() {
    let s = rayon::pool_stats();
    let reg = Registry::current();
    reg.gauge("pool.threads").set(s.threads as f64);
    reg.gauge("pool.workers_spawned")
        .set(s.workers_spawned as f64);
    add_delta(&reg, "pool.jobs", s.jobs, &PUBLISHED_JOBS);
    add_delta(
        &reg,
        "pool.jobs_sequential",
        s.sequential_jobs,
        &PUBLISHED_SEQ_JOBS,
    );
    add_delta(&reg, "pool.chunks", s.chunks, &PUBLISHED_CHUNKS);
    add_delta(
        &reg,
        "pool.chunks_stolen",
        s.stolen_chunks,
        &PUBLISHED_STOLEN,
    );
    reg.gauge("pool.caller_busy_seconds")
        .set(s.caller_busy_ns as f64 * 1e-9);
    // Decade buckets from 1 µs to 10 s of cumulative busy time.
    const BUSY_BOUNDS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];
    let hist = reg.histogram("pool.worker_busy_seconds", &BUSY_BOUNDS);
    for ns in &s.worker_busy_ns {
        hist.record(*ns as f64 * 1e-9);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_metrics_publish_into_scoped_registry() {
        let reg = Registry::new();
        let _scope = reg.install_scoped();
        init_pool_metrics();
        assert!(reg.gauge("pool.threads").get() >= 1.0);

        // Drive some parallel work, then publish and check the counters
        // moved (every kernel call lands in either jobs or sequential_jobs).
        let x = crate::field::FermionField::<f64>::gaussian(8192, 1).data;
        let _ = crate::blas::norm_sqr(&x);
        publish_pool_stats();
        let activity = reg.counter("pool.jobs").get() + reg.counter("pool.jobs_sequential").get();
        assert!(activity > 0, "pool activity must be visible");
        assert!(reg.counter("pool.chunks").get() > 0);
    }
}
