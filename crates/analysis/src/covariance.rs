//! Data covariance estimation for correlated fits.
//!
//! Correlator points at neighboring times are strongly correlated; a
//! correlated χ² needs the inverse covariance, but the sample covariance of
//! `N` configurations is noisy (and singular for fewer configurations than
//! time slices). Linear shrinkage toward the diagonal (Ledoit–Wolf style)
//! keeps the inverse well conditioned — standard practice in lattice
//! analyses.

use crate::linalg;

/// Sample covariance of `samples[config][component]`, normalized by `N−1`.
pub fn sample_covariance(samples: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = samples.len();
    assert!(n >= 2, "covariance needs at least 2 samples");
    let m = samples[0].len();
    let mean: Vec<f64> = (0..m)
        .map(|k| samples.iter().map(|s| s[k]).sum::<f64>() / n as f64)
        .collect();
    let mut cov = vec![vec![0.0; m]; m];
    for s in samples {
        assert_eq!(s.len(), m);
        for i in 0..m {
            let di = s[i] - mean[i];
            for j in 0..m {
                cov[i][j] += di * (s[j] - mean[j]);
            }
        }
    }
    for row in cov.iter_mut() {
        for v in row.iter_mut() {
            *v /= (n - 1) as f64;
        }
    }
    cov
}

/// Shrink a covariance toward its diagonal:
/// `C' = (1−λ) C + λ diag(C)`.
pub fn shrink(cov: &[Vec<f64>], lambda: f64) -> Vec<Vec<f64>> {
    assert!((0.0..=1.0).contains(&lambda));
    let m = cov.len();
    let mut out = vec![vec![0.0; m]; m];
    for i in 0..m {
        for j in 0..m {
            out[i][j] = if i == j {
                cov[i][j]
            } else {
                (1.0 - lambda) * cov[i][j]
            };
        }
    }
    out
}

/// Covariance of the *mean* (sample covariance / N), shrunk and inverted —
/// the matrix a correlated fit of ensemble-averaged data wants.
/// Returns `None` if even the shrunk matrix is singular.
pub fn inverse_mean_covariance(samples: &[Vec<f64>], lambda: f64) -> Option<Vec<Vec<f64>>> {
    let n = samples.len() as f64;
    let mut cov = shrink(&sample_covariance(samples), lambda);
    for row in cov.iter_mut() {
        for v in row.iter_mut() {
            *v /= n;
        }
    }
    linalg::invert(&cov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn gauss(rng: &mut SmallRng) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(1e-300);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn correlated_samples(n: usize, m: usize, rho: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut z = gauss(&mut rng);
                (0..m)
                    .map(|_| {
                        z = rho * z + (1.0 - rho * rho).sqrt() * gauss(&mut rng);
                        z
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn diagonal_matches_componentwise_variance() {
        let samples = correlated_samples(2000, 4, 0.6, 3);
        let cov = sample_covariance(&samples);
        for k in 0..4 {
            assert!((cov[k][k] - 1.0).abs() < 0.15, "var[{k}] = {}", cov[k][k]);
        }
        // AR(1): adjacent correlation ≈ ρ.
        assert!((cov[0][1] - 0.6).abs() < 0.1);
    }

    #[test]
    fn covariance_is_symmetric_positive_diagonal() {
        let samples = correlated_samples(100, 6, 0.5, 5);
        let cov = sample_covariance(&samples);
        for i in 0..6 {
            assert!(cov[i][i] > 0.0);
            for j in 0..6 {
                assert!((cov[i][j] - cov[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shrinkage_rescues_singular_covariance() {
        // Fewer samples than components: raw covariance is singular.
        let samples = correlated_samples(5, 10, 0.7, 7);
        let raw = sample_covariance(&samples);
        assert!(linalg::invert(&raw).is_none(), "rank-deficient");
        let inv = inverse_mean_covariance(&samples, 0.5).expect("shrunk is invertible");
        assert_eq!(inv.len(), 10);
    }

    #[test]
    fn full_shrinkage_gives_diagonal_weights() {
        let samples = correlated_samples(200, 3, 0.8, 9);
        let inv = inverse_mean_covariance(&samples, 1.0).expect("diagonal");
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert!(inv[i][j].abs() < 1e-10, "off-diagonal survived");
                }
            }
        }
    }

    #[test]
    fn correlated_fit_with_estimated_covariance_recovers_truth() {
        // End-to-end: estimate covariance from samples, fit the mean.
        let mut rng = SmallRng::seed_from_u64(11);
        let m = 8;
        let n = 400;
        let xs: Vec<f64> = (0..m).map(|i| i as f64).collect();
        let truth: Vec<f64> = xs.iter().map(|&x| 2.0 - 0.25 * x).collect();
        let samples: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let mut z = gauss(&mut rng);
                truth
                    .iter()
                    .map(|&t| {
                        z = 0.7 * z + (1.0f64 - 0.49).sqrt() * gauss(&mut rng);
                        t + 0.05 * z
                    })
                    .collect()
            })
            .collect();
        let mean: Vec<f64> = (0..m)
            .map(|k| samples.iter().map(|s| s[k]).sum::<f64>() / n as f64)
            .collect();
        let inv = inverse_mean_covariance(&samples, 0.1).expect("invertible");
        let fit = crate::fit::curve_fit_correlated(
            &xs,
            &mean,
            &inv,
            |x, p| p[0] + p[1] * x,
            &[0.0, 0.0],
            &crate::fit::FitSettings::default(),
        );
        assert!(fit.converged);
        assert!((fit.params[0] - 2.0).abs() < 0.02);
        assert!((fit.params[1] + 0.25).abs() < 0.005);
        assert!(fit.chi2_per_dof() < 3.0);
    }
}
