use crate::{ParamSpace, TuneKey, TuneParam};
use obs::Clock;

/// How a candidate is timed during the sweep.
///
/// Real kernels are wall-clock timed ([`TimingHarness::WallClock`]); model-based
/// tunables (the communication-policy model, unit tests) report a
/// deterministic cost instead, so sweeps are reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimingHarness {
    /// Time `Tunable::run` with the tuner's [`Clock`] around `reps` repetitions.
    WallClock {
        /// Repetitions per candidate; best (minimum) time is kept, matching
        /// QUDA's policy of ignoring warm-up noise.
        reps: u32,
    },
    /// Trust the value returned by `Tunable::modeled_cost`.
    Modeled,
}

/// A computation whose launch parameters can be autotuned.
///
/// Mirrors QUDA's `Tunable` class: the object names itself via a [`TuneKey`],
/// enumerates its candidate parameter space, and can execute (or cost-model)
/// itself under a specific candidate. Data-destructive kernels must implement
/// `backup`/`restore` so the sweep leaves state untouched — QUDA manages this
/// with the same pair of hooks.
pub trait Tunable {
    /// Unique identity of this computation instance.
    fn key(&self) -> TuneKey;

    /// Candidate launch parameters to sweep.
    fn param_space(&self) -> ParamSpace;

    /// Execute once under `param`. Used both during the sweep (wall-clock
    /// harness) and for the real launch afterwards.
    fn run(&mut self, param: TuneParam);

    /// Deterministic cost in seconds under `param`, for `TimingHarness::Modeled`.
    ///
    /// The default panics: wall-clock tunables never call it.
    fn modeled_cost(&self, _param: TuneParam) -> f64 {
        unimplemented!("modeled_cost not provided for this tunable")
    }

    /// Which harness to time candidates with.
    fn harness(&self) -> TimingHarness {
        TimingHarness::WallClock { reps: 3 }
    }

    /// Snapshot state before a data-destructive sweep.
    fn backup(&mut self) {}

    /// Restore the snapshot taken by `backup`.
    fn restore(&mut self) {}

    /// Useful work per invocation, in floating-point operations, used to
    /// record a GFLOP/s figure in the cache metadata. Zero if not meaningful.
    fn flops(&self) -> f64 {
        0.0
    }
}

/// Time one candidate under the given harness, returning seconds.
///
/// Wall-clock timing reads the injected [`Clock`], not `Instant::now()`
/// directly, so tests can drive sweeps with `obs::ManualClock` and the
/// timing path stays deterministic under test.
pub(crate) fn time_candidate<T: Tunable + ?Sized>(
    tunable: &mut T,
    param: TuneParam,
    clock: &dyn Clock,
) -> f64 {
    match tunable.harness() {
        TimingHarness::WallClock { reps } => {
            let reps = reps.max(1);
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = clock.now();
                tunable.run(param);
                let dt = clock.now() - t0;
                if dt < best {
                    best = dt;
                }
            }
            best
        }
        TimingHarness::Modeled => tunable.modeled_cost(param),
    }
}
