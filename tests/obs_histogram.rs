//! Property tests for the observability histogram: merge associativity,
//! quantile monotonicity, and lossless concurrent recording — the three
//! invariants the metric-assertion harness leans on.

use obs::Histogram;
use proptest::prelude::*;

const BOUNDS: [f64; 6] = [0.1, 1.0, 10.0, 100.0, 1000.0, 10_000.0];

fn filled(samples: &[f64]) -> Histogram {
    let h = Histogram::new(&BOUNDS);
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    /// (a ∪ b) ∪ c and a ∪ (b ∪ c) agree: bucket counts, totals, and
    /// extremes exactly; the floating-point sum to rounding.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(-1e5f64..1e5, 0..64),
        b in proptest::collection::vec(-1e5f64..1e5, 0..64),
        c in proptest::collection::vec(-1e5f64..1e5, 0..64),
    ) {
        let left = filled(&a);
        left.merge(&filled(&b));
        left.merge(&filled(&c));

        let bc = filled(&b);
        bc.merge(&filled(&c));
        let right = filled(&a);
        right.merge(&bc);

        let (l, r) = (left.snapshot(), right.snapshot());
        prop_assert_eq!(&l.buckets, &r.buckets);
        prop_assert_eq!(l.count, r.count);
        prop_assert_eq!(l.count as usize, a.len() + b.len() + c.len());
        if l.count > 0 {
            prop_assert_eq!(l.min, r.min);
            prop_assert_eq!(l.max, r.max);
        }
        let scale = 1.0f64.max(l.sum.abs());
        prop_assert!(
            (l.sum - r.sum).abs() <= 1e-9 * scale,
            "sums differ beyond rounding: {} vs {}",
            l.sum,
            r.sum
        );
    }

    /// Quantiles never decrease in q, and are bracketed by min and max.
    #[test]
    fn quantile_is_monotone_in_q(
        samples in proptest::collection::vec(-1e5f64..1e5, 1..128),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..16),
    ) {
        let h = filled(&samples);
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let values: Vec<f64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in values.windows(2) {
            prop_assert!(
                w[0] <= w[1],
                "quantile not monotone: {} then {} for sorted qs",
                w[0],
                w[1]
            );
        }
        let s = h.snapshot();
        for &v in &values {
            prop_assert!(s.min <= v && v <= s.max, "quantile {v} outside [{}, {}]", s.min, s.max);
        }
    }

    /// Concurrent recorders lose no samples: total count and per-bucket
    /// counts equal the sequential reference.
    #[test]
    fn concurrent_recording_loses_no_samples(
        samples in proptest::collection::vec(-1e5f64..1e5, 4..256),
    ) {
        let shared = Histogram::new(&BOUNDS);
        let chunk = samples.len().div_ceil(4);
        rayon::scope(|s| {
            for part in samples.chunks(chunk) {
                let h = &shared;
                s.spawn(move |_| {
                    for &v in part {
                        h.record(v);
                    }
                });
            }
        });
        let reference = filled(&samples).snapshot();
        let got = shared.snapshot();
        prop_assert_eq!(got.count as usize, samples.len());
        prop_assert_eq!(&got.buckets, &reference.buckets);
        prop_assert_eq!(got.min, reference.min);
        prop_assert_eq!(got.max, reference.max);
        prop_assert_eq!(
            got.buckets.iter().sum::<u64>(),
            got.count,
            "bucket totals must equal the sample count"
        );
    }
}
