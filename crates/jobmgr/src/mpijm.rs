//! `mpi_jm`: a library-level job manager with tight hardware binding.
//!
//! The design points implemented from §V of the paper:
//!
//! - The allocation is organized into **lumps** (e.g. 32–128 nodes), each
//!   started by its own `mpirun`; lumps that fail to start (bad node,
//!   filesystem trouble) are simply ignored, so one sick node costs a lump,
//!   not the job — the reason "relatively small lump sizes" are used on new
//!   systems.
//! - Lumps are subdivided into **blocks** whose size is a multiple of the
//!   largest job; jobs never straddle a block boundary, so allocations stay
//!   contiguous and "block boundaries prevent fragmentation and keep high
//!   bandwidth communications local".
//! - Jobs start via `MPI_Comm_spawn_multiple` inside their block — cheap and
//!   parallel across blocks, unlike METAQ's serialized `mpirun`s.
//! - **CPU/GPU co-scheduling**: CPU-only contractions overlay nodes whose
//!   GPUs run propagators, making their cost "effectively free".

use crate::cluster::Cluster;
use crate::report::{SimReport, TaskRecord};
use crate::task::{TaskKind, Workload};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total-order wrapper for event times.
#[derive(PartialEq)]
struct Ord64(f64);
impl Eq for Ord64 {}
impl PartialOrd for Ord64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ord64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// `mpi_jm` configuration.
#[derive(Clone, Copy, Debug)]
pub struct MpiJmConfig {
    /// Nodes per lump (one `mpirun` each).
    pub lump_nodes: usize,
    /// Nodes per block (must divide the lump and be ≥ the largest job).
    pub block_nodes: usize,
    /// `MPI_Comm_spawn_multiple` cost per job start, seconds (parallel
    /// across blocks).
    pub spawn_seconds: f64,
    /// Overlay CPU-only tasks on GPU-busy nodes.
    pub co_schedule: bool,
    /// Solve-rate multiplier of the MPI stack (e.g. untuned MVAPICH2 < 1).
    pub mpi_efficiency: f64,
}

impl Default for MpiJmConfig {
    fn default() -> Self {
        Self {
            lump_nodes: 32,
            block_nodes: 4,
            spawn_seconds: 0.5,
            co_schedule: true,
            mpi_efficiency: 1.0,
        }
    }
}

/// One block's bookkeeping: a contiguous node range inside a healthy lump.
#[derive(Clone, Debug)]
struct Block {
    nodes: Vec<usize>,
    /// Free whole-node slots (vector of node indices not in use by GPU jobs).
    free: Vec<usize>,
}

/// The `mpi_jm` scheduler.
pub struct MpiJmScheduler {
    config: MpiJmConfig,
}

impl MpiJmScheduler {
    /// Build with a config.
    pub fn new(config: MpiJmConfig) -> Self {
        assert!(config.lump_nodes.is_multiple_of(config.block_nodes), "blocks tile lumps");
        Self { config }
    }

    /// Number of healthy lumps and the blocks they contribute.
    fn build_blocks(&self, cluster: &Cluster) -> (usize, usize, Vec<Block>) {
        let ln = self.config.lump_nodes;
        let mut blocks = Vec::new();
        let mut lumps_total = 0;
        let mut lumps_failed = 0;
        let mut start = 0;
        while start + ln <= cluster.nodes.len() {
            lumps_total += 1;
            let lump: Vec<usize> = (start..start + ln).collect();
            let healthy = lump.iter().all(|&i| !cluster.nodes[i].failed);
            if healthy {
                for chunk in lump.chunks(self.config.block_nodes) {
                    blocks.push(Block {
                        nodes: chunk.to_vec(),
                        free: chunk.to_vec(),
                    });
                }
            } else {
                lumps_failed += 1;
            }
            start += ln;
        }
        (lumps_total, lumps_failed, blocks)
    }

    /// Run `workload` on `cluster`.
    ///
    /// # Panics
    /// If any GPU task needs more nodes than a block holds (jobs must not
    /// straddle blocks) or the workload cannot fit at all.
    pub fn run(&self, cluster: &mut Cluster, workload: &Workload) -> SimReport {
        let n = workload.len();
        let (_lumps, lumps_failed, mut blocks) = self.build_blocks(cluster);
        assert!(
            !blocks.is_empty(),
            "no healthy lumps: {lumps_failed} lumps failed"
        );
        for t in &workload.tasks {
            if let TaskKind::PropagatorSolve { nodes } = t.kind {
                assert!(
                    nodes <= self.config.block_nodes,
                    "job of {nodes} nodes exceeds block size {}",
                    self.config.block_nodes
                );
            }
        }

        let mut dep_count: Vec<usize> = workload.tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for t in &workload.tasks {
            for &d in &t.deps {
                dependents[d].push(t.id);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| dep_count[i] == 0).collect();
        let mut records: Vec<Option<TaskRecord>> = vec![None; n];
        let mut running: BinaryHeap<Reverse<(Ord64, usize)>> = BinaryHeap::new();
        let mut allocations: Vec<Vec<usize>> = vec![Vec::new(); n];
        // Which nodes a CPU task pinned (co-scheduled).
        let mut cpu_pins: Vec<Option<usize>> = vec![None; n];
        let mut time = 0.0f64;
        let mut busy_node_seconds = 0.0;
        let mut done_count = 0usize;

        // CPU availability per node (contractions pin one node's CPUs).
        let mut cpu_free: Vec<bool> = cluster.nodes.iter().map(|_| true).collect();

        while done_count < n {
            let mut started_any = true;
            while started_any {
                started_any = false;
                let mut next_ready = Vec::new();
                for &id in &ready {
                    let t = &workload.tasks[id];
                    match t.kind {
                        TaskKind::PropagatorSolve { nodes } => {
                            // Find a block with `nodes` free slots.
                            let slot = blocks
                                .iter_mut()
                                .find(|b| b.free.len() >= nodes);
                            if let Some(block) = slot {
                                let alloc: Vec<usize> =
                                    block.free.drain(..nodes).collect();
                                let speed = cluster.group_speed(&alloc)
                                    * self.config.mpi_efficiency;
                                let start = time + self.config.spawn_seconds;
                                let end = start + t.base_seconds / speed;
                                busy_node_seconds += (end - start) * nodes as f64;
                                records[id] = Some(TaskRecord {
                                    id,
                                    start,
                                    end,
                                    nodes: alloc.clone(),
                                    speed,
                                });
                                allocations[id] = alloc;
                                running.push(Reverse((Ord64(end), id)));
                                started_any = true;
                            } else {
                                next_ready.push(id);
                            }
                        }
                        TaskKind::Contraction => {
                            // Co-schedule onto any node with free CPUs; the
                            // GPUs there may be busy with propagators.
                            let host = if self.config.co_schedule {
                                cpu_free.iter().position(|&f| f)
                            } else {
                                // Without co-scheduling a contraction needs a
                                // whole free node inside some block.
                                blocks
                                    .iter()
                                    .flat_map(|b| b.free.iter())
                                    .find(|&&i| cpu_free[i])
                                    .copied()
                            };
                            if let Some(host) = host {
                                cpu_free[host] = false;
                                let speed = cluster.nodes[host].speed;
                                let start = time + self.config.spawn_seconds;
                                let end = start + t.base_seconds / speed;
                                if !self.config.co_schedule {
                                    // Occupies the node exclusively.
                                    for b in blocks.iter_mut() {
                                        b.free.retain(|&x| x != host);
                                    }
                                    allocations[id] = vec![host];
                                }
                                cpu_pins[id] = Some(host);
                                records[id] = Some(TaskRecord {
                                    id,
                                    start,
                                    end,
                                    nodes: vec![host],
                                    speed,
                                });
                                running.push(Reverse((Ord64(end), id)));
                                started_any = true;
                            } else {
                                next_ready.push(id);
                            }
                        }
                        TaskKind::Io => {
                            let end = time + t.base_seconds;
                            records[id] = Some(TaskRecord {
                                id,
                                start: time,
                                end,
                                nodes: Vec::new(),
                                speed: 1.0,
                            });
                            running.push(Reverse((Ord64(end), id)));
                            started_any = true;
                        }
                    }
                }
                ready = next_ready;
            }

            let Reverse((Ord64(end), id)) = running
                .pop()
                .expect("tasks pending but nothing running: workload too big for blocks");
            time = end;
            // Return GPU nodes to their block.
            if !allocations[id].is_empty() {
                for b in blocks.iter_mut() {
                    if allocations[id].iter().all(|i| b.nodes.contains(i)) {
                        b.free.extend(allocations[id].iter().copied());
                        b.free.sort_unstable();
                        break;
                    }
                }
            }
            if let Some(host) = cpu_pins[id] {
                cpu_free[host] = true;
            }
            done_count += 1;
            for &dep in &dependents[id] {
                dep_count[dep] -= 1;
                if dep_count[dep] == 0 {
                    ready.push(dep);
                }
            }
        }

        let avail_nodes = blocks.iter().map(|b| b.nodes.len()).sum::<usize>() as f64;
        SimReport {
            makespan: time,
            startup: 0.0,
            busy_node_seconds,
            total_node_seconds: avail_nodes * time,
            records: records.into_iter().map(|r| r.expect("all done")).collect(),
            total_flops: workload.total_flops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use coral_machine::sierra;

    fn cluster(nodes: usize, jitter: f64, fail: f64, seed: u64) -> Cluster {
        Cluster::new(
            sierra(),
            &ClusterConfig {
                nodes,
                jitter_sigma: jitter,
                failure_prob: fail,
                seed,
            },
        )
    }

    #[test]
    fn jobs_never_straddle_blocks() {
        let sched = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 16,
            block_nodes: 4,
            ..MpiJmConfig::default()
        });
        let w = Workload::heterogeneous_solves(40, 4, 300.0, 0.3, 1e15, 3);
        let mut c = cluster(32, 0.05, 0.0, 5);
        let r = sched.run(&mut c, &w);
        for rec in &r.records {
            if rec.nodes.len() == 4 {
                assert!(Cluster::is_contiguous(&rec.nodes), "block allocations stay contiguous");
                // All four nodes in the same block of 4.
                let block = rec.nodes[0] / 4;
                assert!(rec.nodes.iter().all(|&i| i / 4 == block));
            }
        }
    }

    #[test]
    fn failed_lumps_are_dropped_not_fatal() {
        let sched = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 8,
            block_nodes: 4,
            ..MpiJmConfig::default()
        });
        // High failure rate: some lumps must drop, the run must still finish.
        let mut c = cluster(64, 0.0, 0.05, 7);
        let w = Workload::uniform_solves(20, 4, 100.0, 1e15);
        let r = sched.run(&mut c, &w);
        assert_eq!(r.records.len(), 20);
        assert!(r.total_node_seconds < 64.0 * r.makespan, "capacity shrank");
    }

    #[test]
    fn co_scheduling_makes_contractions_free() {
        // Workload: solves + contractions heavy enough to contend for nodes
        // (a backlog of contractions from earlier configurations, as in the
        // production workflow). With co-scheduling the makespan stays near
        // the solves-only value; without it, contractions steal GPU nodes.
        let mut w = Workload::figure2_workflow(4, 8, 4, 400.0, 1e15);
        for t in w.tasks.iter_mut() {
            if matches!(t.kind, TaskKind::Contraction) {
                t.base_seconds *= 10.0;
            }
        }
        let solves_only = Workload::uniform_solves(32, 4, 400.0, 1e15);

        let co = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 16,
            block_nodes: 4,
            co_schedule: true,
            ..MpiJmConfig::default()
        });
        let no_co = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 16,
            block_nodes: 4,
            co_schedule: false,
            ..MpiJmConfig::default()
        });

        let m_solves = co.run(&mut cluster(16, 0.0, 0.0, 9), &solves_only).makespan;
        let m_co = co.run(&mut cluster(16, 0.0, 0.0, 9), &w).makespan;
        let m_noco = no_co.run(&mut cluster(16, 0.0, 0.0, 9), &w).makespan;

        assert!(
            m_co < m_solves * 1.15,
            "co-scheduled contractions nearly free: {m_co} vs {m_solves}"
        );
        assert!(
            m_noco > m_co * 1.03,
            "dropping co-scheduling must cost time: {m_noco} vs {m_co}"
        );
    }

    #[test]
    fn mpi_efficiency_scales_run_time() {
        let w = Workload::uniform_solves(8, 4, 100.0, 1e15);
        let fast = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 8,
            block_nodes: 4,
            mpi_efficiency: 1.0,
            ..MpiJmConfig::default()
        });
        let slow = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 8,
            block_nodes: 4,
            mpi_efficiency: 0.8,
            ..MpiJmConfig::default()
        });
        let m1 = fast.run(&mut cluster(8, 0.0, 0.0, 11), &w).makespan;
        let m2 = slow.run(&mut cluster(8, 0.0, 0.0, 11), &w).makespan;
        assert!(m2 > m1 * 1.2, "{m2} vs {m1}");
    }

    #[test]
    fn dependencies_are_honored() {
        let sched = MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 8,
            block_nodes: 4,
            ..MpiJmConfig::default()
        });
        let w = Workload::figure2_workflow(1, 3, 2, 50.0, 1e14);
        let r = sched.run(&mut cluster(8, 0.0, 0.0, 13), &w);
        for t in &w.tasks {
            for &d in &t.deps {
                assert!(r.records[d].end <= r.records[t.id].start + 1e-9);
            }
        }
    }
}
