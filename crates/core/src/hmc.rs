//! Hybrid Monte Carlo for the pure-gauge theory: leapfrog molecular
//! dynamics in the su(3) algebra plus a Metropolis accept/reject.
//!
//! The heat-bath generator in [`crate::gauge`] is the production path; HMC
//! provides an algorithmically independent sampler of the same Wilson-action
//! distribution, so the two cross-validate each other (and HMC is what
//! dynamical-fermion programs like the paper's ensemble providers actually
//! run).

use crate::complex::Complex;
use crate::field::{GaugeField, GaugeLinks};
use crate::gauge::average_plaquette;
use crate::lattice::{Lattice, ND};
use crate::su3::{Su3, NC};
use crate::su3exp::{algebra_norm_sqr, exp_su3, project_antihermitian_traceless};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// HMC parameters.
#[derive(Clone, Copy, Debug)]
pub struct HmcParams {
    /// Wilson gauge coupling β.
    pub beta: f64,
    /// Molecular-dynamics trajectory length.
    pub trajectory_length: f64,
    /// Leapfrog steps per trajectory.
    pub n_steps: usize,
}

impl Default for HmcParams {
    fn default() -> Self {
        Self {
            beta: 5.7,
            trajectory_length: 1.0,
            n_steps: 20,
        }
    }
}

/// Outcome of one trajectory.
#[derive(Clone, Copy, Debug)]
pub struct Trajectory {
    /// Energy violation `ΔH = H_final − H_initial`.
    pub delta_h: f64,
    /// Whether the Metropolis step accepted.
    pub accepted: bool,
    /// Plaquette after the trajectory.
    pub plaquette: f64,
}

/// Momentum field: one su(3) algebra element per link.
type Momenta = Vec<Su3<f64>>;

/// The eight anti-hermitian generators `T_a = i λ_a / 2` (Gell-Mann basis),
/// normalized so `Tr(T_a T_b) = −δ_ab/2`.
fn generators() -> [Su3<f64>; 8] {
    let i = Complex::new(0.0, 1.0);
    let r = |v: f64| Complex::new(v, 0.0);
    let mut t = [Su3::zero(); 8];
    // λ1, λ2, λ3 (SU(2) block).
    t[0].m[0][1] = i.scale(0.5);
    t[0].m[1][0] = i.scale(0.5);
    t[1].m[0][1] = r(0.5);
    t[1].m[1][0] = r(-0.5);
    t[2].m[0][0] = i.scale(0.5);
    t[2].m[1][1] = i.scale(-0.5);
    // λ4, λ5.
    t[3].m[0][2] = i.scale(0.5);
    t[3].m[2][0] = i.scale(0.5);
    t[4].m[0][2] = r(0.5);
    t[4].m[2][0] = r(-0.5);
    // λ6, λ7.
    t[5].m[1][2] = i.scale(0.5);
    t[5].m[2][1] = i.scale(0.5);
    t[6].m[1][2] = r(0.5);
    t[6].m[2][1] = r(-0.5);
    // λ8.
    let inv_sqrt3 = 1.0 / 3.0f64.sqrt();
    t[7].m[0][0] = i.scale(0.5 * inv_sqrt3);
    t[7].m[1][1] = i.scale(0.5 * inv_sqrt3);
    t[7].m[2][2] = i.scale(-inv_sqrt3);
    t
}

/// Gaussian momenta: `P = Σ_a p_a T_a`, `p_a ~ N(0,1)`, giving kinetic
/// energy `K = Σ_links ‖P‖²_F = ½ Σ p_a²` per link.
fn sample_momenta(lat: &Lattice, rng: &mut SmallRng) -> Momenta {
    let gens = generators();
    (0..lat.volume() * ND)
        .map(|_| {
            let mut p = Su3::zero();
            for g in &gens {
                let z = {
                    let u1: f64 = rng.gen::<f64>().max(1e-300);
                    let u2: f64 = rng.gen();
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                };
                for i in 0..NC {
                    for j in 0..NC {
                        p.m[i][j] += g.m[i][j].scale(z);
                    }
                }
            }
            p
        })
        .collect()
}

/// Kinetic energy `Σ ‖P‖²_F`.
fn kinetic(momenta: &Momenta) -> f64 {
    crate::reduce::sum_sites(momenta.len(), |l| algebra_norm_sqr(&momenta[l]))
}

/// Wilson gauge action `S = −β/Nc Σ_x Σ_{μ<ν} Re Tr U_{μν}` (up to the
/// constant the Metropolis difference cancels).
fn action(lat: &Lattice, gauge: &GaugeField<f64>, beta: f64) -> f64 {
    -beta / NC as f64 * average_plaquette(lat, gauge) * NC as f64 * lat.volume() as f64 * 6.0
}

/// Staple sum oriented as in the heat-bath module.
fn staple(lat: &Lattice, gauge: &GaugeField<f64>, x: usize, mu: usize) -> Su3<f64> {
    let mut sum = Su3::zero();
    let nb = lat.neighbors(x);
    for nu in 0..ND {
        if nu == mu {
            continue;
        }
        let x_mu = nb.fwd[mu] as usize;
        let x_nu = nb.fwd[nu] as usize;
        sum += gauge.link(x_mu, nu) * gauge.link(x_nu, mu).dagger() * gauge.link(x, nu).dagger();
        let x_dn = nb.bwd[nu] as usize;
        let x_mu_dn = lat.neighbors(x_mu).bwd[nu] as usize;
        sum +=
            gauge.link(x_mu_dn, nu).dagger() * gauge.link(x_dn, mu).dagger() * gauge.link(x_dn, nu);
    }
    sum
}

/// The momentum force `Ṗ = −β/(2Nc) · P_TA(U Σ)` for every link.
fn force(lat: &Lattice, gauge: &GaugeField<f64>, beta: f64) -> Momenta {
    let c = -beta / (2.0 * NC as f64);
    (0..lat.volume() * ND)
        .into_par_iter()
        .map(|l| {
            let (x, mu) = (l / ND, l % ND);
            let us = gauge.link(x, mu) * staple(lat, gauge, x, mu);
            project_antihermitian_traceless(&us).scale(c)
        })
        .collect()
}

/// Leapfrog integration of (U, P) over one trajectory; mutates both.
fn leapfrog(lat: &Lattice, gauge: &mut GaugeField<f64>, momenta: &mut Momenta, params: &HmcParams) {
    let eps = params.trajectory_length / params.n_steps as f64;
    let half_kick = |p: &mut Momenta, g: &GaugeField<f64>, dt: f64| {
        let f = force(lat, g, params.beta);
        p.par_iter_mut()
            .zip(f.into_par_iter())
            .for_each(|(pi, fi)| {
                *pi += fi.scale(dt);
            });
    };
    let drift = |g: &mut GaugeField<f64>, p: &Momenta, dt: f64| {
        let new: Vec<Su3<f64>> = g
            .links()
            .par_iter()
            .zip(p.par_iter())
            .map(|(u, pi)| exp_su3(&pi.scale(dt)) * *u)
            .collect();
        g.links_mut().copy_from_slice(&new);
    };

    half_kick(momenta, gauge, eps / 2.0);
    for step in 0..params.n_steps {
        drift(gauge, momenta, eps);
        let dt = if step + 1 == params.n_steps {
            eps / 2.0
        } else {
            eps
        };
        half_kick(momenta, gauge, dt);
    }
}

/// The HMC sampler.
pub struct HmcSampler {
    lattice: Lattice,
    gauge: GaugeField<f64>,
    params: HmcParams,
    rng: SmallRng,
    /// Trajectory history.
    pub history: Vec<Trajectory>,
}

impl HmcSampler {
    /// Start from a cold configuration.
    pub fn cold_start(lattice: &Lattice, params: HmcParams, seed: u64) -> Self {
        Self {
            lattice: lattice.clone(),
            gauge: GaugeField::cold(lattice),
            params,
            rng: SmallRng::seed_from_u64(seed),
            history: Vec::new(),
        }
    }

    /// Current configuration.
    pub fn current(&self) -> &GaugeField<f64> {
        &self.gauge
    }

    /// Run one trajectory (momentum refresh → leapfrog → Metropolis).
    pub fn trajectory(&mut self) -> Trajectory {
        let mut momenta = sample_momenta(&self.lattice, &mut self.rng);
        let h0 = kinetic(&momenta) + action(&self.lattice, &self.gauge, self.params.beta);

        let mut proposal = self.gauge.clone();
        leapfrog(&self.lattice, &mut proposal, &mut momenta, &self.params);
        let h1 = kinetic(&momenta) + action(&self.lattice, &proposal, self.params.beta);
        let delta_h = h1 - h0;

        let accepted = delta_h <= 0.0 || self.rng.gen::<f64>() < (-delta_h).exp();
        if accepted {
            proposal.reunitarize();
            self.gauge = proposal;
        }
        let t = Trajectory {
            delta_h,
            accepted,
            plaquette: average_plaquette(&self.lattice, &self.gauge),
        };
        self.history.push(t);
        t
    }

    /// Acceptance rate so far.
    pub fn acceptance(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        self.history.iter().filter(|t| t.accepted).count() as f64 / self.history.len() as f64
    }
}

/// Expose the leapfrog for the reversibility test.
#[doc(hidden)]
pub fn integrate_for_test(
    lat: &Lattice,
    gauge: &mut GaugeField<f64>,
    momenta: &mut Momenta,
    params: &HmcParams,
) {
    leapfrog(lat, gauge, momenta, params);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_orthonormal_in_the_killing_form() {
        let gens = generators();
        for (a, ta) in gens.iter().enumerate() {
            for (b, tb) in gens.iter().enumerate() {
                // Tr(T_a T_b) = −δ_ab / 2.
                let tr = (*ta * *tb).trace();
                let expect = if a == b { -0.5 } else { 0.0 };
                assert!(
                    (tr.re - expect).abs() < 1e-14 && tr.im.abs() < 1e-14,
                    "Tr(T{a} T{b}) = {tr:?}"
                );
                assert!(ta.trace().abs() < 1e-14, "traceless");
            }
        }
    }

    #[test]
    fn momenta_have_unit_gaussian_components() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let mut rng = SmallRng::seed_from_u64(3);
        let p = sample_momenta(&lat, &mut rng);
        // K/link = ½ Σ_a p_a² with 8 generators → ⟨K⟩ = 4 per link.
        let k_per_link = kinetic(&p) / p.len() as f64;
        assert!((k_per_link - 4.0).abs() < 0.15, "⟨K⟩/link = {k_per_link}");
    }

    #[test]
    fn leapfrog_is_reversible() {
        let lat = Lattice::new([2, 2, 2, 4]);
        let mut gauge = GaugeField::<f64>::hot(&lat, 5);
        let original = gauge.clone();
        let params = HmcParams {
            beta: 5.7,
            trajectory_length: 0.5,
            n_steps: 10,
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let mut momenta = sample_momenta(&lat, &mut rng);

        integrate_for_test(&lat, &mut gauge, &mut momenta, &params);
        // Flip momenta and integrate back.
        for p in momenta.iter_mut() {
            *p = p.scale(-1.0);
        }
        integrate_for_test(&lat, &mut gauge, &mut momenta, &params);

        let mut max = 0.0f64;
        for (a, b) in gauge.links().iter().zip(original.links()) {
            max = max.max(a.distance(b));
        }
        assert!(max < 1e-9, "reversibility violation {max}");
    }

    #[test]
    fn energy_violation_scales_as_step_squared() {
        let lat = Lattice::new([2, 2, 2, 4]);
        let gauge0 = GaugeField::<f64>::hot(&lat, 11);
        let dh_at = |n_steps: usize| -> f64 {
            let params = HmcParams {
                beta: 5.7,
                trajectory_length: 1.0,
                n_steps,
            };
            let mut rng = SmallRng::seed_from_u64(13);
            let mut momenta = sample_momenta(&lat, &mut rng);
            let mut gauge = gauge0.clone();
            let h0 = kinetic(&momenta) + action(&lat, &gauge, params.beta);
            integrate_for_test(&lat, &mut gauge, &mut momenta, &params);
            (kinetic(&momenta) + action(&lat, &gauge, params.beta) - h0).abs()
        };
        let coarse = dh_at(10);
        let fine = dh_at(40);
        // Leapfrog: ΔH ~ ε², so 4x more steps → ~16x smaller violation.
        assert!(
            fine < coarse / 8.0,
            "ΔH(40 steps) = {fine} vs ΔH(10 steps) = {coarse}"
        );
    }

    #[test]
    fn hmc_accepts_and_matches_heatbath_plaquette() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let mut hmc = HmcSampler::cold_start(
            &lat,
            HmcParams {
                beta: 5.7,
                trajectory_length: 1.0,
                n_steps: 60,
            },
            17,
        );
        for _ in 0..25 {
            hmc.trajectory();
        }
        assert!(hmc.acceptance() > 0.6, "acceptance {}", hmc.acceptance());

        let tail: Vec<f64> = hmc.history[12..].iter().map(|t| t.plaquette).collect();
        let hmc_plaq: f64 = tail.iter().sum::<f64>() / tail.len() as f64;

        // Cross-validate against the heat-bath sampler at the same β.
        let mut hb = crate::gauge::QuenchedEnsemble::cold_start(
            &lat,
            crate::gauge::HeatbathParams { beta: 5.7, n_or: 2 },
            19,
        );
        for _ in 0..30 {
            hb.update();
        }
        let hb_tail = &hb.plaquette_history[15..];
        let hb_plaq: f64 = hb_tail.iter().sum::<f64>() / hb_tail.len() as f64;

        assert!(
            (hmc_plaq - hb_plaq).abs() < 0.02,
            "two independent samplers disagree: HMC {hmc_plaq} vs HB {hb_plaq}"
        );
    }
}
