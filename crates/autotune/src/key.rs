use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier for a tunable computation.
///
/// Mirrors QUDA's `TuneKey`: a kernel name, a volume string describing the
/// local problem, and an auxiliary string carrying anything else that changes
/// the optimum (precision, parity, communication topology, machine name).
/// Batched multi-RHS kernels additionally carry the block size `nrhs` —
/// the optimum policy genuinely shifts with how many right-hand-sides share
/// each gauge-link load, so block sizes must not share cache entries.
/// Two computations with equal keys share a cached optimum; anything that
/// could shift the optimum must be folded into one of the fields.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Debug)]
pub struct TuneKey {
    /// Kernel or algorithm name, e.g. `"dslash_wilson"` or `"halo_exchange"`.
    pub name: String,
    /// Problem-geometry component, e.g. `"48x48x48x64x12"`.
    pub volume: String,
    /// Auxiliary discriminator, e.g. `"prec=half,parity=odd,nodes=4"`.
    pub aux: String,
    /// Right-hand-side block size of a batched kernel; `1` for the
    /// single-RHS kernels (and absent from their displayed keys and from
    /// pre-batching cache files, which [`crate::Tuner::merge_json`] reads
    /// as single-RHS).
    pub nrhs: usize,
    /// Data-layout axis of a layout-aware kernel (`"aos"`, `"soa"`, or the
    /// marker `"variant"` for a combined variant sweep); `"aos"` for kernels
    /// without a layout choice, absent from their displayed keys and from
    /// pre-layout cache files.
    #[serde(default = "default_layout")]
    pub layout: String,
    /// Gauge storage/reconstruction axis (`"full"`, `"r12"`, `"r8"`,
    /// `"half"`, …); `"full"` for uncompressed links, absent from their
    /// displayed keys and from pre-reconstruction cache files.
    #[serde(default = "default_recon")]
    pub recon: String,
}

pub(crate) fn default_layout() -> String {
    "aos".to_string()
}

pub(crate) fn default_recon() -> String {
    "full".to_string()
}

impl TuneKey {
    /// Build a single-RHS, AoS-layout, full-storage key from its three
    /// string components.
    pub fn new(name: impl Into<String>, volume: impl Into<String>, aux: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            volume: volume.into(),
            aux: aux.into(),
            nrhs: 1,
            layout: default_layout(),
            recon: default_recon(),
        }
    }

    /// The same key at RHS block size `nrhs`.
    pub fn with_nrhs(mut self, nrhs: usize) -> Self {
        self.nrhs = nrhs;
        self
    }

    /// The same key on the given data-layout axis.
    pub fn with_layout(mut self, layout: impl Into<String>) -> Self {
        self.layout = layout.into();
        self
    }

    /// The same key on the given gauge storage/reconstruction axis.
    pub fn with_recon(mut self, recon: impl Into<String>) -> Self {
        self.recon = recon.into();
        self
    }
}

impl fmt::Display for TuneKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}::{}", self.name, self.volume, self.aux)?;
        if self.nrhs != 1 {
            write!(f, "::rhs{}", self.nrhs)?;
        }
        if self.layout != "aos" {
            write!(f, "::{}", self.layout)?;
        }
        if self.recon != "full" {
            write!(f, "::{}", self.recon)?;
        }
        Ok(())
    }
}
