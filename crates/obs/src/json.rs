//! A small, dependency-free JSON value with a parser and emitter.
//!
//! This is the workspace's runtime serialization substrate (the vendored
//! `serde_json` shim is compile-surface only — see `vendor/README.md`).
//! Objects preserve insertion order so callers control field ordering;
//! deterministic output for golden-file comparison is achieved simply by
//! inserting in a fixed order (or calling [`Json::sort_keys`]).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Numbers are `f64` (sufficient for every payload in this
/// workspace: counters stay below 2^53 and all measurements are doubles).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from key/value pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Drill down a dotted path (`"counters.solver.cg.iters"` will not
    /// split metric names — each path segment is one `get`).
    pub fn get_path(&self, path: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for p in path {
            cur = cur.get(p)?;
        }
        Some(cur)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Recursively sort object keys (arrays keep their order).
    pub fn sort_keys(&mut self) {
        match self {
            Json::Obj(pairs) => {
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                for (_, v) in pairs {
                    v.sort_keys();
                }
            }
            Json::Arr(items) => {
                for v in items {
                    v.sort_keys();
                }
            }
            _ => {}
        }
    }

    /// Pretty rendering with 2-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl From<&BTreeMap<String, String>> for Json {
    fn from(m: &BTreeMap<String, String>) -> Json {
        Json::Obj(
            m.iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect(),
        )
    }
}

/// Compact single-line rendering (`to_string()` comes from this impl).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

/// Emit a number: integers (within f64's exact range) without a fraction,
/// everything else via Rust's shortest-round-trip float formatting.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Inf/NaN; encode as null like most encoders do.
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        format!("{}", n as i64)
    } else {
        // `{}` on f64 prints the shortest string that parses back exactly.
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{lit}`")))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b'"') {
                    return Err(err(*pos, "expected string key in object"));
                }
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected `:` after object key"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hi =
                            parse_hex4(b, *pos + 1).ok_or_else(|| err(*pos, "bad \\u escape"))?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require a following \uXXXX low half.
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 3)
                                    .ok_or_else(|| err(*pos, "bad low surrogate"))?;
                                *pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err(err(*pos, "lone high surrogate"));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| err(*pos, "invalid codepoint"))?,
                        );
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // SAFETY: `b` is the byte view of a `&str` and `*pos` only
                // ever advances by whole scalar widths (`len_utf8` below),
                // so the suffix is valid UTF-8.
                let s = unsafe { std::str::from_utf8_unchecked(&b[*pos..]) };
                // The `Some(_)` arm guarantees at least one byte remains,
                // so the suffix holds at least one scalar.
                let Some(c) = s.chars().next() else {
                    return Err(err(*pos, "unterminated string"));
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Option<u32> {
    if at + 4 > b.len() {
        return None;
    }
    let s = std::str::from_utf8(&b[at..at + 4]).ok()?;
    u32::from_str_radix(s, 16).ok()
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err(start, "bad number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "bad number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::from("4^4x8 mixed cg")),
            ("iters", Json::from(137u64)),
            ("residual", Json::from(3.25e-11)),
            ("ok", Json::from(true)),
            ("tags", Json::from(vec!["a", "b\nc"])),
            (
                "nested",
                Json::obj(vec![("empty", Json::Arr(vec![])), ("null", Json::Null)]),
            ),
        ]);
        for rendered in [doc.to_string(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&rendered).unwrap(), doc);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [
            1.0 / 3.0,
            6.02214076e23,
            -0.1,
            f64::MIN_POSITIVE,
            1e300,
            12345.678,
        ] {
            let s = Json::Num(v).to_string();
            assert_eq!(Json::parse(&s).unwrap().as_f64().unwrap(), v, "{s}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(42u64).to_string(), "42");
        assert_eq!(Json::from(-7i64).to_string(), "-7");
        assert_eq!(Json::from(0u64).to_string(), "0");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" slash\\ newline\n tab\t unicode £ 𝒜 control\u{1}";
        let rendered = Json::from(s).to_string();
        assert_eq!(Json::parse(&rendered).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        assert_eq!(
            Json::parse("\"\\ud835\\udc9c\"").unwrap().as_str().unwrap(),
            "\u{1d49c}"
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "\"\\u12\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn get_path_walks_objects() {
        let doc = Json::obj(vec![(
            "counters",
            Json::obj(vec![("solver.cg.iters", Json::from(99u64))]),
        )]);
        assert_eq!(
            doc.get_path(&["counters", "solver.cg.iters"])
                .unwrap()
                .as_u64(),
            Some(99)
        );
        assert!(doc.get_path(&["counters", "missing"]).is_none());
    }
}
