//! The token-level rules: R1 (unsafe without SAFETY), R2 (nondeterminism),
//! R3 (panic sites), R5 (unordered float reductions), R6 (relaxed atomic
//! orderings). R4 (layering) works on manifests and lives in
//! [`crate::layering`].

use crate::lexer::{lex, test_spans, TokKind, Token};
use crate::{is_test_path, rule_ids, Config, Finding};

/// Run all file-scoped rules over one source file.
pub fn check_file(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let tokens = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let spans = test_spans(&tokens);
    let in_test_code =
        |line: u32| is_test_path(path) || spans.iter().any(|&(a, b)| line >= a && line <= b);

    let mut out = Vec::new();
    r1_unsafe_safety(path, &tokens, &lines, &mut out);
    if !cfg.sanctioned_nondet.iter().any(|p| p == path) {
        r2_nondeterminism(path, &tokens, &lines, &in_test_code, &mut out);
    }
    if cfg.panic_scope.iter().any(|p| path.starts_with(p.as_str())) {
        r3_panic_sites(path, &tokens, &lines, &in_test_code, &mut out);
    }
    if !cfg
        .float_reduce_exempt
        .iter()
        .any(|p| path.starts_with(p.as_str()))
    {
        r5_float_reduce(path, &tokens, &lines, &in_test_code, &mut out);
    }
    if !cfg.atomic_relaxed_allow.iter().any(|p| p == path) {
        r6_atomic_ordering(path, &tokens, &lines, &in_test_code, &mut out);
    }
    out
}

fn line_content(lines: &[&str], line: u32) -> String {
    lines
        .get(line as usize - 1)
        .map(|s| s.to_string())
        .unwrap_or_default()
}

/// R1: every `unsafe` token (block, fn, or `unsafe impl`) needs a comment
/// containing `SAFETY:` on the same line, within the three lines above
/// (slack for a short binding the unsafe expression hangs off), or anywhere
/// in the contiguous run of comment-only lines directly above it (so a
/// long multi-line SAFETY justification still counts).
fn r1_unsafe_safety(path: &str, tokens: &[Token], lines: &[&str], out: &mut Vec<Finding>) {
    use std::collections::BTreeSet;
    let safety_comment_lines: BTreeSet<u32> = tokens
        .iter()
        .filter_map(|t| match &t.kind {
            TokKind::Comment(text) if text.contains("SAFETY:") => Some(t.line),
            _ => None,
        })
        .collect();
    // Lines holding only comment tokens (and whitespace): candidates for a
    // multi-line justification block.
    let comment_only: BTreeSet<u32> = {
        let mut has_comment = BTreeSet::new();
        let mut has_code = BTreeSet::new();
        for t in tokens {
            match &t.kind {
                TokKind::Comment(_) => {
                    has_comment.insert(t.line);
                }
                _ => {
                    has_code.insert(t.line);
                }
            }
        }
        &has_comment - &has_code
    };
    for t in tokens {
        if t.ident() != Some("unsafe") {
            continue;
        }
        let mut justified = safety_comment_lines
            .iter()
            .any(|&cl| cl <= t.line && t.line - cl <= 3);
        if !justified {
            let mut l = t.line.saturating_sub(1);
            while l > 0 && comment_only.contains(&l) {
                if safety_comment_lines.contains(&l) {
                    justified = true;
                    break;
                }
                l -= 1;
            }
        }
        if !justified {
            out.push(Finding::new(
                rule_ids::UNSAFE_NO_SAFETY,
                path,
                t.line,
                "`unsafe` without an adjacent `// SAFETY:` justification".into(),
                &line_content(lines, t.line),
            ));
        }
    }
}

/// Identifier-path patterns R2 bans: each is a sequence of identifiers
/// joined by `::`. Matching is suffix-tolerant (`std::time::Instant::now`
/// matches the `Instant::now` pattern).
const NONDET_PATHS: [(&[&str], &str); 5] = [
    (
        &["Instant", "now"],
        "raw `Instant::now()` — time must flow through the injectable `obs::Clock`",
    ),
    (
        &["SystemTime", "now"],
        "raw `SystemTime::now()` — time must flow through the injectable `obs::Clock`",
    ),
    (
        &["thread", "spawn"],
        "ad-hoc `thread::spawn` — parallelism must go through the deterministic pool",
    ),
    (
        &["SmallRng", "from_entropy"],
        "entropy-seeded RNG — seeds must be explicit for reproducibility",
    ),
    (
        &["thread_rng"],
        "thread-local entropy RNG — seeds must be explicit for reproducibility",
    ),
];

/// R2: nondeterministic constructs outside the sanctioned modules.
fn r2_nondeterminism(
    path: &str,
    tokens: &[Token],
    lines: &[&str],
    in_test_code: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::Comment(_)))
        .collect();
    for i in 0..code.len() {
        for (pat, why) in NONDET_PATHS {
            if !matches_path(&code, i, pat) {
                continue;
            }
            let line = code[i].line;
            if in_test_code(line) {
                continue;
            }
            out.push(Finding::new(
                rule_ids::NONDETERMINISM,
                path,
                line,
                (*why).to_string(),
                &line_content(lines, line),
            ));
        }
    }
}

/// Does `ident :: ident :: …` starting at `code[i]` equal `pat`?
fn matches_path(code: &[&Token], i: usize, pat: &[&str]) -> bool {
    let mut j = i;
    for (k, want) in pat.iter().enumerate() {
        if code.get(j).and_then(|t| t.ident()) != Some(want) {
            return false;
        }
        j += 1;
        if k + 1 < pat.len() {
            if !(code.get(j).is_some_and(|t| t.is_punct(':'))
                && code.get(j + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            j += 2;
        }
    }
    true
}

/// R3: lexical panic sites — `.unwrap()`, `.expect(…)`, `panic!`,
/// `unimplemented!`, `todo!` — in non-test code of the panic-scoped crates.
fn r3_panic_sites(
    path: &str,
    tokens: &[Token],
    lines: &[&str],
    in_test_code: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::Comment(_)))
        .collect();
    for i in 0..code.len() {
        let t = code[i];
        let Some(what) = t.ident() else { continue };
        let hit = match what {
            // `.unwrap(` / `.expect(` — the dot distinguishes the method
            // from local functions that happen to share a name.
            "unwrap" | "expect" => {
                i > 0
                    && code[i - 1].is_punct('.')
                    && code.get(i + 1).is_some_and(|n| n.is_punct('('))
            }
            "panic" | "unimplemented" | "todo" => code.get(i + 1).is_some_and(|n| n.is_punct('!')),
            _ => false,
        };
        if !hit || in_test_code(t.line) {
            continue;
        }
        out.push(Finding::new(
            rule_ids::PANIC_SITE,
            path,
            t.line,
            format!("`{what}` can panic in library code — propagate a Result instead"),
            &line_content(lines, t.line),
        ));
    }
}

/// Parallel-iterator entry points that start a chain R5 watches.
const PAR_SOURCES: [&str; 8] = [
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_chunks_exact",
    "par_chunks_exact_mut",
    "par_windows",
];

/// R5: `.sum()` / `.reduce(` directly on a parallel chain. Tracks bracket
/// depth so `;` inside `map(|x| { … })` closures does not end the chain:
/// a chain lives at one depth, and only a `;` at that depth (or shallower)
/// terminates it.
fn r5_float_reduce(
    path: &str,
    tokens: &[Token],
    lines: &[&str],
    in_test_code: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::Comment(_)))
        .collect();
    let mut depth: usize = 0;
    // Depth at which a parallel chain is live -> line of its source call.
    let mut live: Vec<Option<u32>> = vec![None; 1];
    for i in 0..code.len() {
        let t = code[i];
        match &t.kind {
            TokKind::Punct('(' | '[' | '{') => {
                depth += 1;
                if live.len() <= depth {
                    live.resize(depth + 1, None);
                }
            }
            TokKind::Punct(')' | ']' | '}') => {
                live[depth] = None; // chains do not escape their bracket
                depth = depth.saturating_sub(1);
            }
            TokKind::Punct(';') => live[depth] = None,
            TokKind::Ident(name) if PAR_SOURCES.contains(&name.as_str()) => {
                live[depth] = Some(t.line);
            }
            TokKind::Ident(name) if name == "sum" || name == "reduce" => {
                let is_method_call = i > 0 && code[i - 1].is_punct('.');
                if is_method_call && !in_test_code(t.line) {
                    if let Some(src_line) = live[depth] {
                        out.push(Finding::new(
                            rule_ids::FLOAT_REDUCE,
                            path,
                            t.line,
                            format!(
                                "direct `.{name}()` on a parallel iterator (chain starts line {src_line}) — \
                                 use the deterministic fixed-shape reducers in blas/contract"
                            ),
                            &line_content(lines, t.line),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
}

/// R6: `Ordering::Relaxed` outside the audited allowlist. A relaxed
/// access carries no happens-before edge, so any cross-thread protocol
/// built on it is invisible to the checkmate race detector and to TSan —
/// code either proves it only needs a monotone counter (and joins the
/// allowlist with that justification) or uses acquire/release.
fn r6_atomic_ordering(
    path: &str,
    tokens: &[Token],
    lines: &[&str],
    in_test_code: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::Comment(_)))
        .collect();
    for i in 0..code.len() {
        if !matches_path(&code, i, &["Ordering", "Relaxed"]) {
            continue;
        }
        let line = code[i].line;
        if in_test_code(line) {
            continue;
        }
        out.push(Finding::new(
            rule_ids::ATOMIC_ORDERING,
            path,
            line,
            "`Ordering::Relaxed` on a shared atomic — no happens-before edge; \
             use acquire/release or justify the file into the audited allowlist"
                .to_string(),
            &line_content(lines, line),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        check_file(path, src, &Config::default())
    }

    #[test]
    fn r1_flags_bare_unsafe_and_accepts_justified() {
        let src = "fn f() {\n    let x = unsafe { *p };\n    // SAFETY: p is valid\n    let y = unsafe { *p };\n}\n";
        let f = run("crates/x/src/lib.rs", src);
        let r1: Vec<_> = f
            .iter()
            .filter(|f| f.rule == rule_ids::UNSAFE_NO_SAFETY)
            .collect();
        assert_eq!(r1.len(), 1);
        assert_eq!(r1[0].line, 2);
    }

    #[test]
    fn r1_same_line_safety_counts() {
        let src = "unsafe impl Send for X {} // SAFETY: X is a plain pointer wrapper\n";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn r2_flags_raw_instant_but_not_in_tests_or_sanctioned_files() {
        let src = "fn f() { let t = Instant::now(); }\n#[cfg(test)]\nmod tests {\n fn g() { let t = Instant::now(); }\n}\n";
        let f = run("crates/x/src/lib.rs", src);
        let r2: Vec<_> = f
            .iter()
            .filter(|f| f.rule == rule_ids::NONDETERMINISM)
            .collect();
        assert_eq!(r2.len(), 1);
        assert_eq!(r2[0].line, 1);
        assert!(run("crates/obs/src/clock.rs", "fn f() { Instant::now(); }").is_empty());
    }

    #[test]
    fn r2_matches_fully_qualified_paths() {
        let f = run(
            "crates/x/src/lib.rs",
            "fn f() { std::time::Instant::now(); std::thread::spawn(|| {}); }",
        );
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == rule_ids::NONDETERMINISM)
                .count(),
            2
        );
    }

    #[test]
    fn r3_only_in_scoped_crates_and_not_tests() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(run("crates/core/src/a.rs", src).len(), 1);
        assert_eq!(run("crates/io/src/a.rs", src).len(), 1);
        assert!(run("crates/analysis/src/a.rs", src).is_empty());
        assert!(run("crates/core/src/tests.rs", src).is_empty());
        assert!(run("tests/a.rs", src).is_empty());
    }

    #[test]
    fn r3_distinguishes_methods_from_free_functions() {
        // obs::json has a free `expect(b, pos, lit)` helper: no dot, no hit.
        assert!(run("crates/obs/src/a.rs", "fn f() { expect(b, pos, lit); }").is_empty());
        assert_eq!(
            run("crates/obs/src/a.rs", "fn f() { v.expect(\"msg\"); }").len(),
            1
        );
    }

    #[test]
    fn r3_flags_panic_macros() {
        let f = run(
            "crates/jobmgr/src/a.rs",
            "fn f() { panic!(\"boom\"); todo!(); }",
        );
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn r5_flags_par_chain_sum_through_closure_semicolons() {
        let src = "fn f(v: &[f64]) -> f64 {\n    v.par_iter()\n        .map(|x| { let y = x * x; y })\n        .sum::<f64>()\n}\n";
        let f = run("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rule_ids::FLOAT_REDUCE);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn r5_ignores_sequential_sums_and_exempt_files() {
        assert!(run(
            "crates/x/src/lib.rs",
            "fn f(v: &[f64]) -> f64 { v.iter().sum() }"
        )
        .is_empty());
        let par = "fn f(v: &[f64]) -> f64 { v.par_iter().cloned().sum() }";
        assert_eq!(run("crates/x/src/lib.rs", par).len(), 1);
        assert!(run("crates/core/src/blas.rs", par).is_empty());
        assert!(run("vendor/rayon/src/iter.rs", par).is_empty());
    }

    #[test]
    fn r5_chain_ends_at_statement_boundary() {
        let src = "fn f(v: &[f64]) -> f64 {\n    let w: Vec<f64> = v.par_iter().cloned().collect();\n    w.iter().sum()\n}\n";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn r6_flags_relaxed_outside_allowlist() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let f = run("crates/x/src/lib.rs", src);
        let r6: Vec<_> = f
            .iter()
            .filter(|f| f.rule == rule_ids::ATOMIC_ORDERING)
            .collect();
        assert_eq!(r6.len(), 1);
        assert_eq!(r6[0].line, 1);
    }

    #[test]
    fn r6_matches_fully_qualified_paths_and_skips_other_orderings() {
        let src = "fn f(c: &AtomicU64) {\n    c.load(std::sync::atomic::Ordering::Relaxed);\n    c.load(Ordering::Acquire);\n    c.store(1, Ordering::SeqCst);\n}\n";
        let f = run("crates/x/src/lib.rs", src);
        let r6: Vec<_> = f
            .iter()
            .filter(|f| f.rule == rule_ids::ATOMIC_ORDERING)
            .collect();
        assert_eq!(r6.len(), 1, "only the Relaxed line: {f:?}");
        assert_eq!(r6[0].line, 2);
    }

    #[test]
    fn r6_exempts_allowlisted_files_and_test_code() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(run("vendor/rayon/src/pool.rs", src)
            .iter()
            .all(|f| f.rule != rule_ids::ATOMIC_ORDERING));
        assert!(run("crates/obs/src/metrics.rs", src).is_empty());
        assert!(run("tests/threading.rs", src).is_empty());
        let in_mod =
            "#[cfg(test)]\nmod tests {\n fn g(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n}\n";
        assert!(run("crates/x/src/lib.rs", in_mod).is_empty());
    }

    #[test]
    fn content_hash_is_stable_under_line_moves() {
        let a = run("crates/core/src/a.rs", "fn f() { x.unwrap(); }");
        let b = run("crates/core/src/a.rs", "\n\nfn f() { x.unwrap(); }");
        assert_eq!(a[0].content_hash, b[0].content_hash);
        assert_ne!(a[0].line, b[0].line);
    }
}
