//! Property tests for the serialized-trace contract behind
//! `repro verify --trace`: any trace the explorer can emit must survive
//! render → parse → replay with a byte-identical re-rendering and the
//! identical verdict.
//!
//! The counter protocol is the richest generator here — its parameter
//! space (task count × increments × atomic or split) produces both
//! passing explorations and genuine lost-update violations, so the
//! round-trip is exercised on real explorer output, not hand-built
//! traces.

use checkmate::explore::replay;
use checkmate::protocols::counter::{CounterSpec, CounterSystem};
use checkmate::{Explorer, Trace, Verdict};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Explore a random counter config; if a violation is found, the
    /// serialized trace must replay to the same schedule, verdict, and
    /// message — byte-for-byte after re-rendering.
    #[test]
    fn explored_violations_round_trip_and_replay_identically(
        tasks in 2usize..4,
        increments in 1u64..3,
        atomic in any::<bool>(),
    ) {
        let spec = CounterSpec { tasks, increments, atomic };
        let config = format!(
            "counter-t{tasks}-i{increments}-{}",
            if atomic { "atomic" } else { "split" }
        );
        let exploration =
            Explorer::default().explore(&config, || CounterSystem::new(spec.clone()));
        // Atomic increments verify everywhere; split increments always
        // admit a lost update with >= 2 tasks.
        prop_assert_eq!(exploration.violation.is_some(), !atomic);
        let Some(v) = &exploration.violation else { return Ok(()) };

        let trace = Trace::from_violation(&config, v);
        let text = trace.render();

        // parse(render(t)) == t, and re-rendering is byte-identical.
        let parsed = Trace::parse(&text).unwrap();
        prop_assert_eq!(&parsed, &trace);
        prop_assert_eq!(parsed.render(), text.clone());

        // Replaying the parsed schedule reproduces the violation exactly:
        // same full schedule, same message — so re-serializing the replay
        // outcome recreates the committed trace byte-for-byte.
        let replayed = replay(&mut CounterSystem::new(spec.clone()), &parsed.schedule)
            .expect_err("a violating trace must replay to a violation");
        prop_assert_eq!(Trace::from_violation(&config, &replayed).render(), text);
    }

    /// Passing traces (schedules drawn from a clean atomic config) also
    /// round-trip: render/parse is lossless and replay stays clean.
    #[test]
    fn passing_schedules_round_trip_and_replay_clean(
        tasks in 2usize..4,
        increments in 1u64..3,
    ) {
        let spec = CounterSpec { tasks, increments, atomic: true };
        // A fixed fair round-robin schedule: every task steps
        // `increments` times (one step per atomic increment).
        let mut schedule = Vec::new();
        for _ in 0..increments {
            schedule.extend(0..tasks);
        }
        prop_assert!(replay(&mut CounterSystem::new(spec.clone()), &schedule).is_ok());

        let trace = Trace {
            config: "counter-atomic-roundrobin".to_string(),
            verdict: Verdict::Pass,
            message: String::new(),
            schedule,
        };
        let text = trace.render();
        let parsed = Trace::parse(&text).unwrap();
        prop_assert_eq!(&parsed, &trace);
        prop_assert_eq!(parsed.render(), text);
    }
}
