//! METAQ: shell-level backfilling between the batch scheduler and the user's
//! job scripts.
//!
//! METAQ keeps a queue of task scripts and starts the next one whenever
//! resources free up — recovering the idle time naive bundling wastes
//! ("effectively providing an across-the-board 25% speed-up"). Being
//! hardware-agnostic it cannot keep allocations close together, so as jobs
//! of different sizes complete "the available nodes became fragmented,
//! impacting performance"; and each task costs a separate `mpirun`
//! invocation, which taxes the service nodes.

use crate::cluster::Cluster;
use crate::report::{SimReport, TaskRecord};
use crate::task::{TaskKind, Workload};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Multiplicative slowdown of a task whose allocation is not contiguous.
pub const FRAGMENTATION_PENALTY: f64 = 0.95;

/// Serialized `mpirun` launch cost on the service node, seconds per task.
pub const MPIRUN_LAUNCH_SECONDS: f64 = 1.0;

/// Total-order wrapper for event times.
#[derive(PartialEq)]
struct Ord64(f64);
impl Eq for Ord64 {}
impl PartialOrd for Ord64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ord64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The METAQ backfilling scheduler.
pub struct MetaqScheduler;

impl MetaqScheduler {
    /// Run `workload` on `cluster` with event-driven backfilling.
    pub fn run(cluster: &mut Cluster, workload: &Workload) -> SimReport {
        let n = workload.len();
        let mut dep_count: Vec<usize> = workload.tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for t in &workload.tasks {
            for &d in &t.deps {
                dependents[d].push(t.id);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| dep_count[i] == 0).collect();
        let mut records: Vec<Option<TaskRecord>> = vec![None; n];
        // (end_time, task, allocation)
        let mut running: BinaryHeap<Reverse<(Ord64, usize)>> = BinaryHeap::new();
        let mut allocations: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut time = 0.0f64;
        let mut busy_node_seconds = 0.0;
        let mut done_count = 0usize;
        // Service-node launcher is serialized: next mpirun may start then.
        let mut launcher_free_at = 0.0f64;

        while done_count < n {
            // Start everything that fits right now, FIFO over ready tasks.
            let mut started_any = true;
            while started_any {
                started_any = false;
                let mut next_ready = Vec::new();
                for &id in &ready {
                    let t = &workload.tasks[id];
                    let start_attempt = match t.kind {
                        TaskKind::PropagatorSolve { nodes } => {
                            cluster.find_free_nodes(nodes, true)
                        }
                        TaskKind::Contraction => cluster.find_free_nodes(1, true),
                        TaskKind::Io => Some(Vec::new()),
                    };
                    match start_attempt {
                        Some(alloc) => {
                            // Pay the serialized mpirun cost.
                            let launch_at = time.max(launcher_free_at);
                            launcher_free_at = launch_at + MPIRUN_LAUNCH_SECONDS;
                            let start = launch_at + MPIRUN_LAUNCH_SECONDS;
                            cluster.occupy(&alloc);
                            let mut speed = if alloc.is_empty() {
                                1.0
                            } else {
                                cluster.group_speed(&alloc)
                            };
                            if !alloc.is_empty() && !Cluster::is_contiguous(&alloc) {
                                speed *= FRAGMENTATION_PENALTY;
                            }
                            let end = start + t.base_seconds / speed;
                            if matches!(t.kind, TaskKind::PropagatorSolve { .. }) {
                                busy_node_seconds +=
                                    (end - start) * alloc.len() as f64;
                            }
                            records[id] = Some(TaskRecord {
                                id,
                                start,
                                end,
                                nodes: alloc.clone(),
                                speed,
                            });
                            allocations[id] = alloc;
                            running.push(Reverse((Ord64(end), id)));
                            started_any = true;
                        }
                        None => next_ready.push(id),
                    }
                }
                ready = next_ready;
            }

            // Advance to the next completion.
            let Reverse((Ord64(end), id)) = running
                .pop()
                .expect("tasks pending but nothing running: deadlock");
            time = end;
            cluster.release(&allocations[id]);
            done_count += 1;
            for &dep in &dependents[id] {
                dep_count[dep] -= 1;
                if dep_count[dep] == 0 {
                    ready.push(dep);
                }
            }
        }

        let healthy = cluster.healthy_nodes() as f64;
        SimReport {
            makespan: time,
            startup: 0.0,
            busy_node_seconds,
            total_node_seconds: healthy * time,
            records: records.into_iter().map(|r| r.expect("all done")).collect(),
            total_flops: workload.total_flops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::naive::NaiveBundler;
    use coral_machine::sierra;

    fn cluster(nodes: usize, jitter: f64, seed: u64) -> Cluster {
        Cluster::new(
            sierra(),
            &ClusterConfig {
                nodes,
                jitter_sigma: jitter,
                failure_prob: 0.0,
                seed,
            },
        )
    }

    #[test]
    fn backfilling_recovers_naive_bundling_waste() {
        // The paper's headline: METAQ gave "an across-the-board 25% speed-up"
        // over naive bundling on heterogeneous workloads.
        let w = Workload::heterogeneous_solves(16 * 8, 4, 1000.0, 0.35, 1e15, 7);
        let naive = NaiveBundler::run(&mut cluster(64, 0.06, 3), &w);
        let metaq = MetaqScheduler::run(&mut cluster(64, 0.06, 3), &w);
        let speedup = naive.makespan / metaq.makespan;
        assert!(
            (1.10..1.45).contains(&speedup),
            "METAQ speedup over naive should be ~1.25, got {speedup}"
        );
        assert!(metaq.utilization() > naive.utilization());
    }

    #[test]
    fn fragmentation_slows_some_tasks() {
        // Mixed task sizes fragment the free set; some allocations go
        // non-contiguous and run at the penalty speed.
        let mut tasks = Workload::heterogeneous_solves(40, 3, 500.0, 0.5, 1e15, 11);
        let extra = Workload::heterogeneous_solves(20, 5, 700.0, 0.5, 1e15, 13);
        let base = tasks.tasks.len();
        for (i, mut t) in extra.tasks.into_iter().enumerate() {
            t.id = base + i;
            tasks.tasks.push(t);
        }
        let r = MetaqScheduler::run(&mut cluster(32, 0.0, 5), &tasks);
        let fragmented = r
            .records
            .iter()
            .filter(|rec| !rec.nodes.is_empty() && !Cluster::is_contiguous(&rec.nodes))
            .count();
        assert!(fragmented > 0, "expected some fragmented allocations");
    }

    #[test]
    fn launch_cost_serializes_on_service_node() {
        // 8 zero-length-ish tasks cost 8 serialized mpirun invocations.
        let w = Workload::uniform_solves(8, 1, 0.001, 1.0);
        let r = MetaqScheduler::run(&mut cluster(8, 0.0, 7), &w);
        assert!(
            r.makespan >= 8.0 * MPIRUN_LAUNCH_SECONDS,
            "serialized launches must bound the makespan: {}",
            r.makespan
        );
    }

    #[test]
    fn dependencies_are_honored() {
        let w = Workload::figure2_workflow(1, 3, 2, 50.0, 1e14);
        let r = MetaqScheduler::run(&mut cluster(8, 0.0, 9), &w);
        for t in &w.tasks {
            for &d in &t.deps {
                assert!(r.records[d].end <= r.records[t.id].start + 1e-9);
            }
        }
    }
}
