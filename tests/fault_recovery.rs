//! Property tests for the fault-injection and recovery subsystem: retry
//! budgets, exactly-once completion, DES invariants under crashes, and the
//! I/O layer's detect-or-recover guarantee under bit flips.

use lqcd::jobmgr::{
    Cluster, ClusterConfig, FaultConfig, MetaqScheduler, MpiJmConfig, MpiJmScheduler, NaiveBundler,
    RetryPolicy, SimReport, Workload,
};
use lqcd::machine::sierra;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Run one scheduler under one fault configuration.
fn run_scheduler(
    which: usize,
    workload: &Workload,
    nodes: usize,
    seed: u64,
    faults: &FaultConfig,
    policy: &RetryPolicy,
) -> SimReport {
    let config = ClusterConfig {
        nodes,
        jitter_sigma: 0.05,
        startup_failure_prob: 0.0,
        seed,
    };
    match which {
        0 => NaiveBundler::run_with_faults(
            &mut Cluster::new(sierra(), &config),
            workload,
            faults,
            policy,
        ),
        1 => MetaqScheduler::run_with_faults(
            &mut Cluster::new(sierra(), &config),
            workload,
            faults,
            policy,
        ),
        _ => MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 16,
            block_nodes: 4,
            ..MpiJmConfig::default()
        })
        .run_with_faults(
            &mut Cluster::new(sierra(), &config),
            workload,
            faults,
            policy,
        ),
    }
}

/// The shared recovery invariants every scheduler must uphold under faults.
fn check_recovery_invariants(
    report: &SimReport,
    n_tasks: usize,
    policy: &RetryPolicy,
) -> Result<(), TestCaseError> {
    // Task conservation: every submitted task either completed or was
    // permanently failed/abandoned — none vanish, none duplicate.
    prop_assert_eq!(
        report.completed_tasks + report.failed_tasks,
        n_tasks,
        "conservation: {} completed + {} failed != {} submitted",
        report.completed_tasks,
        report.failed_tasks,
        n_tasks
    );
    prop_assert_eq!(report.records.len(), report.completed_tasks);

    // Exactly-once completion: one success record per completed task id.
    let mut completed = vec![0usize; n_tasks];
    for r in &report.records {
        completed[r.id] += 1;
        prop_assert!(
            r.end >= r.start,
            "causality: task {} ends before start",
            r.id
        );
    }
    prop_assert!(
        completed.iter().all(|&c| c <= 1),
        "a task completed more than once"
    );

    // Retry budget: attempts per task never exceed the policy's cap, and
    // every killed attempt was either retried or counted as a permanent
    // failure (attempts recorded for every launched task).
    prop_assert_eq!(report.task_attempts.len(), n_tasks);
    for (id, &attempts) in report.task_attempts.iter().enumerate() {
        prop_assert!(
            attempts <= policy.max_attempts,
            "task {} used {} attempts > budget {}",
            id,
            attempts,
            policy.max_attempts
        );
        if completed[id] == 1 {
            prop_assert!(attempts >= 1, "completed task {} with zero attempts", id);
        }
    }

    // No oversubscription: at any instant a node serves at most one GPU
    // attempt (completed or killed). Contractions are CPU co-scheduled, so
    // records with a co-schedule speed penalty share nodes by design — the
    // sweep workloads here are GPU solves only, with no co-scheduling.
    let mut per_node: std::collections::HashMap<usize, Vec<(f64, f64)>> =
        std::collections::HashMap::new();
    for r in report.records.iter().chain(&report.wasted_records) {
        for &n in &r.nodes {
            per_node.entry(n).or_default().push((r.start, r.end));
        }
    }
    for (node, mut spans) in per_node {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in spans.windows(2) {
            prop_assert!(
                w[1].0 >= w[0].1 - 1e-9,
                "node {} oversubscribed: [{}, {}) overlaps [{}, {})",
                node,
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
    }

    // Fault accounting is consistent with the outcome.
    prop_assert_eq!(
        report.faults.permanent_failures + report.faults.abandoned_tasks,
        report.failed_tasks
    );
    prop_assert!(report.faults.wasted_node_seconds >= 0.0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under random crash rates and transient failure probabilities, every
    /// scheduler upholds the recovery invariants and never panics.
    #[test]
    fn schedulers_recover_or_fail_within_budget(
        which in 0usize..3,
        fault_seed in 0u64..1000,
        mtbf in prop::sample::select(vec![0.0f64, 60_000.0, 25_000.0, 12_000.0]),
        transient in prop::sample::select(vec![0.0f64, 0.05, 0.25]),
    ) {
        let workload = Workload::heterogeneous_solves(24, 2, 400.0, 0.3, 1e14, 11);
        let faults = FaultConfig {
            node_mtbf_seconds: mtbf,
            transient_fail_prob: transient,
            seed: fault_seed,
            ..FaultConfig::default()
        };
        let policy = RetryPolicy::default();
        let report = run_scheduler(which, &workload, 12, 5, &faults, &policy);
        check_recovery_invariants(&report, workload.len(), &policy)?;

        // Pristine configuration must complete everything.
        if mtbf == 0.0 && transient == 0.0 {
            prop_assert_eq!(report.completed_tasks, workload.len());
            prop_assert_eq!(report.faults.retries, 0);
        }
    }

    /// Transient failures alone (no node loss) never sink a run with a
    /// sane retry budget: a task's chance of 4 consecutive failures at
    /// p = 0.25 is ~0.4%, and the budget is enforced exactly.
    #[test]
    fn transient_failures_are_retried_not_fatal(
        which in 0usize..3,
        fault_seed in 0u64..500,
    ) {
        let workload = Workload::uniform_solves(16, 2, 300.0, 1e14);
        let faults = FaultConfig {
            node_mtbf_seconds: 0.0,
            transient_fail_prob: 0.25,
            seed: fault_seed,
            ..FaultConfig::default()
        };
        let policy = RetryPolicy::default();
        let report = run_scheduler(which, &workload, 8, 9, &faults, &policy);
        check_recovery_invariants(&report, workload.len(), &policy)?;
        // Every failure is attributable: a task only fails permanently
        // after exhausting its whole budget.
        for (id, &attempts) in report.task_attempts.iter().enumerate() {
            let failed = !report.records.iter().any(|r| r.id == id);
            if failed {
                prop_assert_eq!(
                    attempts, policy.max_attempts,
                    "task {} failed with budget left", id
                );
            }
        }
    }

    /// A container round trip with a random injected bit flip either
    /// recovers the original data exactly or reports an error — it never
    /// hands back corrupt data as `Ok`.
    #[test]
    fn io_bit_flips_recover_or_error_never_corrupt(
        values in proptest::collection::vec(-1e6f64..1e6, 16..256),
        at in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        use std::collections::BTreeMap;
        let shape = vec![values.len()];
        let c = lqcd::io::Container::from_f64("prop", shape, &values, BTreeMap::new());
        let dir = std::env::temp_dir().join("lqcd_proptest_faults");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t{}_{}.lqio", values.len(), bit));
        lqcd::io::write_container(&path, &c).unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        let i = at.index(bytes.len());
        bytes[i] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        match lqcd::io::read_container(&path) {
            Ok(back) => {
                // CRC-32C detects any single-bit payload flip, so an `Ok`
                // means the flip landed in the (unchecksummed) header. The
                // payload values must still be the original ones; a header
                // mangled into an inconsistent shape must decode to `Err`,
                // not to wrong data.
                if let Ok(decoded) = back.to_f64() {
                    prop_assert_eq!(decoded, values);
                }
            }
            Err(_) => {
                // Detected. Salvage must also never fabricate data: any
                // values it does return outside lost ranges are original.
                if let Ok(s) = lqcd::io::salvage_container_bytes(&bytes) {
                    let lost = s.lost_ranges.clone();
                    let within_lost =
                        |k: usize| lost.iter().any(|&(a, b)| (a..b).contains(&(k * 8)));
                    for (k, chunk) in s.payload.chunks_exact(8).enumerate() {
                        if k < values.len() && !within_lost(k) {
                            let v = f64::from_le_bytes(chunk.try_into().unwrap());
                            prop_assert_eq!(v, values[k], "salvage fabricated data at {}", k);
                        }
                    }
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
