//! Bootstrap resampling.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Bootstrap a scalar statistic: `n_boot` resamples with replacement,
/// returning (mean over resamples, bootstrap standard error).
pub fn bootstrap<T, F>(samples: &[T], statistic: F, n_boot: usize, seed: u64) -> (f64, f64)
where
    T: Clone,
    F: Fn(&[T]) -> f64,
{
    let n = samples.len();
    assert!(n >= 2, "bootstrap needs at least 2 samples");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(n_boot);
    let mut buf: Vec<T> = Vec::with_capacity(n);
    for _ in 0..n_boot {
        buf.clear();
        for _ in 0..n {
            buf.push(samples[rng.gen_range(0..n)].clone());
        }
        values.push(statistic(&buf));
    }
    let mean: f64 = values.iter().sum::<f64>() / n_boot as f64;
    let var: f64 =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n_boot as f64 - 1.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_error_of_mean_is_reasonable() {
        let mut rng = SmallRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..500).map(|_| rng.gen::<f64>()).collect();
        let (mean, err) = bootstrap(
            &samples,
            |s| s.iter().sum::<f64>() / s.len() as f64,
            500,
            11,
        );
        // Uniform(0,1): mean 0.5, sem = sqrt(1/12/500) ≈ 0.0129.
        assert!((mean - 0.5).abs() < 0.05);
        assert!((err - 0.0129).abs() < 0.004, "bootstrap error {err}");
    }

    #[test]
    fn bootstrap_is_reproducible_by_seed() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let stat = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
        let a = bootstrap(&samples, stat, 200, 42);
        let b = bootstrap(&samples, stat, 200, 42);
        let c = bootstrap(&samples, stat, 200, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
