//! In-memory multi-rank transport: one mailbox per (rank, direction, side).
//!
//! Ranks exchange face buffers through `mpsc` channels, mirroring the
//! point-to-point structure of the MPI halo exchange: a message is addressed
//! by (destination rank, direction `mu`, which ghost zone it fills), so no
//! tags travel with the payload and delivery is exactly-once by
//! construction — [`Mailboxes::recv`] asserts that precisely one message is
//! waiting per box per exchange.
//!
//! The transport policies differ in how many buffer copies a payload makes
//! on its way into the ghost zone (the "real copy counts" the analytic
//! [`coral_machine::commpolicy::CommPolicy`] model charges for):
//! staged-DMA packs, stages, sends, and unpacks; zero-copy packs straight
//! into the wire buffer; GPU-Direct skips the channel entirely and the
//! receiver gathers the remote face in place.

use crate::lattice::ND;
use crate::real::Real;
use crate::spinor::Spinor;
use parking_lot::Mutex;
use std::sync::mpsc::{channel, Receiver, Sender};

/// Side index of a mailbox: which ghost zone of the destination the message
/// fills.
pub const BOX_FWD: usize = 0;
/// See [`BOX_FWD`].
pub const BOX_BWD: usize = 1;

type Payload<R> = Vec<Spinor<R>>;
/// Both mailboxes of one (rank, direction): `[BOX_FWD, BOX_BWD]`.
type TxBoxes<R> = [Sender<Payload<R>>; 2];
type RxBoxes<R> = [Mutex<Receiver<Payload<R>>>; 2];

/// Per-rank, per-direction, per-side channels. Senders are shared (`Sync`
/// since any rank may post to any neighbor concurrently); each receiver is
/// only ever drained by its owning rank, behind an uncontended mutex.
pub struct Mailboxes<R: Real> {
    tx: Vec<[TxBoxes<R>; ND]>,
    rx: Vec<[RxBoxes<R>; ND]>,
}

impl<R: Real> Mailboxes<R> {
    /// Wire up `n_ranks × ND × 2` channels.
    pub fn new(n_ranks: usize) -> Self {
        let mut tx = Vec::with_capacity(n_ranks);
        let mut rx = Vec::with_capacity(n_ranks);
        for _ in 0..n_ranks {
            let mut pair: (Vec<TxBoxes<R>>, Vec<RxBoxes<R>>) =
                (Vec::with_capacity(ND), Vec::with_capacity(ND));
            for _ in 0..ND {
                let (t0, r0) = channel();
                let (t1, r1) = channel();
                pair.0.push([t0, t1]);
                pair.1.push([Mutex::new(r0), Mutex::new(r1)]);
            }
            let Ok(t) = <[_; ND]>::try_from(pair.0) else {
                unreachable!("built exactly ND sender pairs");
            };
            let Ok(r) = <[_; ND]>::try_from(pair.1) else {
                unreachable!("built exactly ND receiver pairs");
            };
            tx.push(t);
            rx.push(r);
        }
        Self { tx, rx }
    }

    /// Post a face buffer to `(dest, mu, side)`.
    pub fn send(&self, dest: usize, mu: usize, side: usize, buf: Payload<R>) {
        let ok = self.tx[dest][mu][side].send(buf).is_ok();
        assert!(
            ok,
            "halo mailbox (rank {dest}, dim {mu}, side {side}) closed"
        );
    }

    /// Drain the single message waiting at `(rank, mu, side)`.
    ///
    /// The exchange discipline posts exactly one message per box per
    /// operator application before any unpack runs; both under- and
    /// over-delivery are hard errors.
    pub fn recv(&self, rank: usize, mu: usize, side: usize) -> Payload<R> {
        let guard = self.rx[rank][mu][side].lock();
        let Ok(buf) = guard.try_recv() else {
            unreachable!("missing halo message at (rank {rank}, dim {mu}, side {side})");
        };
        assert!(
            guard.try_recv().is_err(),
            "duplicate halo message at (rank {rank}, dim {mu}, side {side})"
        );
        buf
    }
}

/// Cumulative execution statistics of a sharded kernel, for
/// measured-vs-analytic cross-checks and obs metrics. All fields except the
/// overlap window are deterministic functions of (geometry, policy, applies)
/// and are asserted against actual pack/unpack event counts on every apply.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Operator applications executed.
    pub applies: u64,
    /// Logical neighbor messages (two per partitioned direction per rank per
    /// apply, for every transport — GPU-Direct still *exchanges*, it just
    /// does not stage).
    pub messages: u64,
    /// 5D halo spinors delivered into ghost zones.
    pub halo_sites: u64,
    /// Bytes written into intermediate send-side buffers (staged-DMA copies
    /// twice before the wire, zero-copy once, GPU-Direct none).
    pub bytes_packed: u64,
    /// Payload bytes delivered across rank boundaries.
    pub bytes_sent: u64,
    /// Total buffer copies including the ghost-zone unpack (3, 2, or 1 per
    /// message by transport).
    pub copies: u64,
    /// 5D site updates computed inside the overlap window (fine granularity
    /// only).
    pub sites_interior: u64,
    /// 5D site updates computed after halo arrival.
    pub sites_boundary: u64,
    /// Measured interior-compute time between posting sends and the first
    /// unpack — the communication/computation overlap window.
    pub overlap_seconds: f64,
}
