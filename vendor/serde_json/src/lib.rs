//! Offline typecheck stub for the `serde_json` surface this workspace uses:
//! `to_vec` / `to_string` / `to_string_pretty`, `from_slice` / `from_str`,
//! the `Error` type, `Value`, and a token-discarding `json!`.

use std::fmt;

#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

pub fn to_vec<T: serde::Serialize + ?Sized>(_value: &T) -> Result<Vec<u8>, Error> {
    Ok(Vec::new())
}

pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Ok(String::new())
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Ok(String::new())
}

pub fn from_slice<T: serde::DeserializeOwned>(_bytes: &[u8]) -> Result<T, Error> {
    Err(Error(()))
}

pub fn from_str<T: serde::DeserializeOwned>(_s: &str) -> Result<T, Error> {
    Err(Error(()))
}

#[derive(Clone, Debug, Default)]
pub enum Value {
    #[default]
    Null,
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("null")
    }
}

#[macro_export]
macro_rules! json {
    ($($tokens:tt)*) => {
        $crate::Value::Null
    };
}
