//! The simulated cluster: nodes with GPU/CPU slots, per-node speed jitter,
//! and startup failures.

use coral_machine::MachineSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Cluster construction parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Nodes allocated to this job.
    pub nodes: usize,
    /// Log-normal-ish node speed spread (multiplicative sigma). Real nodes
    /// "can differ in performance" (§V); this feeds the Fig. 7 histogram.
    pub jitter_sigma: f64,
    /// Probability that a node is dead/unreachable *at startup* ("lumps that
    /// fail to start ... are ignored") — the node never serves a single
    /// task. Mid-run failures are a separate model: see
    /// [`crate::fault::FaultConfig::node_mtbf_seconds`], which crashes
    /// initially-healthy nodes while tasks are running on them. The field
    /// was previously (misleadingly) called `failure_prob`; that name is
    /// kept as a serde alias so stored configs keep parsing.
    #[serde(alias = "failure_prob")]
    pub startup_failure_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 128,
            jitter_sigma: 0.05,
            startup_failure_prob: 0.002,
            seed: 1,
        }
    }
}

impl ClusterConfig {
    /// Deprecated accessor for the old `failure_prob` name.
    #[deprecated(note = "renamed to `startup_failure_prob`; mid-run failures \
                         are modelled by `fault::FaultConfig` instead")]
    pub fn failure_prob(&self) -> f64 {
        self.startup_failure_prob
    }
}

/// One node's simulated state.
#[derive(Clone, Debug)]
pub struct Node {
    /// Relative speed (1.0 = nominal); task durations divide by the slowest
    /// participating node's speed.
    pub speed: f64,
    /// Free GPU slots.
    pub free_gpus: usize,
    /// Whether the CPU sockets are free (contractions occupy them).
    pub cpu_free: bool,
    /// Dead at startup.
    pub failed: bool,
}

/// The simulated machine partition a job manager works with.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Static description of the machine this partition belongs to.
    pub machine: MachineSpec,
    /// Per-node state.
    pub nodes: Vec<Node>,
}

impl Cluster {
    /// Build a partition of `machine` with the given config.
    pub fn new(machine: MachineSpec, config: &ClusterConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let nodes = (0..config.nodes)
            .map(|_| {
                let z: f64 = {
                    // Box–Muller normal sample.
                    let u1: f64 = rng.gen::<f64>().max(1e-300);
                    let u2: f64 = rng.gen();
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                };
                Node {
                    speed: (1.0 + config.jitter_sigma * z).clamp(0.5, 1.5),
                    free_gpus: machine.gpus_per_node,
                    cpu_free: true,
                    failed: rng.gen::<f64>() < config.startup_failure_prob,
                }
            })
            .collect();
        Self { machine, nodes }
    }

    /// GPUs per node on this machine.
    pub fn gpus_per_node(&self) -> usize {
        self.machine.gpus_per_node
    }

    /// Total healthy nodes.
    pub fn healthy_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| !n.failed).count()
    }

    /// Total GPU slots on healthy nodes.
    pub fn total_gpus(&self) -> usize {
        self.healthy_nodes() * self.gpus_per_node()
    }

    /// Find `n_nodes` whole free nodes, preferring a contiguous run (the
    /// `mpi_jm` block discipline); falls back to scattered nodes when
    /// `allow_fragmented`. Returns node indices or `None`.
    pub fn find_free_nodes(&self, n_nodes: usize, allow_fragmented: bool) -> Option<Vec<usize>> {
        let free: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.failed && n.free_gpus == self.gpus_per_node() && n.cpu_free)
            .map(|(i, _)| i)
            .collect();
        if free.len() < n_nodes {
            return None;
        }
        // Contiguous run first.
        for w in free.windows(n_nodes) {
            if w[n_nodes - 1] - w[0] == n_nodes - 1 {
                return Some(w.to_vec());
            }
        }
        if allow_fragmented {
            Some(free[..n_nodes].to_vec())
        } else {
            None
        }
    }

    /// Mark nodes busy for a whole-node GPU task.
    pub fn occupy(&mut self, nodes: &[usize]) {
        for &i in nodes {
            assert_eq!(self.nodes[i].free_gpus, self.gpus_per_node(), "double-book");
            self.nodes[i].free_gpus = 0;
        }
    }

    /// Release nodes after a whole-node GPU task.
    pub fn release(&mut self, nodes: &[usize]) {
        for &i in nodes {
            self.nodes[i].free_gpus = self.gpus_per_node();
        }
    }

    /// Retire `node` after a mid-run crash: its slots are reclaimed (any
    /// task on it has been killed by the caller) and it never serves again.
    pub fn mark_crashed(&mut self, node: usize) {
        let gpn = self.gpus_per_node();
        let n = &mut self.nodes[node];
        n.failed = true;
        n.free_gpus = gpn;
        n.cpu_free = true;
    }

    /// Slowest speed among the given nodes (sets the task's pace).
    pub fn group_speed(&self, nodes: &[usize]) -> f64 {
        nodes
            .iter()
            .map(|&i| self.nodes[i].speed)
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether an allocation is contiguous in node index (proxy for being
    /// placed close together on the fabric).
    pub fn is_contiguous(nodes: &[usize]) -> bool {
        if nodes.is_empty() {
            return true;
        }
        let min = nodes.iter().copied().fold(usize::MAX, usize::min);
        let max = nodes.iter().copied().fold(0, usize::max);
        max - min + 1 == nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coral_machine::sierra;

    fn cluster(n: usize, seed: u64) -> Cluster {
        Cluster::new(
            sierra(),
            &ClusterConfig {
                nodes: n,
                jitter_sigma: 0.05,
                startup_failure_prob: 0.0,
                seed,
            },
        )
    }

    #[test]
    fn nodes_have_bounded_jitter() {
        let c = cluster(1000, 3);
        for n in &c.nodes {
            assert!((0.5..=1.5).contains(&n.speed));
        }
        let mean: f64 = c.nodes.iter().map(|n| n.speed).sum::<f64>() / 1000.0;
        assert!((mean - 1.0).abs() < 0.02, "mean speed {mean}");
    }

    #[test]
    fn contiguous_allocation_preferred() {
        let mut c = cluster(16, 5);
        // Occupy nodes 1 and 3, leaving holes.
        c.occupy(&[1]);
        c.occupy(&[3]);
        let alloc = c.find_free_nodes(4, false).expect("room");
        assert!(Cluster::is_contiguous(&alloc));
        assert!(alloc[0] >= 4, "must skip the fragmented prefix");
    }

    #[test]
    fn fragmented_fallback_when_allowed() {
        let mut c = cluster(8, 7);
        // Leave only scattered singles free: occupy 1,3,5,7.
        c.occupy(&[1]);
        c.occupy(&[3]);
        c.occupy(&[5]);
        c.occupy(&[7]);
        assert!(c.find_free_nodes(3, false).is_none());
        let frag = c.find_free_nodes(3, true).expect("scattered nodes exist");
        assert!(!Cluster::is_contiguous(&frag));
    }

    #[test]
    fn occupy_release_round_trip() {
        let mut c = cluster(4, 9);
        let alloc = c.find_free_nodes(4, false).expect("all free");
        c.occupy(&alloc);
        assert!(c.find_free_nodes(1, true).is_none());
        c.release(&alloc);
        assert!(c.find_free_nodes(4, false).is_some());
    }

    #[test]
    fn failures_reduce_capacity() {
        let c = Cluster::new(
            sierra(),
            &ClusterConfig {
                nodes: 1000,
                jitter_sigma: 0.0,
                startup_failure_prob: 0.05,
                seed: 11,
            },
        );
        let healthy = c.healthy_nodes();
        assert!(healthy < 1000 && healthy > 900, "healthy {healthy}");
        assert_eq!(c.total_gpus(), healthy * 4);
    }

    #[test]
    fn group_speed_is_the_slowest() {
        let mut c = cluster(3, 13);
        c.nodes[0].speed = 1.2;
        c.nodes[1].speed = 0.8;
        c.nodes[2].speed = 1.0;
        assert_eq!(c.group_speed(&[0, 1, 2]), 0.8);
    }
}
