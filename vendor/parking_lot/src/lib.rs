//! Offline typecheck stub: parking_lot's no-poisoning lock API backed by
//! `std::sync` primitives.
//!
//! With the `race-detect` feature the guards double as race-detector
//! instrumentation: taking a lock records an acquire edge on a key derived
//! from the lock's address, and dropping the guard records the matching
//! release edge, so any two accesses bracketed by the same lock are
//! happens-before ordered in `checkmate::race`'s vector clocks. Read
//! guards record the same edges as write guards — over-synchronizing is
//! sound for a detector (it can only hide races, never invent them), and
//! it keeps write-after-read ordering visible.

use std::ops::{Deref, DerefMut};

/// Race-detector key for a lock instance: its address. Addresses can be
/// recycled after a lock is dropped, which at worst merges clock history
/// into a fresh lock — extra ordering, never a false race.
#[cfg(feature = "race-detect")]
fn lock_key<T: ?Sized>(lock: &T) -> u64 {
    checkmate::race::keyed("parking_lot.lock", lock as *const T as *const u8 as u64)
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self.0.read().unwrap_or_else(|e| e.into_inner());
        // The acquire edge is recorded only once the lock is actually
        // held, so it observes every prior holder's release publication.
        #[cfg(feature = "race-detect")]
        let key = {
            let key = lock_key(self);
            checkmate::race::acquire(key);
            key
        };
        RwLockReadGuard {
            inner,
            #[cfg(feature = "race-detect")]
            key,
        }
    }
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self.0.write().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "race-detect")]
        let key = {
            let key = lock_key(self);
            checkmate::race::acquire(key);
            key
        };
        RwLockWriteGuard {
            inner,
            #[cfg(feature = "race-detect")]
            key,
        }
    }
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    #[cfg(feature = "race-detect")]
    key: u64,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "race-detect")]
        checkmate::race::release(self.key);
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    #[cfg(feature = "race-detect")]
    key: u64,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "race-detect")]
        checkmate::race::release(self.key);
    }
}

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.0.lock().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "race-detect")]
        let key = {
            let key = lock_key(self);
            checkmate::race::acquire(key);
            key
        };
        MutexGuard {
            inner,
            #[cfg(feature = "race-detect")]
            key,
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
    #[cfg(feature = "race-detect")]
    key: u64,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "race-detect")]
        checkmate::race::release(self.key);
    }
}
