//! `repro lint` — run the workspace static-analysis pass (see `srclint`).
//!
//! ```text
//! repro lint [--check] [--update-baseline] [--format text|json]
//!            [--root DIR] [--baseline FILE]
//! ```
//!
//! Exit status: 0 when every finding is covered by the baseline and no
//! suppression is stale; 1 when there are fresh findings or stale
//! suppressions (so CI fails both on new violations and on fixed
//! violations whose suppression was not removed); 2 on usage or I/O
//! errors. `--update-baseline` rewrites the baseline to match the current
//! tree and exits 0.

use srclint::baseline::{baseline_with_content, Baseline};
use srclint::{report, scan_workspace, Config};
use std::path::PathBuf;

/// Parse `repro lint` arguments and run. Returns the process exit code.
pub fn run_lint(args: &[String]) -> i32 {
    let mut check = false;
    let mut update = false;
    let mut format = "text".to_string();
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--update-baseline" => update = true,
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some(f @ ("text" | "json")) => format = f.to_string(),
                    _ => {
                        eprintln!("--format needs `text` or `json`");
                        return 2;
                    }
                }
            }
            "--root" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--root needs a directory");
                    return 2;
                };
                root = PathBuf::from(dir);
            }
            "--baseline" => {
                i += 1;
                let Some(file) = args.get(i) else {
                    eprintln!("--baseline needs a file");
                    return 2;
                };
                baseline_path = Some(PathBuf::from(file));
            }
            other => {
                eprintln!("unexpected lint argument: {other}");
                return 2;
            }
        }
        i += 1;
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.json"));

    let cfg = Config::default();
    let findings = match scan_workspace(&root, &cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint: scan failed: {e}");
            return 2;
        }
    };

    if update {
        let base = baseline_with_content(&findings, &root);
        if let Err(e) = base.save(&baseline_path) {
            eprintln!("lint: writing {}: {e}", baseline_path.display());
            return 2;
        }
        println!(
            "wrote {} with {} suppression(s)",
            baseline_path.display(),
            base.suppressions.len()
        );
        return 0;
    }

    let base = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("lint: {e}");
            return 2;
        }
    };
    let applied = base.apply(findings);
    match format.as_str() {
        "json" => print!("{}", report::render_json(&applied)),
        _ => print!("{}", report::render_text(&applied)),
    }
    let clean = applied.fresh.is_empty() && applied.stale.is_empty();
    if check && !clean {
        1
    } else if !check && !applied.fresh.is_empty() {
        1
    } else {
        0
    }
}
