//! Flop accounting in the paper's conventions.
//!
//! The paper reports performance by explicit FLOP count: "for the red-black
//! preconditioned Domain-wall stencil used in this work, there are between
//! 10,000–12,000 floating point operations per five-dimensional lattice
//! point", BLAS-1 ops add 50–100 flops per site per iteration, the CG solver
//! at 16-bit storage has arithmetic intensity 1.8–1.9 flops/byte, and quoting
//! percent-of-peak requires a 1.675× scaling on the raw solver rate (non-FMA
//! issue + double-precision reductions) against the single-precision peak.

/// Flops per 5D lattice point of one red–black preconditioned domain-wall
/// operator application, paper convention (midpoint of the quoted range).
pub const DWF_PREC_FLOPS_PER_SITE: f64 = 11_000.0;

/// BLAS-1 flops per lattice site per CG iteration, paper convention.
pub const CG_BLAS_FLOPS_PER_SITE: f64 = 75.0;

/// Arithmetic intensity (flops/byte) of the 16-bit-storage CG solver.
pub const CG_ARITHMETIC_INTENSITY: f64 = 1.9;

/// Scaling applied to the raw solver flop rate when quoting percent of
/// single-precision peak (accounts for non-FMA instructions and
/// double-precision reductions).
pub const PEAK_ACCOUNTING_SCALE: f64 = 1.675;

/// Flops of one CG iteration on a 5D red–black half-checkerboard of
/// `sites_5d` points: one preconditioned normal-equation application (two
/// operator applies) plus BLAS-1.
pub fn cg_iteration_flops(sites_5d: f64) -> f64 {
    sites_5d * (2.0 * DWF_PREC_FLOPS_PER_SITE + CG_BLAS_FLOPS_PER_SITE)
}

/// Convert a sustained flop rate to effective memory bandwidth using the CG
/// arithmetic intensity — the conversion behind Fig. 3(c) of the paper.
pub fn flops_to_bandwidth(flops_per_sec: f64) -> f64 {
    flops_per_sec / CG_ARITHMETIC_INTENSITY
}

/// Percent of single-precision peak for a raw solver flop rate, including
/// the paper's 1.675× accounting factor.
pub fn percent_of_peak(raw_flops_per_sec: f64, fp32_peak_flops: f64) -> f64 {
    100.0 * raw_flops_per_sec * PEAK_ACCOUNTING_SCALE / fp32_peak_flops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_iteration_flops_is_in_paper_band() {
        // Per 5D site: 2×(10k..12k) + 50..100.
        let per_site = cg_iteration_flops(1.0);
        assert!((20_050.0..=24_100.0).contains(&per_site));
    }

    #[test]
    fn bandwidth_conversion_matches_fig3c_example() {
        // The paper quotes 975 GB/s per GPU on Sierra at the lowest GPU
        // count; with AI 1.9 that corresponds to ~1.85 TFLOP/s per GPU.
        let bw = flops_to_bandwidth(1.8525e12);
        assert!((bw / 1e9 - 975.0).abs() < 1.0);
    }

    #[test]
    fn percent_of_peak_applies_accounting_factor() {
        // 10 TFLOP/s raw on a 60 TFLOP/s node = 16.67% raw, 27.9% accounted.
        let pct = percent_of_peak(10e12, 60e12);
        assert!((pct - 27.9).abs() < 0.1);
    }
}
