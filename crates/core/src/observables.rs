//! Gauge observables beyond the plaquette: Wilson loops, the static-quark
//! potential, and the Polyakov loop.
//!
//! These are the standard diagnostics used to validate generated ensembles
//! (the paper's configurations came pre-validated from MILC; ours must be
//! checked in-house).

use crate::field::{GaugeField, GaugeLinks};
use crate::lattice::Lattice;
use crate::su3::{Su3, NC};

/// Product of links along `len` steps in direction `mu` starting at `x`.
fn line(lat: &Lattice, gauge: &GaugeField<f64>, x: usize, mu: usize, len: usize) -> Su3<f64> {
    let mut u = Su3::identity();
    let mut site = x;
    for _ in 0..len {
        u = u * gauge.link(site, mu);
        site = lat.neighbors(site).fwd[mu] as usize;
    }
    u
}

/// Site reached after `len` forward hops in `mu`.
fn hop(lat: &Lattice, x: usize, mu: usize, len: usize) -> usize {
    let mut site = x;
    for _ in 0..len {
        site = lat.neighbors(site).fwd[mu] as usize;
    }
    site
}

/// Average `r × t` Wilson loop (trace / Nc), averaged over all sites and
/// over the three spatial directions paired with time.
pub fn wilson_loop(lat: &Lattice, gauge: &GaugeField<f64>, r: usize, t: usize) -> f64 {
    assert!(r >= 1 && t >= 1);
    let total = crate::reduce::sum_sites(lat.volume(), |x| {
        let mut acc = 0.0;
        for mu in 0..3 {
            // Bottom spatial line, right temporal line, then back.
            let bottom = line(lat, gauge, x, mu, r);
            let x_r = hop(lat, x, mu, r);
            let right = line(lat, gauge, x_r, 3, t);
            let x_t = hop(lat, x, 3, t);
            let top = line(lat, gauge, x_t, mu, r);
            let left = line(lat, gauge, x, 3, t);
            let loop_ = bottom * right * top.dagger() * left.dagger();
            acc += loop_.re_trace() / NC as f64;
        }
        acc
    });
    total / (lat.volume() as f64 * 3.0)
}

/// Static-quark potential `V(r) = ln[W(r,t) / W(r,t+1)]` at separation `r`.
pub fn static_potential(lat: &Lattice, gauge: &GaugeField<f64>, r: usize, t: usize) -> f64 {
    let w1 = wilson_loop(lat, gauge, r, t);
    let w2 = wilson_loop(lat, gauge, r, t + 1);
    if w1 > 0.0 && w2 > 0.0 {
        (w1 / w2).ln()
    } else {
        f64::NAN
    }
}

/// Volume-averaged Polyakov loop: the trace of the temporal line winding
/// the lattice, `⟨(1/Nc) Tr Π_t U_4(x,t)⟩` over spatial sites. Its magnitude
/// is an order parameter for deconfinement.
pub fn polyakov_loop(lat: &Lattice, gauge: &GaugeField<f64>) -> crate::complex::C64 {
    let dims = lat.dims();
    let nt = dims[3];
    let spatial = lat.spatial_volume();
    let sum = crate::reduce::sum2_sites(spatial, |s| {
        // Spatial index -> full coords at t = 0.
        let x = s % dims[0];
        let y = (s / dims[0]) % dims[1];
        let z = s / (dims[0] * dims[1]);
        let site0 = lat.index([x, y, z, 0]);
        let lp = line(lat, gauge, site0, 3, nt);
        let tr = lp.trace();
        (tr.re / NC as f64, tr.im / NC as f64)
    });
    crate::complex::C64::new(sum.0 / spatial as f64, sum.1 / spatial as f64)
}

/// All `(r, t)` Wilson loops up to the given extents (for potential fits).
pub fn wilson_loop_table(
    lat: &Lattice,
    gauge: &GaugeField<f64>,
    r_max: usize,
    t_max: usize,
) -> Vec<Vec<f64>> {
    (1..=r_max)
        .map(|r| (1..=t_max).map(|t| wilson_loop(lat, gauge, r, t)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauge::{HeatbathParams, QuenchedEnsemble};

    #[test]
    fn unit_gauge_loops_are_one() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::<f64>::cold(&lat);
        for r in 1..=2 {
            for t in 1..=2 {
                assert!((wilson_loop(&lat, &gauge, r, t) - 1.0).abs() < 1e-12);
            }
        }
        let p = polyakov_loop(&lat, &gauge);
        assert!((p.re - 1.0).abs() < 1e-12 && p.im.abs() < 1e-14);
    }

    #[test]
    fn one_by_one_loop_is_the_plaquette() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 3);
        let w11 = wilson_loop(&lat, &gauge, 1, 1);
        // The plaquette average includes spatial-spatial planes; compare
        // against a direct temporal-plane average instead.
        let mut acc = 0.0;
        for x in 0..lat.volume() {
            for mu in 0..3 {
                let nb = lat.neighbors(x);
                let x_mu = nb.fwd[mu] as usize;
                let x_t = nb.fwd[3] as usize;
                let p = gauge.link(x, mu)
                    * gauge.link(x_mu, 3)
                    * gauge.link(x_t, mu).dagger()
                    * gauge.link(x, 3).dagger();
                acc += p.re_trace() / 3.0;
            }
        }
        let direct = acc / (lat.volume() as f64 * 3.0);
        assert!((w11 - direct).abs() < 1e-12);
    }

    #[test]
    fn wilson_loops_decay_with_area() {
        // Confinement: W(r,t) ~ exp(-σ r t); larger loops are smaller.
        let lat = Lattice::new([4, 4, 4, 8]);
        let mut ens = QuenchedEnsemble::cold_start(&lat, HeatbathParams { beta: 5.7, n_or: 2 }, 5);
        for _ in 0..15 {
            ens.update();
        }
        let g = ens.current();
        let w11 = wilson_loop(&lat, g, 1, 1);
        let w22 = wilson_loop(&lat, g, 2, 2);
        assert!(w11 > 0.0 && w22 > 0.0);
        assert!(w22 < w11, "area law: W(2,2)={w22} < W(1,1)={w11}");
    }

    #[test]
    fn static_potential_grows_with_separation() {
        let lat = Lattice::new([4, 4, 4, 8]);
        let mut ens = QuenchedEnsemble::cold_start(&lat, HeatbathParams { beta: 5.9, n_or: 2 }, 7);
        for _ in 0..15 {
            ens.update();
        }
        let g = ens.current();
        let v1 = static_potential(&lat, g, 1, 1);
        let v2 = static_potential(&lat, g, 2, 1);
        assert!(v1.is_finite() && v2.is_finite());
        assert!(v2 > v1, "V(2)={v2} should exceed V(1)={v1} (confinement)");
    }

    #[test]
    fn polyakov_loop_small_in_confined_phase() {
        let lat = Lattice::new([4, 4, 4, 8]);
        let mut ens = QuenchedEnsemble::hot_start(&lat, HeatbathParams { beta: 5.5, n_or: 1 }, 9);
        for _ in 0..10 {
            ens.update();
        }
        let p = polyakov_loop(&lat, ens.current());
        assert!(
            p.abs() < 0.3,
            "confined-phase Polyakov loop should be small: {p:?}"
        );
    }
}
