//! Rayon-shaped parallel iterators over index-splittable producers.
//!
//! The drivable sources (slices, mutable slices, chunk views, ranges,
//! vectors) implement [`Producer`]: an exact-length sequence that can be
//! split at an index. Shape-preserving adapters (`map`, `zip`, `enumerate`,
//! `cloned`/`copied`) compose producers; terminal operations split the
//! composed producer into **fixed-shape chunks derived from the input
//! length only** (never from thread count or timing) and hand the chunk
//! list to the pool. Reductions (`sum`, `fold`/`reduce`) compute one
//! partial per chunk — each chunk folded sequentially in index order — and
//! combine the partials in index order on the calling thread, which makes
//! every numeric result bit-identical at 1, 2, or N threads.
//!
//! Adapters that destroy indexability (`filter`, `filter_map`,
//! `flat_map_iter`) degrade to [`SeqIter`], a sequential iterator wrapper
//! with the same method surface — correct, just not parallel. Order-
//! sensitive searches (`find_map_first`, ...) are sequential for the same
//! reason.

use crate::pool;
use std::mem::{ManuallyDrop, MaybeUninit};

/// Fixed target chunk count for a driven parallel operation. Chosen so a
/// pool of any realistic width has slack for load balancing; MUST NOT be
/// derived from the pool width, or results would depend on it.
const TARGET_CHUNKS: usize = 64;

/// Chunk length for an input of `len` items: `len`-derived only.
fn fixed_grain(len: usize, min_len: usize) -> usize {
    len.div_ceil(TARGET_CHUNKS).max(min_len).max(1)
}

/// An exact-length, index-splittable source of items.
pub trait Producer: Sized + Send {
    type Item: Send;
    type IntoIter: Iterator<Item = Self::Item>;
    fn length(&self) -> usize;
    /// Split into `[0, mid)` and `[mid, len)`. `mid <= length()`.
    fn split_at(self, mid: usize) -> (Self, Self);
    fn into_seq(self) -> Self::IntoIter;
}

/// Split a producer into consecutive chunks of at most `grain` items.
fn split_chunks<P: Producer>(mut p: P, grain: usize) -> Vec<P> {
    let mut out = Vec::with_capacity(p.length().div_ceil(grain.max(1)).max(1));
    while p.length() > grain {
        let (head, rest) = p.split_at(grain);
        out.push(head);
        p = rest;
    }
    out.push(p);
    out
}

/// One-shot per-chunk ownership slots, claimed by chunk index. Sound
/// because the pool hands out each chunk index exactly once.
struct Slots<P>(Vec<std::cell::UnsafeCell<Option<P>>>);
// SAFETY: each `UnsafeCell` slot is accessed by exactly one thread (the one
// the pool hands chunk index `i` to), so shared `&Slots` never aliases a
// mutable access; `P: Send` lets that single access happen off-thread.
unsafe impl<P: Send> Sync for Slots<P> {}

impl<P> Slots<P> {
    fn new(chunks: Vec<P>) -> Self {
        Slots(
            chunks
                .into_iter()
                .map(|c| std::cell::UnsafeCell::new(Some(c)))
                .collect(),
        )
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    /// Take chunk `i`. Must be called at most once per index.
    fn take(&self, i: usize) -> P {
        // SAFETY: the pool's cursor hands out each chunk index exactly once,
        // so no other thread holds a reference into slot `i`; the `expect`
        // backstops that invariant.
        unsafe { (*self.0[i].get()).take().expect("chunk executed twice") }
    }
}

/// Raw pointer that may cross threads; targets are disjoint per chunk.
/// Accessed via `get()` so closures capture `&SendPtr` (which is `Sync`)
/// rather than the raw-pointer field itself.
struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only ever offset into per-chunk regions that are
// disjoint by construction (chunk `i` writes `starts[i]..starts[i+1]`), so
// moving it across threads cannot create overlapping access.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: `&SendPtr` only exposes the raw pointer via `get()`; all writes
// through it target the disjoint per-chunk regions above.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Run `f` over every item, chunked across the pool.
fn drive_each<P, F>(p: P, min_len: usize, f: &F)
where
    P: Producer,
    F: Fn(P::Item) + Sync,
{
    let grain = fixed_grain(p.length(), min_len);
    let slots = Slots::new(split_chunks(p, grain));
    pool::run(slots.len(), &|i| {
        for item in slots.take(i).into_seq() {
            f(item);
        }
    });
}

/// Materialize the producer into a `Vec`, preserving index order.
fn drive_to_vec<P: Producer>(p: P, min_len: usize) -> Vec<P::Item> {
    let n = p.length();
    let grain = fixed_grain(n, min_len);
    let chunks = split_chunks(p, grain);
    let mut starts = Vec::with_capacity(chunks.len());
    let mut acc = 0usize;
    for c in &chunks {
        starts.push(acc);
        acc += c.length();
    }
    debug_assert_eq!(acc, n);
    let slots = Slots::new(chunks);

    let mut out: Vec<MaybeUninit<P::Item>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit needs no initialization; elements are written
    // below before the transmute to Vec<Item>.
    unsafe { out.set_len(n) };
    let base = SendPtr(out.as_mut_ptr());
    let starts = &starts;
    pool::run(slots.len(), &|i| {
        // SAFETY: `starts[i] <= n` and chunk `i` owns exactly the region
        // `starts[i] .. starts[i] + chunk_len`, disjoint from every other
        // chunk, so this offset and the writes below stay in bounds and
        // never alias another thread's writes.
        let mut w = unsafe { base.get().add(starts[i]) };
        for item in slots.take(i).into_seq() {
            // SAFETY: chunk lengths tile `0..n`, so `w` walks only this
            // chunk's owned region of the `n`-capacity allocation.
            unsafe {
                w.write(MaybeUninit::new(item));
                w = w.add(1);
            }
        }
    });
    // SAFETY: every slot was written exactly once (chunks tile 0..n); a
    // panic in a chunk propagates out of pool::run before reaching here.
    let mut out = ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut P::Item, out.len(), out.capacity()) }
}

/// Map every fixed-shape chunk to one value, returned in chunk-index order.
fn drive_chunks<P, T, F>(p: P, min_len: usize, per_chunk: &F) -> Vec<T>
where
    P: Producer,
    T: Send,
    F: Fn(P) -> T + Sync,
{
    let grain = fixed_grain(p.length(), min_len);
    let chunks = split_chunks(p, grain);
    let n_chunks = chunks.len();
    let slots = Slots::new(chunks);

    let mut partials: Vec<MaybeUninit<T>> = Vec::with_capacity(n_chunks);
    // SAFETY: as in `drive_to_vec` — slot `i` is written by chunk `i`.
    unsafe { partials.set_len(n_chunks) };
    let base = SendPtr(partials.as_mut_ptr());
    pool::run(n_chunks, &|i| {
        let v = per_chunk(slots.take(i));
        // SAFETY: `i < n_chunks` (the pool's cursor stops there) and each
        // chunk writes only its own slot, so the write is in bounds and
        // race-free.
        unsafe { base.get().add(i).write(MaybeUninit::new(v)) };
    });
    let mut partials = ManuallyDrop::new(partials);
    // SAFETY: every slot `0..n_chunks` was written exactly once above, so
    // the buffer is fully initialized; `MaybeUninit<T>` has `T`'s layout,
    // and `ManuallyDrop` keeps the allocation from double-freeing.
    unsafe {
        Vec::from_raw_parts(
            partials.as_mut_ptr() as *mut T,
            partials.len(),
            partials.capacity(),
        )
    }
}

/// One partial per chunk: each chunk folded sequentially from
/// `identity()`, partials returned in chunk-index order.
fn drive_fold<P, T, ID, F>(p: P, min_len: usize, identity: &ID, fold_op: &F) -> Vec<T>
where
    P: Producer,
    T: Send,
    ID: Fn() -> T + Sync,
    F: Fn(T, P::Item) -> T + Sync,
{
    drive_chunks(p, min_len, &|chunk: P| {
        let mut acc = identity();
        for item in chunk.into_seq() {
            acc = fold_op(acc, item);
        }
        acc
    })
}

/// A parallel iterator: a producer plus a minimum chunk length.
pub struct ParIter<P: Producer> {
    p: P,
    min_len: usize,
}

impl<P: Producer> ParIter<P> {
    pub(crate) fn new(p: P) -> Self {
        ParIter { p, min_len: 1 }
    }

    /// Lower bound on the chunk length used when driving this iterator.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = self.min_len.max(min.max(1));
        self
    }

    pub fn map<U, F>(self, f: F) -> ParIter<MapP<P, F>>
    where
        U: Send,
        F: Fn(P::Item) -> U + Sync + Send + Clone,
    {
        ParIter {
            p: MapP { base: self.p, f },
            min_len: self.min_len,
        }
    }

    pub fn enumerate(self) -> ParIter<EnumerateP<P>> {
        ParIter {
            p: EnumerateP {
                base: self.p,
                offset: 0,
            },
            min_len: self.min_len,
        }
    }

    /// Pair with another indexed iterator, truncating to the shorter.
    pub fn zip<Q: Producer>(self, other: ParIter<Q>) -> ParIter<ZipP<P, Q>> {
        let n = self.p.length().min(other.p.length());
        let (a, _) = self.p.split_at(n);
        let (b, _) = other.p.split_at(n);
        ParIter {
            p: ZipP { a, b },
            min_len: self.min_len.max(other.min_len),
        }
    }

    pub fn cloned<'a, T>(self) -> ParIter<ClonedP<P>>
    where
        T: 'a + Clone + Send + Sync,
        P: Producer<Item = &'a T>,
    {
        ParIter {
            p: ClonedP(self.p),
            min_len: self.min_len,
        }
    }

    pub fn copied<'a, T>(self) -> ParIter<ClonedP<P>>
    where
        T: 'a + Copy + Send + Sync,
        P: Producer<Item = &'a T>,
    {
        ParIter {
            p: ClonedP(self.p),
            min_len: self.min_len,
        }
    }

    // ---- indexability-breaking adapters: sequential fallback ----

    pub fn filter<F: FnMut(&P::Item) -> bool>(
        self,
        f: F,
    ) -> SeqIter<std::iter::Filter<P::IntoIter, F>> {
        SeqIter(self.p.into_seq().filter(f))
    }

    pub fn filter_map<U, F: FnMut(P::Item) -> Option<U>>(
        self,
        f: F,
    ) -> SeqIter<std::iter::FilterMap<P::IntoIter, F>> {
        SeqIter(self.p.into_seq().filter_map(f))
    }

    pub fn flat_map_iter<U: IntoIterator, F: FnMut(P::Item) -> U>(
        self,
        f: F,
    ) -> SeqIter<std::iter::FlatMap<P::IntoIter, U, F>> {
        SeqIter(self.p.into_seq().flat_map(f))
    }

    // ---- parallel terminals (fixed-shape, deterministic) ----

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Sync + Send,
    {
        drive_each(self.p, self.min_len, &f);
    }

    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        // Parallel materialization in index order, then a (usually
        // in-place, for C = Vec) sequential conversion.
        drive_to_vec(self.p, self.min_len).into_iter().collect()
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        let partials = drive_chunks(self.p, self.min_len, &|chunk| chunk.into_seq().sum::<S>());
        partials.into_iter().sum()
    }

    /// rayon-signature `reduce`: identity closure + associative operation.
    /// Per-chunk sequential folds, partials combined in index order. A
    /// single-chunk input reduces to exactly the sequential fold's bits
    /// (the identity is not re-injected when combining partials).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Sync + Send,
        OP: Fn(P::Item, P::Item) -> P::Item + Sync + Send,
    {
        let partials = drive_fold(self.p, self.min_len, &identity, &op);
        partials.into_iter().reduce(op).unwrap_or_else(identity)
    }

    /// rayon-signature `fold`: produces one partial accumulator per fixed
    /// chunk, to be combined with `reduce`.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<VecP<T>>
    where
        T: Send,
        ID: Fn() -> T + Sync + Send,
        F: Fn(T, P::Item) -> T + Sync + Send,
    {
        ParIter::new(VecP(drive_fold(self.p, self.min_len, &identity, &fold_op)))
    }

    // ---- order-sensitive / rarely-hot terminals: sequential ----

    pub fn count(self) -> usize {
        self.p.length()
    }

    pub fn min(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        self.p.into_seq().min()
    }

    pub fn max(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        self.p.into_seq().max()
    }

    pub fn any<F: FnMut(P::Item) -> bool>(self, f: F) -> bool {
        let mut it = self.p.into_seq();
        it.any(f)
    }

    pub fn all<F: FnMut(P::Item) -> bool>(self, f: F) -> bool {
        let mut it = self.p.into_seq();
        it.all(f)
    }

    pub fn find_map_first<U, F: FnMut(P::Item) -> Option<U>>(self, f: F) -> Option<U> {
        let mut it = self.p.into_seq();
        it.find_map(f)
    }

    pub fn find_first<F: FnMut(&P::Item) -> bool>(self, f: F) -> Option<P::Item> {
        let mut it = self.p.into_seq();
        it.find(f)
    }

    pub fn position_first<F: FnMut(P::Item) -> bool>(self, f: F) -> Option<usize> {
        let mut it = self.p.into_seq();
        it.position(f)
    }
}

/// Sequential fallback with the rayon method surface, produced by
/// adapters that destroy indexability. Runs on the calling thread.
pub struct SeqIter<I>(pub(crate) I);

impl<I: Iterator> SeqIter<I> {
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> SeqIter<std::iter::Map<I, F>> {
        SeqIter(self.0.map(f))
    }
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> SeqIter<std::iter::Filter<I, F>> {
        SeqIter(self.0.filter(f))
    }
    pub fn filter_map<U, F: FnMut(I::Item) -> Option<U>>(
        self,
        f: F,
    ) -> SeqIter<std::iter::FilterMap<I, F>> {
        SeqIter(self.0.filter_map(f))
    }
    pub fn flat_map_iter<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> SeqIter<std::iter::FlatMap<I, U, F>> {
        SeqIter(self.0.flat_map(f))
    }
    pub fn enumerate(self) -> SeqIter<std::iter::Enumerate<I>> {
        SeqIter(self.0.enumerate())
    }
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
    pub fn count(self) -> usize {
        self.0.count()
    }
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> SeqIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        SeqIter(std::iter::once(self.0.fold(identity(), fold_op)))
    }
    pub fn any<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
        let mut it = self.0;
        it.any(f)
    }
    pub fn all<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
        let mut it = self.0;
        it.all(f)
    }
    pub fn find_map_first<U, F: FnMut(I::Item) -> Option<U>>(self, f: F) -> Option<U> {
        let mut it = self.0;
        it.find_map(f)
    }
    pub fn find_first<F: FnMut(&I::Item) -> bool>(self, f: F) -> Option<I::Item> {
        let mut it = self.0;
        it.find(f)
    }
    pub fn position_first<F: FnMut(I::Item) -> bool>(self, f: F) -> Option<usize> {
        let mut it = self.0;
        it.position(f)
    }
}

// ---------------------------------------------------------------------
// Producers
// ---------------------------------------------------------------------

pub struct SliceP<'a, T>(&'a [T]);

impl<'a, T: Sync> Producer for SliceP<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn length(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at(mid);
        (SliceP(a), SliceP(b))
    }
    fn into_seq(self) -> Self::IntoIter {
        self.0.iter()
    }
}

pub struct SliceMutP<'a, T>(&'a mut [T]);

impl<'a, T: Send> Producer for SliceMutP<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn length(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at_mut(mid);
        (SliceMutP(a), SliceMutP(b))
    }
    fn into_seq(self) -> Self::IntoIter {
        self.0.iter_mut()
    }
}

pub struct ChunksP<'a, T> {
    s: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksP<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;
    fn length(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let cut = (mid * self.size).min(self.s.len());
        let (a, b) = self.s.split_at(cut);
        (
            ChunksP {
                s: a,
                size: self.size,
            },
            ChunksP {
                s: b,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        self.s.chunks(self.size)
    }
}

pub struct ChunksExactP<'a, T> {
    /// Pre-truncated to a multiple of `size` (remainder dropped, matching
    /// `slice::chunks_exact`).
    s: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksExactP<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::ChunksExact<'a, T>;
    fn length(&self) -> usize {
        self.s.len() / self.size
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.s.split_at(mid * self.size);
        (
            ChunksExactP {
                s: a,
                size: self.size,
            },
            ChunksExactP {
                s: b,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        self.s.chunks_exact(self.size)
    }
}

pub struct ChunksMutP<'a, T> {
    s: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutP<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;
    fn length(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let cut = (mid * self.size).min(self.s.len());
        let (a, b) = self.s.split_at_mut(cut);
        (
            ChunksMutP {
                s: a,
                size: self.size,
            },
            ChunksMutP {
                s: b,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        self.s.chunks_mut(self.size)
    }
}

pub struct ChunksExactMutP<'a, T> {
    /// Pre-truncated to a multiple of `size`.
    s: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksExactMutP<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksExactMut<'a, T>;
    fn length(&self) -> usize {
        self.s.len() / self.size
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.s.split_at_mut(mid * self.size);
        (
            ChunksExactMutP {
                s: a,
                size: self.size,
            },
            ChunksExactMutP {
                s: b,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        self.s.chunks_exact_mut(self.size)
    }
}

pub struct WindowsP<'a, T> {
    s: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for WindowsP<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Windows<'a, T>;
    fn length(&self) -> usize {
        (self.s.len() + 1).saturating_sub(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        // Windows overlap: the left part needs `mid + size - 1` elements.
        let left_end = (mid + self.size - 1).min(self.s.len());
        (
            WindowsP {
                s: &self.s[..left_end],
                size: self.size,
            },
            WindowsP {
                s: &self.s[mid..],
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        self.s.windows(self.size)
    }
}

pub struct RangeP {
    start: usize,
    end: usize,
}

impl Producer for RangeP {
    type Item = usize;
    type IntoIter = std::ops::Range<usize>;
    fn length(&self) -> usize {
        self.end - self.start
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let cut = self.start + mid;
        (
            RangeP {
                start: self.start,
                end: cut,
            },
            RangeP {
                start: cut,
                end: self.end,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        self.start..self.end
    }
}

pub struct VecP<T>(Vec<T>);

impl<T: Send> Producer for VecP<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn length(&self) -> usize {
        self.0.len()
    }
    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let tail = self.0.split_off(mid);
        (self, VecP(tail))
    }
    fn into_seq(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

pub struct MapP<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> Producer for MapP<P, F>
where
    P: Producer,
    U: Send,
    F: Fn(P::Item) -> U + Sync + Send + Clone,
{
    type Item = U;
    type IntoIter = std::iter::Map<P::IntoIter, F>;
    fn length(&self) -> usize {
        self.base.length()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            MapP {
                base: a,
                f: self.f.clone(),
            },
            MapP { base: b, f: self.f },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        self.base.into_seq().map(self.f)
    }
}

pub struct EnumerateP<P> {
    base: P,
    offset: usize,
}

/// `Enumerate` with a starting offset, so split-off right halves keep
/// their global indices.
pub struct OffsetEnumerate<I> {
    it: I,
    next: usize,
}

impl<I: Iterator> Iterator for OffsetEnumerate<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.it.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, item))
    }
}

impl<P: Producer> Producer for EnumerateP<P> {
    type Item = (usize, P::Item);
    type IntoIter = OffsetEnumerate<P::IntoIter>;
    fn length(&self) -> usize {
        self.base.length()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            EnumerateP {
                base: a,
                offset: self.offset,
            },
            EnumerateP {
                base: b,
                offset: self.offset + mid,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        OffsetEnumerate {
            it: self.base.into_seq(),
            next: self.offset,
        }
    }
}

pub struct ZipP<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipP<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;
    fn length(&self) -> usize {
        self.a.length().min(self.b.length())
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(mid);
        let (b1, b2) = self.b.split_at(mid);
        (ZipP { a: a1, b: b1 }, ZipP { a: a2, b: b2 })
    }
    fn into_seq(self) -> Self::IntoIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

pub struct ClonedP<P>(P);

impl<'a, T, P> Producer for ClonedP<P>
where
    T: 'a + Clone + Send + Sync,
    P: Producer<Item = &'a T>,
{
    type Item = T;
    type IntoIter = std::iter::Cloned<P::IntoIter>;
    fn length(&self) -> usize {
        self.0.length()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at(mid);
        (ClonedP(a), ClonedP(b))
    }
    fn into_seq(self) -> Self::IntoIter {
        self.0.into_seq().cloned()
    }
}

// ---------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------

pub trait IntoParallelIterator {
    type Producer: Producer<Item = Self::Item>;
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Producer>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Producer = RangeP;
    type Item = usize;
    fn into_par_iter(self) -> ParIter<RangeP> {
        ParIter::new(RangeP {
            start: self.start,
            end: self.end.max(self.start),
        })
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Producer = VecP<T>;
    type Item = T;
    fn into_par_iter(self) -> ParIter<VecP<T>> {
        ParIter::new(VecP(self))
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Producer = SliceP<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<SliceP<'a, T>> {
        ParIter::new(SliceP(self))
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Producer = SliceP<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<SliceP<'a, T>> {
        ParIter::new(SliceP(self))
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<SliceP<'_, T>>;
    fn par_chunks(&self, size: usize) -> ParIter<ChunksP<'_, T>>;
    fn par_chunks_exact(&self, size: usize) -> ParIter<ChunksExactP<'_, T>>;
    fn par_windows(&self, size: usize) -> ParIter<WindowsP<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceP<'_, T>> {
        ParIter::new(SliceP(self))
    }
    fn par_chunks(&self, size: usize) -> ParIter<ChunksP<'_, T>> {
        assert!(size > 0, "chunk size must be nonzero");
        ParIter::new(ChunksP { s: self, size })
    }
    fn par_chunks_exact(&self, size: usize) -> ParIter<ChunksExactP<'_, T>> {
        assert!(size > 0, "chunk size must be nonzero");
        let n = self.len() / size * size;
        ParIter::new(ChunksExactP {
            s: &self[..n],
            size,
        })
    }
    fn par_windows(&self, size: usize) -> ParIter<WindowsP<'_, T>> {
        assert!(size > 0, "window size must be nonzero");
        ParIter::new(WindowsP { s: self, size })
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutP<'_, T>>;
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutP<'_, T>>;
    fn par_chunks_exact_mut(&mut self, size: usize) -> ParIter<ChunksExactMutP<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutP<'_, T>> {
        ParIter::new(SliceMutP(self))
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutP<'_, T>> {
        assert!(size > 0, "chunk size must be nonzero");
        ParIter::new(ChunksMutP { s: self, size })
    }
    fn par_chunks_exact_mut(&mut self, size: usize) -> ParIter<ChunksExactMutP<'_, T>> {
        assert!(size > 0, "chunk size must be nonzero");
        let n = self.len() / size * size;
        ParIter::new(ChunksExactMutP {
            s: &mut self[..n],
            size,
        })
    }
}
