//! GPU memory-footprint model of the mixed-precision DWF solve.
//!
//! The paper notes that data parallelism alone cannot be abandoned: "we will
//! in general need a minimum number of GPUs for a given calculation due to
//! memory overheads". This module estimates the solver's working set per
//! GPU so campaigns (and tests) can derive that minimum.

use crate::decomp::Decomposition;
use serde::{Deserialize, Serialize};

/// Bytes per 4D site of gauge links: 4 directions × 18 reals, kept in both
/// single (compute) and half (bulk) precision by the double-half solver.
const GAUGE_BYTES_PER_SITE: f64 = 4.0 * 18.0 * (4.0 + 2.0);

/// Bytes per 5D site of one fermion vector in half precision (24 reals) —
/// the storage precision of the bulk CG workspace.
const VECTOR_BYTES_PER_SITE_HALF: f64 = 24.0 * 2.0;

/// CG working set in vectors: solution, residual, direction, operator
/// temporaries, plus the double-precision reliable-update copies (counted
/// as 4 half-equivalents each).
const CG_VECTORS_HALF_EQUIV: f64 = 8.0 + 3.0 * 4.0;

/// Memory estimate for one GPU's share of a solve.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Gauge field bytes.
    pub gauge_bytes: f64,
    /// Fermion workspace bytes.
    pub vector_bytes: f64,
    /// Halo buffer bytes.
    pub halo_bytes: f64,
}

impl MemoryFootprint {
    /// Total bytes.
    pub fn total(&self) -> f64 {
        self.gauge_bytes + self.vector_bytes + self.halo_bytes
    }

    /// Total in GiB.
    pub fn total_gib(&self) -> f64 {
        self.total() / (1024.0 * 1024.0 * 1024.0)
    }
}

/// Estimate the per-GPU footprint of a `dims`×`l5` solve decomposed over
/// `n_gpus` GPUs (with `gpus_per_node` for the halo assignment).
pub fn solve_footprint(
    dims: [usize; 4],
    l5: usize,
    n_gpus: usize,
    gpus_per_node: usize,
) -> Option<MemoryFootprint> {
    let d = Decomposition::best(dims, l5, n_gpus, gpus_per_node)?;
    let local4d = d.local_volume() as f64;
    let local5d = d.local_sites_5d();
    let (intra, inter) = d.halo_bytes();
    Some(MemoryFootprint {
        gauge_bytes: local4d * GAUGE_BYTES_PER_SITE,
        vector_bytes: local5d * VECTOR_BYTES_PER_SITE_HALF * CG_VECTORS_HALF_EQUIV,
        // Send + receive staging for every face.
        halo_bytes: 2.0 * (intra + inter),
    })
}

/// Smallest GPU count (from the given ladder) whose per-GPU footprint fits
/// in `hbm_gib` GiB — the "minimum number of GPUs" of the paper.
pub fn min_gpus_for_memory(
    dims: [usize; 4],
    l5: usize,
    gpus_per_node: usize,
    hbm_gib: f64,
    ladder: &[usize],
) -> Option<usize> {
    ladder.iter().copied().find(|&g| {
        solve_footprint(dims, l5, g, gpus_per_node)
            .map(|f| f.total_gib() <= hbm_gib * 0.9) // leave headroom
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_shrinks_with_gpu_count() {
        let f4 = solve_footprint([48, 48, 48, 64], 12, 4, 4).unwrap();
        let f16 = solve_footprint([48, 48, 48, 64], 12, 16, 4).unwrap();
        assert!(f16.total() < f4.total());
        assert!(f16.gauge_bytes * 3.9 < f4.gauge_bytes * 4.1);
    }

    #[test]
    fn production_lattice_needs_multiple_v100s() {
        // 48³×64×12 on 16 GB V100s: a single GPU cannot hold the working
        // set; a 4-node (16-GPU) group fits comfortably — the paper's group.
        let ladder = [1usize, 2, 4, 8, 16, 32];
        let min = min_gpus_for_memory([48, 48, 48, 64], 12, 4, 16.0, &ladder).expect("some fit");
        assert!(min > 1, "one GPU must NOT suffice (got {min})");
        assert!(min <= 16, "a 4-node group must fit (got {min})");
        let f = solve_footprint([48, 48, 48, 64], 12, 1, 4).unwrap();
        assert!(
            f.total_gib() > 16.0,
            "single-GPU footprint {} GiB",
            f.total_gib()
        );
    }

    #[test]
    fn big_fig4_lattice_needs_hundreds_of_gpus() {
        let ladder: Vec<usize> = (0..12).map(|k| 1usize << k).collect();
        let min = min_gpus_for_memory([96, 96, 96, 144], 20, 6, 16.0, &ladder).expect("fits");
        assert!(
            min >= 64,
            "the 96^3x144x20 proof-of-concept needs a large allocation: {min}"
        );
    }

    #[test]
    fn undecomposable_counts_give_none() {
        assert!(solve_footprint([48, 48, 48, 64], 12, 7, 4).is_none());
    }
}
