//! End-to-end fault-injection recovery: the CRC-framed transport, the
//! checkpoint-restart CG, and graceful rank-loss degradation, exercised
//! together over the sharded Möbius normal operator.
//!
//! The load-bearing claims:
//!
//! - wire faults (corruption, drops, duplicates, reordering, latency) are
//!   healed below the solver — the converged solution is **bit-identical**
//!   to the fault-free solve, for every communication policy;
//! - a permanent rank loss degrades the 2×2×1×1 grid to 1×2×1×1, resumes
//!   from the last checkpoint, and still produces the bit-identical answer;
//! - the recovery pipeline leaves a deterministic observability trail:
//!   a scripted chaos run under a [`ManualClock`] renders the same event
//!   timeline every time (golden in `tests/goldens/chaos_timeline.txt`).
//!
//! Regenerate the golden after an intentional behaviour change with:
//! `UPDATE_GOLDENS=1 cargo test --test chaos_recovery`

use lqcd::core::comms::{policy_from_index, CommFaultProfile, CommRetryPolicy, ShardedNormal};
use lqcd::core::prelude::*;
use lqcd::core::solver::{cg_ft, CgParams, FallibleOp, FtParams, SolverOutcome};
use lqcd::obs::ManualClock;
use obs::{assert_counter, assert_event_count, Registry};
use std::path::PathBuf;

const DIMS: [usize; 4] = [4, 4, 4, 4];
const L5: usize = 2;
const GPUS_PER_NODE: usize = 4;

fn setup() -> (Lattice, GaugeField<f64>, MobiusParams, Vec<Spinor<f64>>) {
    let lat = Lattice::new(DIMS);
    let gauge = GaugeField::<f64>::hot(&lat, 7);
    let params = MobiusParams::standard(L5, 0.08);
    let b = FermionField::<f64>::gaussian(L5 * lat.volume(), 8).data;
    (lat, gauge, params, b)
}

#[allow(clippy::too_many_arguments)]
fn solve(
    lat: &Lattice,
    gauge: &GaugeField<f64>,
    params: MobiusParams,
    b: &[Spinor<f64>],
    grid: [usize; 4],
    policy_idx: usize,
    profile: CommFaultProfile,
    checkpoint_every: usize,
) -> (SolverOutcome, Vec<Spinor<f64>>, [usize; 4], usize) {
    let mut op = ShardedNormal::new(
        lat,
        gauge,
        params,
        grid,
        GPUS_PER_NODE,
        policy_from_index(policy_idx),
    )
    .expect("grid divides the lattice");
    op.set_fault_profile(profile, CommRetryPolicy::default());
    let ft = FtParams {
        cg: CgParams {
            tol: 1e-6,
            max_iter: 400,
        },
        checkpoint_every,
        max_comm_restarts: 32,
        max_total_iters: 2000,
    };
    let mut x = vec![Spinor::zero(); FallibleOp::vec_len(&op)];
    let outcome = cg_ft(&mut op, &mut x, b, &ft, None);
    let grid_after = op.grid();
    let degradations = op.degradations();
    (outcome, x, grid_after, degradations)
}

fn mild_profile() -> CommFaultProfile {
    CommFaultProfile {
        corrupt_prob: 0.03,
        drop_prob: 0.03,
        duplicate_prob: 0.025,
        reorder_prob: 0.025,
        delay_prob: 0.05,
        ..CommFaultProfile::default()
    }
}

/// Wire faults at mild intensity are healed entirely below the solver:
/// every policy converges to the bit-identical solution of its fault-free
/// twin, with zero comm restarts reaching the solver layer or not — either
/// way, the answer must not change by a single bit.
#[test]
fn wire_faults_preserve_bit_identical_solutions() {
    let (lat, gauge, params, b) = setup();
    let grid = [2, 2, 1, 1];
    let (clean_outcome, clean_x, _, _) = solve(
        &lat,
        &gauge,
        params,
        &b,
        grid,
        0,
        CommFaultProfile::default(),
        10,
    );
    assert!(clean_outcome.is_converged(), "clean solve must converge");
    let clean_res = clean_outcome.stats().final_rel_residual;

    for policy_idx in 0..6 {
        let (outcome, x, _, degradations) = solve(
            &lat,
            &gauge,
            params,
            &b,
            grid,
            policy_idx,
            mild_profile(),
            10,
        );
        assert!(
            outcome.is_converged(),
            "policy {policy_idx} under mild faults must converge: {outcome:?}"
        );
        assert_eq!(degradations, 0, "mild faults must not degrade the grid");
        assert_eq!(
            outcome.stats().final_rel_residual.to_bits(),
            clean_res.to_bits(),
            "policy {policy_idx}: residual must be bit-identical to the clean solve"
        );
        assert_eq!(
            x, clean_x,
            "policy {policy_idx}: solution must be bit-identical to the clean solve"
        );
    }
}

/// A permanent rank loss mid-solve: the operator rebuilds on the surviving
/// 1×2×1×1 grid, the solver restores from its last checkpoint, and the
/// final solution is still bit-identical to the fault-free 4-rank solve.
#[test]
fn rank_loss_degrades_and_resumes_bit_identically() {
    let (lat, gauge, params, b) = setup();
    let grid = [2, 2, 1, 1];
    let (clean_outcome, clean_x, _, _) = solve(
        &lat,
        &gauge,
        params,
        &b,
        grid,
        0,
        CommFaultProfile::default(),
        10,
    );
    assert!(clean_outcome.is_converged());

    let profile = CommFaultProfile {
        lost_rank: Some(3),
        lost_at_apply: 30,
        ..mild_profile()
    };

    let reg = Registry::new();
    let (outcome, x, grid_after, degradations) = {
        let _guard = reg.install_scoped();
        solve(&lat, &gauge, params, &b, grid, 0, profile, 10)
    };
    assert!(
        outcome.is_converged(),
        "solve must survive the rank loss: {outcome:?}"
    );
    assert_eq!(degradations, 1, "exactly one graceful degradation");
    assert_eq!(grid_after, [1, 2, 1, 1], "largest even factor halves first");
    assert_eq!(
        outcome.stats().final_rel_residual.to_bits(),
        clean_outcome.stats().final_rel_residual.to_bits(),
        "residual must survive the 4→2 degradation bit-identically"
    );
    assert_eq!(
        x, clean_x,
        "solution must be bit-identical after degradation"
    );
    assert_counter!(reg, "comms.rank_losses", 1);
    assert_event_count!(reg, "comms.degrade", 1);
    assert!(
        outcome.stats().comm_restarts >= 1,
        "the rank loss must have forced at least one checkpoint restore"
    );
}

/// Without checkpoints the same rank-loss scenario still completes (it
/// restarts from scratch on the surviving grid) but pays for the full
/// replay: strictly more iterations than the checkpointed run.
#[test]
fn checkpoints_bound_the_replay_cost() {
    let (lat, gauge, params, b) = setup();
    let grid = [2, 2, 1, 1];
    let profile = CommFaultProfile {
        lost_rank: Some(3),
        lost_at_apply: 30,
        ..CommFaultProfile::default()
    };

    let (with_ckpt, _, _, _) = solve(&lat, &gauge, params, &b, grid, 0, profile, 10);
    let (without_ckpt, _, _, _) = solve(&lat, &gauge, params, &b, grid, 0, profile, 0);
    assert!(with_ckpt.is_converged() && without_ckpt.is_converged());
    assert!(
        with_ckpt.stats().iterations < without_ckpt.stats().iterations,
        "checkpointing must replay less: {} vs {}",
        with_ckpt.stats().iterations,
        without_ckpt.stats().iterations
    );
}

/// Scripted chaos run under a manual clock: heavy corruption forces CRC
/// rejects, retries, retransmissions, and checkpoint restores, and the
/// whole recovery pipeline leaves a deterministic event timeline.
#[test]
fn chaos_timeline_matches_golden() {
    let (lat, gauge, params, b) = setup();
    let reg = Registry::new();
    reg.set_clock(ManualClock::new(0.0));

    let (outcome, stats) = {
        let _guard = reg.install_scoped();
        let mut op = ShardedNormal::new(
            &lat,
            &gauge,
            params,
            [2, 1, 1, 1],
            GPUS_PER_NODE,
            policy_from_index(0),
        )
        .expect("2x1x1x1 divides the lattice");
        op.set_fault_profile(
            CommFaultProfile {
                corrupt_prob: 0.35,
                drop_prob: 0.05,
                ..CommFaultProfile::default()
            },
            CommRetryPolicy::default(),
        );
        let ft = FtParams {
            cg: CgParams {
                tol: 1e-30, // unreachable: run the full scripted window
                max_iter: 12,
            },
            checkpoint_every: 4,
            max_comm_restarts: 64,
            max_total_iters: 200,
        };
        let mut x = vec![Spinor::zero(); FallibleOp::vec_len(&op)];
        let outcome = cg_ft(&mut op, &mut x, &b, &ft, None);
        let stats = *outcome.stats();
        (outcome, stats)
    };
    assert!(
        matches!(outcome, SolverOutcome::MaxIterations { .. }),
        "the scripted window must exhaust its 12 recurrence iterations: {outcome:?}"
    );

    // The recovery machinery must actually have fired, and its counters
    // must agree with the event stream.
    assert!(stats.comm_restarts >= 1, "scripted run must restore");
    assert_counter!(reg, "solver.restarts", stats.comm_restarts as u64);
    assert_counter!(reg, "solver.checkpoints", stats.checkpoints as u64);
    assert_event_count!(reg, "solver.restore", stats.comm_restarts as u64);
    assert_event_count!(reg, "solver.checkpoint", stats.checkpoints as u64);
    assert!(
        reg.counter("comms.crc_failures").get() >= 1,
        "corruption must be caught by the frame CRC"
    );
    assert!(
        reg.counter("comms.retries").get() >= reg.counter("comms.crc_failures").get(),
        "every CRC reject NACKs a retry (plus drop/delay timeouts)"
    );
    let timeline = reg.events().render_timeline();
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/chaos_timeline.txt");
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &timeline).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDENS=1 to create it",
            path.display()
        )
    });
    if timeline != golden {
        let first_diff = timeline
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| timeline.lines().count().min(golden.lines().count()));
        panic!(
            "chaos timeline diverged from golden at line {} \
             (got {} lines, golden {}):\n  got:    {:?}\n  golden: {:?}\n\
             rerun with UPDATE_GOLDENS=1 if the change is intentional",
            first_diff + 1,
            timeline.lines().count(),
            golden.lines().count(),
            timeline.lines().nth(first_diff).unwrap_or("<eof>"),
            golden.lines().nth(first_diff).unwrap_or("<eof>"),
        );
    }
}
