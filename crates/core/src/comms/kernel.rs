//! The sharded halo-exchange dslash: the communication policies *executed*,
//! not just modeled.
//!
//! [`ShardedHopping`] runs the Wilson hopping stencil over a
//! [`DomainDecomposition`], exchanging face buffers between ranks through
//! the in-memory [`Mailboxes`] transport. The per-site arithmetic is
//! [`hop_site`] — the same function the single-domain [`HoppingKernel`]
//! calls — applied to ghost spinors and gauge links gathered bit-exactly
//! from the global field, so the output is bit-identical to the
//! single-domain kernel at any rank grid, thread width, and precision.
//!
//! The [`CommPolicy`] knobs change execution, not just a cost formula:
//!
//! - `Coarse` exchanges every direction, unpacks everything, then runs one
//!   fused pass over all sites (no overlap window).
//! - `Fine` posts all sends, computes the interior while messages are "in
//!   flight" (the measured overlap window), then pipelines per direction:
//!   unpack `mu`, compute the sites whose last missing ghosts were `mu`'s.
//! - `StagedDma` copies pack → staging → wire → ghost (3 copies/message),
//!   `ZeroCopy` packs straight into the wire buffer (2), and `GdrDirect`
//!   skips the channel: the receiver gathers the remote face in place (1).
//!
//! Every apply cross-checks its actual pack/unpack event counts against the
//! analytic expectation (exactly-once delivery) and accumulates
//! [`CommStats`], published to the `obs` registry as `comms.*` metrics.

use super::domain::DomainDecomposition;
use super::transport::{CommStats, Mailboxes, BOX_BWD, BOX_FWD};
use crate::dirac::{hop_site, MobiusDirac, MobiusParams, HOPPING_FLOPS_PER_SITE};
use crate::field::GaugeLinks;
use crate::lattice::{volume_string, Lattice, ND};
use crate::real::Real;
use crate::spinor::Spinor;
use crate::su3::Su3;
use autotune::{ParamSpace, TimingHarness, Tunable, TuneKey, TuneParam, Tuner};
use coral_machine::commpolicy::{CommGranularity, CommPolicy, CommTransport};
use obs::{Clock, Registry, WallClock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A 5D fermion vector sharded over the ranks of a decomposition: per-rank
/// local storage (s-major, like the global layout) plus a ghost region
/// refreshed by each halo exchange.
#[derive(Clone, Debug)]
pub struct ShardedField<R: Real> {
    l5: usize,
    v_loc: usize,
    ghost_len: usize,
    /// `locals[r][s * v_loc + lx]`: rank `r`'s spinor at local site `lx`,
    /// fifth-dimension slice `s`.
    locals: Vec<Vec<Spinor<R>>>,
    /// `ghosts[r][s * ghost_len + e]`: ghost slot `e` of slice `s`.
    ghosts: Vec<Vec<Spinor<R>>>,
}

impl<R: Real> ShardedField<R> {
    /// All-zero field over `domain` with `l5` fifth-dimension slices.
    pub fn zeros(domain: &DomainDecomposition, l5: usize) -> Self {
        let v_loc = domain.local_volume();
        let ghost_len = domain.ghost_len();
        Self {
            l5,
            v_loc,
            ghost_len,
            locals: vec![vec![Spinor::zero(); l5 * v_loc]; domain.n_ranks()],
            ghosts: vec![vec![Spinor::zero(); l5 * ghost_len]; domain.n_ranks()],
        }
    }

    /// Shard a global s-major 5D vector (`l5 × volume` spinors) onto ranks.
    pub fn scatter(domain: &DomainDecomposition, global: &[Spinor<R>], l5: usize) -> Self {
        let v = domain.lattice().volume();
        assert_eq!(global.len(), l5 * v, "global vector length mismatch");
        let mut f = Self::zeros(domain, l5);
        let v_loc = f.v_loc;
        for (r, rank) in domain.ranks().iter().enumerate() {
            let local = &mut f.locals[r];
            for s in 0..l5 {
                for lx in 0..v_loc {
                    local[s * v_loc + lx] = global[s * v + rank.local_to_global[lx] as usize];
                }
            }
        }
        f
    }

    /// Reassemble the global s-major 5D vector from the rank locals.
    pub fn gather_into(&self, domain: &DomainDecomposition, global: &mut [Spinor<R>]) {
        let v = domain.lattice().volume();
        assert_eq!(global.len(), self.l5 * v, "global vector length mismatch");
        for (r, rank) in domain.ranks().iter().enumerate() {
            let local = &self.locals[r];
            for s in 0..self.l5 {
                for lx in 0..self.v_loc {
                    global[s * v + rank.local_to_global[lx] as usize] = local[s * self.v_loc + lx];
                }
            }
        }
    }

    /// Fifth-dimension extent.
    pub fn l5(&self) -> usize {
        self.l5
    }
}

/// The decomposed hopping kernel.
pub struct ShardedHopping<R: Real> {
    domain: Arc<DomainDecomposition>,
    /// Per rank: gauge links over the *extended* index space,
    /// `links[r][e * ND + mu]`, gathered from the global field at
    /// construction (bit-identical to single-domain link fetches, including
    /// half-precision decode).
    links: Vec<Vec<Su3<R>>>,
    antiperiodic_t: bool,
    policy: CommPolicy,
    mail: Mailboxes<R>,
    clock: Arc<dyn Clock>,
    stats: CommStats,
}

impl<R: Real> ShardedHopping<R> {
    /// Bind the kernel to a decomposition and gauge field under `policy`.
    pub fn new(
        domain: Arc<DomainDecomposition>,
        gauge: &impl GaugeLinks<R>,
        antiperiodic_t: bool,
        policy: CommPolicy,
    ) -> Self {
        assert_eq!(
            gauge.volume(),
            domain.lattice().volume(),
            "gauge/lattice mismatch"
        );
        let links = domain
            .ranks()
            .iter()
            .map(|rank| {
                let mut tbl = Vec::with_capacity(rank.local_to_global.len() * ND);
                for &g in &rank.local_to_global {
                    for mu in 0..ND {
                        tbl.push(gauge.link(g as usize, mu));
                    }
                }
                tbl
            })
            .collect();
        let mail = Mailboxes::new(domain.n_ranks());
        Self {
            domain,
            links,
            antiperiodic_t,
            policy,
            mail,
            clock: Arc::new(WallClock::new()),
            stats: CommStats::default(),
        }
    }

    /// The decomposition.
    pub fn domain(&self) -> &Arc<DomainDecomposition> {
        &self.domain
    }

    /// Current communication policy.
    pub fn policy(&self) -> CommPolicy {
        self.policy
    }

    /// Switch communication policy (the autotuner's knob).
    pub fn set_policy(&mut self, policy: CommPolicy) {
        self.policy = policy;
    }

    /// Inject a time source for the overlap-window measurement (tests use
    /// `obs::ManualClock`).
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// Cumulative execution statistics.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Zero the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = CommStats::default();
    }

    /// Send-side copies into intermediate buffers per message (before the
    /// wire) and total copies per message including the ghost unpack.
    fn copy_profile(&self) -> (u64, u64) {
        match self.policy.transport {
            CommTransport::StagedDma => (2, 3),
            CommTransport::ZeroCopy => (1, 2),
            CommTransport::GdrDirect => (0, 1),
        }
    }

    /// Pack and post both faces of partitioned direction `k` for every rank.
    /// No-op for GPU-Direct (the receiver gathers in [`Self::deliver_dim`]).
    fn send_dim(&self, inp: &ShardedField<R>, k: usize, packs: &AtomicU64) {
        if self.policy.transport == CommTransport::GdrDirect {
            return;
        }
        let staged = self.policy.transport == CommTransport::StagedDma;
        let domain = &self.domain;
        let mail = &self.mail;
        let l5 = inp.l5;
        let v_loc = inp.v_loc;
        let locals = &inp.locals;
        rayon::for_each_chunk(domain.n_ranks(), 1, |ranks| {
            for r in ranks {
                let ex = &domain.ranks()[r].exchanges[k];
                let local = &locals[r];
                let post = |face: &[u32], dest: usize, side: usize| {
                    let mut buf = Vec::with_capacity(l5 * ex.face_len);
                    for s in 0..l5 {
                        for &lx in face {
                            buf.push(local[s * v_loc + lx as usize]);
                        }
                    }
                    let wire = if staged {
                        // Stage through a second buffer: the DMA-to-CPU copy
                        // the staged transport pays before MPI sees the data.
                        buf.clone()
                    } else {
                        buf
                    };
                    mail.send(dest, ex.mu, side, wire);
                    packs.fetch_add(1, Ordering::Relaxed);
                };
                // Low face backward: fills the backward neighbor's forward
                // ghost zone. High face forward: the converse.
                post(&ex.low_face, ex.bwd_rank, BOX_FWD);
                post(&ex.high_face, ex.fwd_rank, BOX_BWD);
            }
        });
    }

    /// Fill every rank's ghost zones for partitioned direction `k`: unpack
    /// the two waiting messages, or (GPU-Direct) gather the neighbor faces
    /// straight out of their local storage.
    fn deliver_dim(&self, inp: &mut ShardedField<R>, k: usize, unpacks: &AtomicU64) {
        let gdr = self.policy.transport == CommTransport::GdrDirect;
        let domain = &self.domain;
        let mail = &self.mail;
        let l5 = inp.l5;
        let v_loc = inp.v_loc;
        let ghost_len = inp.ghost_len;
        let locals = &inp.locals;
        rayon::for_each_chunk_mut(&mut inp.ghosts, 1, |r, chunk| {
            let ghosts = &mut chunk[0];
            let ex = &domain.ranks()[r].exchanges[k];
            if gdr {
                let mut gather = |src_rank: usize, face: &[u32], base: usize| {
                    let src = &locals[src_rank];
                    for s in 0..l5 {
                        for (j, &lx) in face.iter().enumerate() {
                            ghosts[s * ghost_len + base + j] = src[s * v_loc + lx as usize];
                        }
                    }
                    unpacks.fetch_add(1, Ordering::Relaxed);
                };
                // Forward ghosts are the forward neighbor's low face.
                let fwd = &domain.ranks()[ex.fwd_rank].exchanges[k];
                gather(ex.fwd_rank, &fwd.low_face, ex.fwd_ghost_base);
                let bwd = &domain.ranks()[ex.bwd_rank].exchanges[k];
                gather(ex.bwd_rank, &bwd.high_face, ex.bwd_ghost_base);
            } else {
                let mut unpack = |side: usize, base: usize| {
                    let buf = mail.recv(r, ex.mu, side);
                    assert_eq!(buf.len(), l5 * ex.face_len, "halo payload size");
                    for s in 0..l5 {
                        for j in 0..ex.face_len {
                            ghosts[s * ghost_len + base + j] = buf[s * ex.face_len + j];
                        }
                    }
                    unpacks.fetch_add(1, Ordering::Relaxed);
                };
                unpack(BOX_FWD, ex.fwd_ghost_base);
                unpack(BOX_BWD, ex.bwd_ghost_base);
            }
        });
    }

    /// Compute `out = H inp` on a per-rank list of local sites (`None`: all
    /// sites). Each output site is written exactly once by shared
    /// [`hop_site`] arithmetic, so results are bit-identical at any thread
    /// width and for any site-list schedule.
    fn compute(&self, out: &mut ShardedField<R>, inp: &ShardedField<R>, which: SiteSet) -> u64 {
        let domain = &self.domain;
        let links = &self.links;
        let apbc = self.antiperiodic_t;
        let l5 = inp.l5;
        let v_loc = inp.v_loc;
        let ghost_len = inp.ghost_len;
        let in_locals = &inp.locals;
        let in_ghosts = &inp.ghosts;
        let counted = AtomicU64::new(0);
        rayon::for_each_chunk_mut(&mut out.locals, 1, |r, chunk| {
            let o = &mut chunk[0];
            let rank = &domain.ranks()[r];
            let lk = &links[r];
            let loc = &in_locals[r];
            let gh = &in_ghosts[r];
            let link = |site: usize, mu: usize| lk[site * ND + mu];
            let mut run_list = |sites: &mut dyn Iterator<Item = usize>| {
                let mut n = 0u64;
                for lx in sites {
                    let nb = &rank.neighbors[lx];
                    for s in 0..l5 {
                        let base_l = s * v_loc;
                        let base_g = s * ghost_len;
                        let fetch = |e: usize| {
                            if e < v_loc {
                                loc[base_l + e]
                            } else {
                                gh[base_g + e - v_loc]
                            }
                        };
                        o[base_l + lx] = hop_site(nb, lx, apbc, &fetch, &link);
                    }
                    n += l5 as u64;
                }
                counted.fetch_add(n, Ordering::Relaxed);
            };
            match which {
                SiteSet::All => run_list(&mut (0..v_loc)),
                SiteSet::Interior => run_list(&mut rank.interior.iter().map(|&x| x as usize)),
                SiteSet::Boundary(k) => run_list(&mut rank.boundary[k].iter().map(|&x| x as usize)),
            }
        });
        counted.load(Ordering::Relaxed)
    }

    /// `out = H inp` over every rank, exchanging halos under the current
    /// policy. `inp` is mutable because the exchange refreshes its ghost
    /// zones; local (owned) input sites are never written.
    pub fn apply(&mut self, out: &mut ShardedField<R>, inp: &mut ShardedField<R>) {
        let l5 = inp.l5;
        assert_eq!(out.l5, l5, "l5 mismatch");
        assert_eq!(inp.v_loc, self.domain.local_volume(), "input shape");
        assert_eq!(out.v_loc, self.domain.local_volume(), "output shape");
        let n_dims = self.domain.decomp().halos.len();
        let packs = AtomicU64::new(0);
        let unpacks = AtomicU64::new(0);
        let mut overlap = 0.0;
        let (interior_sites, boundary_sites);

        match self.policy.granularity {
            CommGranularity::Coarse => {
                // Exchange everything, then one fused pass over all sites.
                for k in 0..n_dims {
                    self.send_dim(inp, k, &packs);
                }
                for k in 0..n_dims {
                    self.deliver_dim(inp, k, &unpacks);
                }
                interior_sites = 0;
                boundary_sites = self.compute(out, inp, SiteSet::All);
            }
            CommGranularity::Fine => {
                // Post all sends, overlap interior compute with the
                // "in-flight" messages, then pipeline per direction.
                for k in 0..n_dims {
                    self.send_dim(inp, k, &packs);
                }
                let t0 = self.clock.now();
                interior_sites = self.compute(out, inp, SiteSet::Interior);
                overlap = self.clock.now() - t0;
                let mut boundary = 0;
                for k in 0..n_dims {
                    self.deliver_dim(inp, k, &unpacks);
                    boundary += self.compute(out, inp, SiteSet::Boundary(k));
                }
                boundary_sites = boundary;
            }
        }

        // Exactly-once delivery, cross-checked against the analytic message
        // count every apply.
        let expected_msgs = self.domain.total_messages_per_apply() as u64;
        let gdr = self.policy.transport == CommTransport::GdrDirect;
        assert_eq!(
            packs.load(Ordering::Relaxed),
            if gdr { 0 } else { expected_msgs },
            "every face must be packed exactly once"
        );
        assert_eq!(
            unpacks.load(Ordering::Relaxed),
            expected_msgs,
            "every ghost zone must be filled exactly once"
        );
        let total_sites = (self.domain.n_ranks() * self.domain.local_volume() * l5) as u64;
        assert_eq!(
            interior_sites + boundary_sites,
            total_sites,
            "interior/boundary passes must tile the lattice"
        );

        // Halo spinors delivered: both faces of every partitioned direction,
        // per rank, l5-fat messages.
        let halo_sites: u64 = self
            .domain
            .ranks()
            .iter()
            .flat_map(|rank| rank.exchanges.iter())
            .map(|ex| 2 * (ex.face_len * l5) as u64)
            .sum();
        let spinor_bytes = std::mem::size_of::<Spinor<R>>() as u64;
        let (pack_copies, total_copies) = self.copy_profile();
        let d = CommStats {
            applies: 1,
            messages: expected_msgs,
            halo_sites,
            bytes_packed: pack_copies * halo_sites * spinor_bytes,
            bytes_sent: halo_sites * spinor_bytes,
            copies: total_copies * expected_msgs,
            sites_interior: interior_sites,
            sites_boundary: boundary_sites,
            overlap_seconds: overlap,
        };
        self.stats.applies += d.applies;
        self.stats.messages += d.messages;
        self.stats.halo_sites += d.halo_sites;
        self.stats.bytes_packed += d.bytes_packed;
        self.stats.bytes_sent += d.bytes_sent;
        self.stats.copies += d.copies;
        self.stats.sites_interior += d.sites_interior;
        self.stats.sites_boundary += d.sites_boundary;
        self.stats.overlap_seconds += d.overlap_seconds;
        publish(&d);
    }

    /// Flops of one apply (the standard Wilson-dslash figure over all
    /// ranks).
    pub fn flops_per_apply(&self, l5: usize) -> f64 {
        (self.domain.n_ranks() * self.domain.local_volume() * l5) as f64 * HOPPING_FLOPS_PER_SITE
    }
}

/// Which sites a compute pass covers.
#[derive(Clone, Copy)]
enum SiteSet {
    All,
    Interior,
    Boundary(usize),
}

/// Publish one apply's stat deltas as `comms.*` metrics.
fn publish(d: &CommStats) {
    let reg = Registry::current();
    reg.counter("comms.messages").add(d.messages);
    reg.counter("comms.halo_sites").add(d.halo_sites);
    reg.counter("comms.bytes_packed").add(d.bytes_packed);
    reg.counter("comms.bytes_sent").add(d.bytes_sent);
    reg.counter("comms.copies").add(d.copies);
    reg.counter("comms.sites_interior").add(d.sites_interior);
    reg.counter("comms.sites_boundary").add(d.sites_boundary);
    reg.float_counter("comms.overlap_seconds")
        .add(d.overlap_seconds);
}

/// Autotune adapter: sweeps the policy index over [`CommPolicy::all`] with
/// measured (injected-clock) timings, per (geometry, precision, rank grid).
struct PolicySweep<'a, R: Real> {
    kernel: &'a mut ShardedHopping<R>,
    out: &'a mut ShardedField<R>,
    inp: &'a mut ShardedField<R>,
}

impl<'a, R: Real> Tunable for PolicySweep<'a, R> {
    fn key(&self) -> TuneKey {
        TuneKey::new(
            "comms_dslash",
            format!(
                "{}x{}",
                volume_string(self.kernel.domain.lattice().dims()),
                self.inp.l5
            ),
            format!("prec={},grid={}", R::NAME, self.kernel.domain.grid_string()),
        )
    }

    fn param_space(&self) -> ParamSpace {
        ParamSpace::policies(CommPolicy::all().len())
    }

    fn run(&mut self, param: TuneParam) {
        self.kernel.set_policy(policy_from_index(param.policy));
        self.kernel.apply(self.out, self.inp);
    }

    fn harness(&self) -> TimingHarness {
        TimingHarness::WallClock { reps: 2 }
    }

    fn flops(&self) -> f64 {
        self.kernel.flops_per_apply(self.inp.l5)
    }
}

/// Stable policy-index decoding shared by the sweep and its consumers.
pub fn policy_from_index(idx: usize) -> CommPolicy {
    let all = CommPolicy::all();
    all[idx % all.len()]
}

/// Sweep every communication policy on `kernel` through `tuner` (measured
/// timings via the tuner's injected clock), leave the winner installed, and
/// return it. Cached per (geometry, L5, precision, rank grid).
pub fn tune_comm_policy<R: Real>(
    tuner: &Tuner,
    kernel: &mut ShardedHopping<R>,
    out: &mut ShardedField<R>,
    inp: &mut ShardedField<R>,
) -> CommPolicy {
    let param = tuner.tune(&mut PolicySweep { kernel, out, inp });
    let best = policy_from_index(param.policy);
    kernel.set_policy(best);
    best
}

/// The Möbius domain-wall operator with its 4D hopping term executed by the
/// sharded halo-exchange kernel. The fifth-dimension algebra is
/// [`MobiusDirac`]'s own, so the full apply is bit-identical to the
/// single-domain operator.
pub struct ShardedMobius<'a, R: Real, G: GaugeLinks<R>> {
    mobius: MobiusDirac<'a, R, G>,
    hop: ShardedHopping<R>,
}

impl<'a, R: Real, G: GaugeLinks<R>> ShardedMobius<'a, R, G> {
    /// Bind the operator. `domain` must decompose `lattice`.
    pub fn new(
        lattice: &'a Lattice,
        gauge: &'a G,
        params: MobiusParams,
        domain: Arc<DomainDecomposition>,
        policy: CommPolicy,
    ) -> Self {
        assert_eq!(
            domain.lattice().volume(),
            lattice.volume(),
            "domain/lattice mismatch"
        );
        // Antiperiodic-t matches MobiusDirac::new (the physical choice).
        let hop = ShardedHopping::new(domain, gauge, true, policy);
        Self {
            mobius: MobiusDirac::new(lattice, gauge, params),
            hop,
        }
    }

    /// The sharded hopping kernel (policy knob, stats, clock injection).
    pub fn hopping_mut(&mut self) -> &mut ShardedHopping<R> {
        &mut self.hop
    }

    /// Vector length of the operator (`L5 × volume`).
    pub fn vec_len(&self) -> usize {
        self.mobius.params().l5 * self.mobius.lattice().volume()
    }

    /// `out = D inp` on global s-major 5D vectors: scatter the hopping
    /// operand, run the decomposed dslash, gather — fifth-dimension algebra
    /// untouched.
    pub fn apply(&mut self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        let Self { mobius, hop } = self;
        let l5 = mobius.params().l5;
        let domain = hop.domain().clone();
        mobius.apply_with_hop(out, inp, &mut |o, i| {
            let mut si = ShardedField::scatter(&domain, i, l5);
            let mut so = ShardedField::zeros(&domain, l5);
            hop.apply(&mut so, &mut si);
            so.gather_into(&domain, o);
        });
    }
}
