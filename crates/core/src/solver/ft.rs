//! Fault-tolerant CG: checkpoint-restart over a fallible operator.
//!
//! [`cg_ft`] runs the exact conjugate-gradient recurrence of [`super::cg`]
//! against a [`FallibleOp`] — an operator whose apply can fail with a typed
//! [`CommError`] (the sharded halo-exchange dslash under fault injection).
//! Every `checkpoint_every` iterations it snapshots the full recurrence
//! state `(k, x, r, p, ρ)` — which determines the entire remaining
//! iteration sequence bit-for-bit — in memory, and optionally through a
//! [`CheckpointSink`] for durable CRC-protected storage. When an apply
//! fails:
//!
//! 1. the operator is asked to [`FallibleOp::recover`] — a no-op for
//!    transient wire faults, a grid degradation (rebuild on the surviving
//!    ranks) for [`CommError::RankLost`];
//! 2. the recurrence state is restored from the last checkpoint (or
//!    re-initialized from the starting guess if none was taken), and
//!    iteration resumes.
//!
//! Because the sharded apply is bit-identical at every rank grid and thread
//! width, the restored recurrence continues the *exact* bit sequence of an
//! undisturbed run: final residuals match the no-fault solve bit-for-bit,
//! checkpointing on or off, grid shrunk or not. The only cost of a fault is
//! the replayed iterations — `stats.iterations` counts total work (replays
//! included), so the wasted-work overhead of a fault schedule is directly
//! measurable against a clean run.
//!
//! Recovery publishes `solver.checkpoints` / `solver.restarts` counters and
//! `solver.checkpoint` / `solver.restore` events through obs, mirroring the
//! `comms.*` fault metrics one layer down.

use super::{record_solve, CgParams, SolveStats, SolverOutcome};
use crate::blas;
use crate::comms::CommError;
use crate::dirac::LinearOp;
use crate::real::Real;
use crate::spinor::Spinor;
use obs::{Json, Registry};

/// A linear operator whose application may fail with a typed communication
/// error and which may be able to repair itself afterwards.
pub trait FallibleOp<R: Real> {
    /// Vector length the operator acts on.
    fn vec_len(&self) -> usize;

    /// `out = A inp`, or a typed failure (in which case `out` is
    /// unspecified).
    fn apply(&mut self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) -> Result<(), CommError>;

    /// Flops of one successful apply.
    fn flops_per_apply(&self) -> f64;

    /// Attempt to repair the operator after `err`. `Ok(())` means a retry
    /// can make progress (possibly on a degraded configuration); `Err`
    /// means the failure is terminal. The default treats every error as
    /// terminal.
    fn recover(&mut self, err: &CommError) -> Result<(), CommError> {
        Err(*err)
    }
}

/// Adapter making any infallible [`LinearOp`] a [`FallibleOp`], so the
/// checkpointed solver can be validated against the plain one.
pub struct Reliable<'a, R: Real, A: LinearOp<R> + ?Sized> {
    op: &'a A,
    _marker: std::marker::PhantomData<R>,
}

impl<'a, R: Real, A: LinearOp<R> + ?Sized> Reliable<'a, R, A> {
    /// Wrap `op`.
    pub fn new(op: &'a A) -> Self {
        Self {
            op,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<'a, R: Real, A: LinearOp<R> + ?Sized> FallibleOp<R> for Reliable<'a, R, A> {
    fn vec_len(&self) -> usize {
        self.op.vec_len()
    }

    fn apply(&mut self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) -> Result<(), CommError> {
        self.op.apply(out, inp);
        Ok(())
    }

    fn flops_per_apply(&self) -> f64 {
        self.op.flops_per_apply()
    }
}

/// One CG recurrence snapshot: everything needed to continue the iteration
/// sequence bit-exactly from iteration `iteration`.
#[derive(Clone, Debug, PartialEq)]
pub struct CgCheckpoint<R: Real> {
    /// Iteration count at snapshot time.
    pub iteration: usize,
    /// Residual norm-squared `ρ = ‖r‖²` (the recurrence scalar).
    pub rho: f64,
    /// Current solution estimate.
    pub x: Vec<Spinor<R>>,
    /// Current residual.
    pub r: Vec<Spinor<R>>,
    /// Current search direction.
    pub p: Vec<Spinor<R>>,
}

/// f64 components per spinor in the flat serialization (4 spins × 3 colors
/// × re/im).
pub const CKPT_SPINOR_F64: usize = 24;

impl<R: Real> CgCheckpoint<R> {
    /// Flatten to `[iteration, rho, n, x…, r…, p…]` (each spinor as
    /// [`CKPT_SPINOR_F64`] f64 components), the payload the io checkpoint
    /// container stores under CRC.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        let n = self.x.len();
        let mut out = Vec::with_capacity(3 + 3 * n * CKPT_SPINOR_F64);
        out.push(self.iteration as f64);
        out.push(self.rho);
        out.push(n as f64);
        for field in [&self.x, &self.r, &self.p] {
            for sp in field.iter() {
                for cv in &sp.s {
                    for z in &cv.c {
                        out.push(z.re.to_f64());
                        out.push(z.im.to_f64());
                    }
                }
            }
        }
        out
    }

    /// Rebuild from the flat layout; `None` on any shape violation.
    pub fn from_f64_vec(data: &[f64]) -> Option<Self> {
        let n = *data.get(2)? as usize;
        if data.len() != 3 + 3 * n * CKPT_SPINOR_F64 {
            return None;
        }
        let iteration = data[0] as usize;
        let rho = data[1];
        let mut fields: [Vec<Spinor<R>>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut at = 3;
        for field in fields.iter_mut() {
            field.reserve(n);
            for _ in 0..n {
                let mut sp = Spinor::<R>::zero();
                for cv in sp.s.iter_mut() {
                    for z in cv.c.iter_mut() {
                        z.re = R::from_f64(data[at]);
                        z.im = R::from_f64(data[at + 1]);
                        at += 2;
                    }
                }
                field.push(sp);
            }
        }
        let [x, r, p] = fields;
        Some(Self {
            iteration,
            rho,
            x,
            r,
            p,
        })
    }
}

/// Durable checkpoint storage the solver writes through (the io crate's
/// CRC-framed container on disk, or a test double). The solver always keeps
/// its latest checkpoint in memory; the sink is the layer that survives a
/// process death, which the in-memory fault simulation does not model — so
/// sink failures are reported but never abort the solve.
pub trait CheckpointSink<R: Real> {
    /// Persist `ckpt`. Errors are counted (`solver.checkpoint_sink_errors`)
    /// and otherwise ignored.
    fn store(&mut self, ckpt: &CgCheckpoint<R>) -> Result<(), String>;
}

/// Knobs of the fault-tolerant solve.
#[derive(Clone, Copy, Debug)]
pub struct FtParams {
    /// Inner CG stopping criteria (tolerance, recurrence-iteration budget).
    pub cg: CgParams,
    /// Snapshot the recurrence every this many iterations (0 disables
    /// checkpointing: every restart re-runs from the starting guess).
    pub checkpoint_every: usize,
    /// Comm-failure restarts tolerated before the solve is declared failed.
    pub max_comm_restarts: usize,
    /// Budget on *total* operator applications including replayed
    /// iterations (0 = unlimited) — the wasted-work ceiling the chaos sweep
    /// charges against. Exhausting it yields
    /// [`SolverOutcome::MaxIterations`].
    pub max_total_iters: usize,
}

impl Default for FtParams {
    fn default() -> Self {
        Self {
            cg: CgParams::default(),
            checkpoint_every: 25,
            max_comm_restarts: 8,
            max_total_iters: 0,
        }
    }
}

/// Checkpoint-restart CG for a Hermitian positive-definite [`FallibleOp`].
///
/// Runs the bit-exact recurrence of [`super::cg`] (same operation order,
/// same BLAS calls), so with a fault-free operator the iterates — and the
/// final residual — are identical to the plain solver's. See the module
/// docs for the recovery protocol.
pub fn cg_ft<R: Real, A: FallibleOp<R> + ?Sized>(
    op: &mut A,
    x: &mut [Spinor<R>],
    b: &[Spinor<R>],
    params: &FtParams,
    mut sink: Option<&mut dyn CheckpointSink<R>>,
) -> SolverOutcome {
    let n = op.vec_len();
    assert_eq!(x.len(), n);
    assert_eq!(b.len(), n);
    let mut stats = SolveStats::new();
    let mut restarts = 0usize;

    let b_norm2 = blas::norm_sqr(b);
    if b_norm2 == 0.0 {
        blas::zero(x);
        stats.converged = true;
        stats.final_rel_residual = 0.0;
        record_solve("cg_ft", &stats);
        return SolverOutcome::Converged {
            stats,
            restarts,
            escalated: false,
        };
    }
    if !b_norm2.is_finite() {
        stats.breakdown = true;
        record_solve("cg_ft", &stats);
        return SolverOutcome::Failed {
            stats,
            restarts,
            reason: "non-finite source",
        };
    }

    let target = params.cg.tol * params.cg.tol * b_norm2;
    let blas_flops = 6.0 * 24.0 * n as f64; // as in `cg`
    let x0: Vec<Spinor<R>> = x.to_vec();
    let mut ap = vec![Spinor::zero(); n];
    let mut last_ckpt: Option<CgCheckpoint<R>> = None;

    // One pass of the outer loop = one solve attempt segment: establish the
    // recurrence state (fresh or from checkpoint), iterate until done or a
    // comm failure forces recovery + restore.
    'solve: loop {
        let (mut k, mut r, mut p, mut r2) = match &last_ckpt {
            Some(c) => {
                x.copy_from_slice(&c.x);
                (c.iteration, c.r.clone(), c.p.clone(), c.rho)
            }
            None => {
                // r = b − A x₀ (re-derived on restart when no checkpoint
                // exists: the whole history is replayed).
                x.copy_from_slice(&x0);
                let mut r = vec![Spinor::zero(); n];
                if let Err(e) = op.apply(&mut r, x) {
                    match handle_failure(op, &e, &mut restarts, &mut stats, params, 0) {
                        Ok(()) => continue 'solve,
                        Err(reason) => {
                            record_solve("cg_ft", &stats);
                            return SolverOutcome::Failed {
                                stats,
                                restarts,
                                reason,
                            };
                        }
                    }
                }
                stats.flops += op.flops_per_apply();
                for (ri, bi) in r.iter_mut().zip(b.iter()) {
                    *ri = *bi - *ri;
                }
                let r2 = blas::norm_sqr(&r);
                let p = r.clone();
                (0, r, p, r2)
            }
        };

        while k < params.cg.max_iter && r2 > target {
            if !r2.is_finite() {
                stats.breakdown = true;
                break;
            }
            if params.max_total_iters > 0 && stats.iterations >= params.max_total_iters {
                break;
            }
            // Snapshot on schedule, *before* the apply that might fail, so a
            // failure at iteration k replays at most `checkpoint_every − 1`
            // healthy iterations.
            if params.checkpoint_every > 0 && k % params.checkpoint_every == 0 {
                let ckpt = CgCheckpoint {
                    iteration: k,
                    rho: r2,
                    x: x.to_vec(),
                    r: r.clone(),
                    p: p.clone(),
                };
                stats.checkpoints += 1;
                let reg = Registry::current();
                reg.counter("solver.checkpoints").inc();
                reg.event("solver.checkpoint", vec![("iteration", Json::from(k))]);
                if let Some(s) = sink.as_deref_mut() {
                    if let Err(msg) = s.store(&ckpt) {
                        reg.counter("solver.checkpoint_sink_errors").inc();
                        reg.event(
                            "solver.checkpoint_sink_error",
                            vec![("error", Json::from(msg))],
                        );
                    }
                }
                last_ckpt = Some(ckpt);
            }

            if let Err(e) = op.apply(&mut ap, &p) {
                match handle_failure(op, &e, &mut restarts, &mut stats, params, k) {
                    Ok(()) => continue 'solve,
                    Err(reason) => {
                        record_solve("cg_ft", &stats);
                        return SolverOutcome::Failed {
                            stats,
                            restarts,
                            reason,
                        };
                    }
                }
            }
            k += 1;
            stats.iterations += 1;
            stats.flops += op.flops_per_apply() + blas_flops;

            let pap = blas::dot(&p, &ap).re;
            if !pap.is_finite() || pap <= 0.0 {
                stats.breakdown = true;
                break;
            }
            let alpha = r2 / pap;
            blas::axpy(alpha, &p, x);
            blas::axpy(-alpha, &ap, &mut r);
            let r2_new = blas::norm_sqr(&r);
            let beta = r2_new / r2;
            blas::xpby(&r, beta, &mut p);
            r2 = r2_new;
        }

        if !r2.is_finite() {
            stats.breakdown = true;
        }
        stats.final_rel_residual = if r2.is_finite() {
            (r2 / b_norm2).sqrt()
        } else {
            f64::INFINITY
        };
        stats.converged = r2.is_finite() && r2 <= target;
        record_solve("cg_ft", &stats);
        return if stats.converged {
            SolverOutcome::Converged {
                stats,
                restarts,
                escalated: false,
            }
        } else if stats.breakdown {
            SolverOutcome::Failed {
                stats,
                restarts,
                reason: "breakdown",
            }
        } else {
            SolverOutcome::MaxIterations { stats, restarts }
        };
    }
}

/// Shared failure path of `cg_ft`: spend one comm restart, let the operator
/// repair itself, and record the recovery. `Ok(())` means "restore and
/// resume"; `Err(reason)` is terminal.
fn handle_failure<R: Real, A: FallibleOp<R> + ?Sized>(
    op: &mut A,
    err: &CommError,
    restarts: &mut usize,
    stats: &mut SolveStats,
    params: &FtParams,
    at_iteration: usize,
) -> Result<(), &'static str> {
    if *restarts >= params.max_comm_restarts {
        return Err("comm-restart budget exhausted");
    }
    op.recover(err).map_err(|_| "unrecoverable comm failure")?;
    *restarts += 1;
    stats.comm_restarts += 1;
    let reg = Registry::current();
    reg.counter("solver.restarts").inc();
    reg.event(
        "solver.restore",
        vec![
            ("restart", Json::from(*restarts)),
            ("iteration", Json::from(at_iteration)),
            ("error", Json::from(err.to_string())),
        ],
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirac::{NormalOp, WilsonDirac};
    use crate::field::{FermionField, GaugeField};
    use crate::lattice::Lattice;
    use crate::solver::cg;

    struct CountingSink {
        stored: Vec<usize>,
    }

    impl CheckpointSink<f64> for CountingSink {
        fn store(&mut self, ckpt: &CgCheckpoint<f64>) -> Result<(), String> {
            self.stored.push(ckpt.iteration);
            Ok(())
        }
    }

    /// A fallible wrapper that fails the apply at scripted call indices.
    struct Flaky<'a, A: LinearOp<f64>> {
        op: &'a A,
        calls: usize,
        fail_at: Vec<usize>,
    }

    impl<'a, A: LinearOp<f64>> FallibleOp<f64> for Flaky<'a, A> {
        fn vec_len(&self) -> usize {
            self.op.vec_len()
        }

        fn apply(&mut self, out: &mut [Spinor<f64>], inp: &[Spinor<f64>]) -> Result<(), CommError> {
            let idx = self.calls;
            self.calls += 1;
            if self.fail_at.contains(&idx) {
                return Err(CommError::Missing {
                    rank: 0,
                    mu: 0,
                    side: 0,
                    attempts: 4,
                });
            }
            self.op.apply(out, inp);
            Ok(())
        }

        fn flops_per_apply(&self) -> f64 {
            self.op.flops_per_apply()
        }

        fn recover(&mut self, _err: &CommError) -> Result<(), CommError> {
            Ok(())
        }
    }

    fn wilson_problem() -> (Lattice, GaugeField<f64>, Vec<Spinor<f64>>) {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 61);
        let b = FermionField::<f64>::gaussian(lat.volume(), 11).data;
        (lat, gauge, b)
    }

    #[test]
    fn cg_ft_matches_plain_cg_bit_for_bit_when_fault_free() {
        let (lat, gauge, b) = wilson_problem();
        let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
        let normal = NormalOp::new(&d);

        let mut x_plain = vec![Spinor::zero(); lat.volume()];
        let s_plain = cg(&normal, &mut x_plain, &b, CgParams::default());

        let mut x_ft = vec![Spinor::zero(); lat.volume()];
        let mut rel = Reliable::new(&normal);
        let out = cg_ft(&mut rel, &mut x_ft, &b, &FtParams::default(), None);

        assert!(out.is_converged(), "{out:?}");
        assert_eq!(out.stats().iterations, s_plain.iterations);
        assert_eq!(
            out.stats().final_rel_residual.to_bits(),
            s_plain.final_rel_residual.to_bits(),
            "identical recurrence must give identical residual"
        );
        assert_eq!(
            x_ft, x_plain,
            "identical recurrence must give identical iterates"
        );
    }

    #[test]
    fn checkpointed_restart_reaches_identical_residual_with_bounded_waste() {
        let (lat, gauge, b) = wilson_problem();
        let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
        let normal = NormalOp::new(&d);

        let mut x_clean = vec![Spinor::zero(); lat.volume()];
        let mut rel = Reliable::new(&normal);
        let clean = cg_ft(&mut rel, &mut x_clean, &b, &FtParams::default(), None);
        let clean_iters = clean.stats().iterations;

        let params = FtParams {
            checkpoint_every: 10,
            ..FtParams::default()
        };
        let mut flaky = Flaky {
            op: &normal,
            calls: 0,
            fail_at: vec![18, 35],
        };
        let mut x_faulty = vec![Spinor::zero(); lat.volume()];
        let mut sink = CountingSink { stored: Vec::new() };
        let out = cg_ft(&mut flaky, &mut x_faulty, &b, &params, Some(&mut sink));

        assert!(out.is_converged(), "{out:?}");
        let SolverOutcome::Converged {
            stats, restarts, ..
        } = out
        else {
            unreachable!()
        };
        assert_eq!(restarts, 2);
        assert_eq!(stats.comm_restarts, 2);
        assert_eq!(
            stats.final_rel_residual.to_bits(),
            clean.stats().final_rel_residual.to_bits(),
            "restored recurrence must finish bit-identically"
        );
        assert_eq!(x_faulty, x_clean);
        // Replay cost is bounded by the checkpoint interval per failure.
        assert!(stats.iterations > clean_iters);
        assert!(
            stats.iterations <= clean_iters + 2 * params.checkpoint_every,
            "waste {} vs interval bound {}",
            stats.iterations - clean_iters,
            2 * params.checkpoint_every
        );
        assert_eq!(
            stats.checkpoints,
            sink.stored.len(),
            "every snapshot reaches the sink"
        );
        assert!(!sink.stored.is_empty());
    }

    #[test]
    fn no_checkpointing_restarts_from_scratch() {
        let (lat, gauge, b) = wilson_problem();
        let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
        let normal = NormalOp::new(&d);

        let mut x_clean = vec![Spinor::zero(); lat.volume()];
        let mut rel = Reliable::new(&normal);
        let clean = cg_ft(&mut rel, &mut x_clean, &b, &FtParams::default(), None);
        let clean_iters = clean.stats().iterations;

        let params = FtParams {
            checkpoint_every: 0,
            ..FtParams::default()
        };
        let mut flaky = Flaky {
            op: &normal,
            calls: 0,
            fail_at: vec![30],
        };
        let mut x = vec![Spinor::zero(); lat.volume()];
        let out = cg_ft(&mut flaky, &mut x, &b, &params, None);
        assert!(out.is_converged(), "{out:?}");
        // The 29 pre-failure iterations are all wasted.
        assert!(
            out.stats().iterations >= clean_iters + 25,
            "{} vs clean {clean_iters}",
            out.stats().iterations
        );
        assert_eq!(
            out.stats().final_rel_residual.to_bits(),
            clean.stats().final_rel_residual.to_bits()
        );
    }

    #[test]
    fn restart_budget_exhaustion_is_a_typed_failure() {
        let (lat, gauge, b) = wilson_problem();
        let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
        let normal = NormalOp::new(&d);
        let params = FtParams {
            max_comm_restarts: 2,
            ..FtParams::default()
        };
        let mut flaky = Flaky {
            op: &normal,
            calls: 0,
            fail_at: (0..1000).collect(), // every apply fails
        };
        let mut x = vec![Spinor::zero(); lat.volume()];
        match cg_ft(&mut flaky, &mut x, &b, &params, None) {
            SolverOutcome::Failed {
                restarts, reason, ..
            } => {
                assert_eq!(restarts, 2);
                assert_eq!(reason, "comm-restart budget exhausted");
            }
            other => panic!("want Failed, got {other:?}"),
        }
    }

    #[test]
    fn total_iteration_budget_caps_wasted_work() {
        let (lat, gauge, b) = wilson_problem();
        let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
        let normal = NormalOp::new(&d);
        let params = FtParams {
            checkpoint_every: 0,
            max_total_iters: 40,
            ..FtParams::default()
        };
        // Repeated failure with no checkpointing: only ~35 productive
        // iterations fit the budget, so the solve must give up.
        let mut flaky = Flaky {
            op: &normal,
            calls: 0,
            fail_at: vec![20, 41],
        };
        let mut x = vec![Spinor::zero(); lat.volume()];
        match cg_ft(&mut flaky, &mut x, &b, &params, None) {
            SolverOutcome::MaxIterations { stats, .. } => {
                assert!(stats.iterations <= 40, "{}", stats.iterations);
            }
            other => panic!("want MaxIterations, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_round_trips_through_f64() {
        let ckpt = CgCheckpoint::<f64> {
            iteration: 17,
            rho: 0.125,
            x: FermionField::<f64>::gaussian(6, 1).data,
            r: FermionField::<f64>::gaussian(6, 2).data,
            p: FermionField::<f64>::gaussian(6, 3).data,
        };
        let flat = ckpt.to_f64_vec();
        assert_eq!(flat.len(), 3 + 3 * 6 * CKPT_SPINOR_F64);
        let back = CgCheckpoint::<f64>::from_f64_vec(&flat).unwrap();
        assert_eq!(back, ckpt);
        assert!(CgCheckpoint::<f64>::from_f64_vec(&flat[..flat.len() - 1]).is_none());
    }
}
